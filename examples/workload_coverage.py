"""Workload-driven representatives and regret forensics.

Two production concerns the paper's framework covers beyond the headline
algorithms:

1. **Known workloads.**  When the ranking functions are a finite panel
   (logged user queries, business scoring rules), the representative can
   be computed exactly as a hitting set over their top-k sets
   (Definitions 1–3 with finite F) — usually far smaller than covering
   the whole linear class.
2. **Forensics.**  For any representative, `rank_regret_distribution`
   shows how regret is spread across the function space and
   `worst_functions` extracts the adversarial directions — the weights of
   the users a candidate set serves worst.

Run:  python examples/workload_coverage.py
"""


from repro import mdrc, sample_functions, synthetic_bluenile
from repro.core import workload_rrr
from repro.evaluation import rank_regret_distribution, worst_functions


def main() -> None:
    data = synthetic_bluenile(n=3000, d=4, seed=21)
    values = data.values
    k = 30
    print(f"Blue Nile stand-in: n={data.n}, d={data.d}, k={k}\n")

    # --- 1. a finite workload of 200 logged preference vectors ---------
    workload = sample_functions(data.d, 200, rng=5)
    result = workload_rrr(values, workload, k)
    print(f"workload RRR: {result.size} tuples cover all "
          f"{result.num_functions} logged functions "
          f"({result.num_distinct_topk} distinct top-{k} sets)")

    # Covering the whole linear class needs more:
    full = mdrc(values, k)
    print(f"full-class MDRC representative: {len(full.indices)} tuples\n")

    # --- 2. regret forensics on the full-class representative ----------
    dist = rank_regret_distribution(values, full.indices, k, rng=7)
    print("rank-regret distribution over 10,000 random functions:")
    print(f"  median={dist.median:.0f}  p90={dist.percentiles[90]}  "
          f"p99={dist.percentiles[99]}  max={dist.maximum}")
    print(f"  fraction of functions satisfied within k: "
          f"{dist.satisfied_fraction:.3f}\n")

    print("hardest preference directions (attribute weights, rank-regret):")
    for weights, regret in worst_functions(values, full.indices, count=3, rng=7):
        pretty = ", ".join(
            f"{name}={w:.2f}" for name, w in zip(data.attributes, weights)
        )
        print(f"  [{pretty}]  ->  {regret}")


if __name__ == "__main__":
    main()
