"""The dual problem (paper §2): fixed output size, minimize rank-regret.

A UI can only show, say, 8 recommended hotels.  What is the best rank
guarantee 8 slots can buy?  The paper's binary-search reduction answers
this with log(n) calls to any RRR solver.

Run:  python examples/size_budget.py
"""

from repro import min_rank_regret_of_size, rank_regret_sampled, synthetic_dot


def main() -> None:
    data = synthetic_dot(n=2000, d=3, seed=11)
    print(f"DOT stand-in: n={data.n}, d={data.d}\n")
    print(f"{'budget':>7} | {'k found':>7} | {'size':>4} | "
          f"{'measured rank-regret':>20} | probes")
    print("-" * 65)
    for budget in (2, 4, 8, 16):
        outcome = min_rank_regret_of_size(data, size=budget, method="mdrc")
        measured = rank_regret_sampled(
            data.values, outcome.result.indices, num_functions=5000, rng=0
        )
        print(f"{budget:>7} | {outcome.k:>7} | {outcome.result.size:>4} | "
              f"{measured:>20} | {outcome.probes:>6}")
    print("\nMore slots buy a smaller k: the guarantee tightens roughly "
          "geometrically with the budget, at a log(n)-factor search cost.")


if __name__ == "__main__":
    main()
