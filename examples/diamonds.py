"""Diamond shopping scenario (paper §6.1): the Blue Nile catalog.

The paper motivates rank-regret with diamonds: tiny score differences
(0.50 vs 0.53 carat) translate into large price and rank swings, so a
score-based regret budget is meaningless to a shopper — but "one of your
top-20" is crystal clear.  This script works in 2-D (carat vs price) where
the library computes *exact* rank-regret via the dual-space sweep, and
shows the size/regret trade-off as k grows.

Run:  python examples/diamonds.py
"""

from repro import (
    rank_regret_exact_2d,
    skyline_representative,
    synthetic_bluenile,
    two_d_rrr,
)
from repro.core import find_ranges


def main() -> None:
    data = synthetic_bluenile(n=800, seed=3).select_attributes(
        ["carat", "price"]
    )
    values = data.values
    print(f"Blue Nile stand-in: n={data.n}, attributes={data.attributes}")

    sky = skyline_representative(values)
    print(f"skyline size (order-1, monotone functions): {len(sky)}\n")

    print(f"{'k':>5} | {'size':>4} | {'exact rank-regret':>17} | guarantee 2k")
    print("-" * 50)
    for k in (1, 5, 10, 20, 50, 100):
        chosen = two_d_rrr(values, k)
        regret = rank_regret_exact_2d(values, chosen)
        print(f"{k:>5} | {len(chosen):>4} | {regret:>17} | {2 * k:>10}")

    # Peek under the hood: the per-item top-k angle ranges of Algorithm 1.
    k = 20
    ranges = find_ranges(values, k)
    covered = ranges.covered_items()
    print(f"\nAlgorithm 1 internals for k={k}: {len(covered)} of {data.n} "
          f"diamonds ever enter the top-{k} for some preference weighting;")
    widest = max(covered, key=lambda i: ranges.end[i] - ranges.begin[i])
    print(f"the widest angle range belongs to diamond #{widest} "
          f"(carat={values[widest, 0]:.3f}, price-score={values[widest, 1]:.3f}), "
          f"spanning [{ranges.begin[widest]:.3f}, {ranges.end[widest]:.3f}] rad.")


if __name__ == "__main__":
    main()
