"""Streaming service demo: a thin client of the real ``repro.serve``.

Earlier revisions of this example hand-rolled the serving loop — engine
lifecycle, churn absorption, view refreshes, fault drills — in ~200
lines of bespoke plumbing.  All of that now lives in the service itself
(:mod:`repro.serve`, ``repro serve`` on the command line): one
long-lived calibrated engine, request coalescing, journaled mutations
feeding the maintained views, admission control and the resilience
ladder.  What remains here is what a *user* of that service writes: an
HTTP client.

The demo spins up a local server in-process (or targets ``--url``),
then exercises the full serving surface:

1. **Coalesced queries.**  Concurrent top-k requests from client
   threads land in one ``topk_batch`` engine call; every response is
   checked bit-identical to a direct :class:`ScoreEngine` call over the
   same matrix — the exactness contract, extended over HTTP.
2. **Churn.**  Each tick inserts and deletes ~1% of rows through the
   mutation endpoints (the delta journal), then re-queries and fetches
   the maintained representative — the view repairs incrementally
   server-side.
3. **Overload.**  A request burst against a paused dispatcher shows
   typed 429 admission control.
4. **Faults.**  With ``--faults`` a deterministic injector
   (:mod:`repro.engine.faults`) fires worker crashes inside the serving
   engine while queries keep answering bit-identically.
5. **Durability.**  With ``--durability`` a second server boots on a
   ``data_dir``, acknowledges a keyed mutation, dies without warning
   (the in-process ``kill -9``), restarts from its write-ahead log, and
   answers the retried mutation from the stored response — exactly
   once, bit-identical after the crash.

Run:  python examples/streaming_service.py
      python examples/streaming_service.py --smoke   # bounded CI run
      python examples/streaming_service.py --smoke --durability
      python examples/streaming_service.py --url http://127.0.0.1:8472
"""

import argparse
import os
import signal
import tempfile
import threading
import time

import numpy as np

from repro import synthetic_dot
from repro.engine import FaultInjector, ScoreEngine, faults
from repro.serve import (
    ServerConfig,
    ServerThread,
    ServiceClient,
    ServiceOverloadedError,
)


def check_bit_identity(client, reference: ScoreEngine, weights, k: int) -> None:
    """One served response must equal a direct engine call exactly."""
    served = client.topk(weights, k)
    direct = reference.topk_batch(weights, k)
    assert np.array_equal(served["members"], direct.members), "members diverged"
    assert np.array_equal(served["order"], direct.order), "order diverged"


def query_storm(url: str, k: int, d: int, threads: int, seed: int):
    """Concurrent clients; returns [(weights, response), ...]."""
    results = [None] * threads

    def worker(i):
        with ServiceClient(url, timeout=60) as client:
            weights = np.random.default_rng(seed + i).random((4, d))
            results[i] = (weights, client.topk(weights, k))

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    return results


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="bounded CI run: small matrix, 2 ticks, smaller storm",
    )
    parser.add_argument(
        "--url", default=None,
        help="target an already-running repro serve (default: start one "
        "in-process)",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="install a deterministic fault injector in the local server",
    )
    parser.add_argument(
        "--durability", action="store_true",
        help="run the crash-recovery drill: kill a durable server "
        "without warning, restart it from its WAL, retry the in-flight "
        "keyed mutation (applied exactly once)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="serve through a ShardedScoreEngine with N crash-isolated "
        "worker shards and run the shard-kill drill: SIGKILL one shard "
        "mid-service and watch supervision rebuild it with every "
        "response still bit-identical",
    )
    args = parser.parse_args(argv)
    if args.durability and args.url is not None:
        raise SystemExit("--durability needs the in-process server (no --url)")
    if args.shards is not None and args.url is not None:
        raise SystemExit("--shards needs the in-process server (no --url)")
    n = 4_000 if args.smoke else 20_000
    ticks = 2 if args.smoke else 5
    storm = 6 if args.smoke else 16
    d, k, seed = 4, 10, 7

    data = synthetic_dot(n=n, d=d, seed=seed)
    rng = np.random.default_rng(seed)

    injector = None
    if args.faults:
        if args.url is not None:
            raise SystemExit("--faults needs the in-process server (no --url)")
        # Installed before the server boots so the serving engine's
        # fan-out draws from the injected schedule; the resilience
        # ladder absorbs every crash without a wrong answer.
        injector = FaultInjector(seed=seed, crash=0.05, max_faults=10)
        faults.install(injector)
        print("fault injector installed (crash=5%, bounded)")

    local = None
    if args.url is None:
        config = ServerConfig(
            port=0, jobs=2, backend="thread",
            max_pending=8 if args.smoke else 32,
            shards=args.shards,
        )
        local = ServerThread(data.values, config).start()
        url = local.url
        print(
            f"started local server at {url}"
            + (f" ({args.shards} process shards)" if args.shards else "")
        )
    else:
        url = args.url
        print(f"targeting external server at {url}")

    client = ServiceClient(url, timeout=120)
    try:
        health = client.health()
        print(f"health: n={health['n']} d={health['d']} rev={health['revision']}")

        # The client-side oracle mirrors the server's matrix so every
        # response can be checked bit-identical to a direct engine call.
        reference = ScoreEngine(data.values, float32=True)

        print(f"\n[1] coalescing: {storm} concurrent top-{k} clients")
        stormed = query_storm(url, k, d, threads=storm, seed=100)
        for weights, response in stormed:
            direct = reference.topk_batch(weights, k)
            assert np.array_equal(response["members"], direct.members)
            assert np.array_equal(response["order"], direct.order)
        stats = client.stats()["coalescing"]
        print(
            f"    {stats['requests']} requests -> {stats['batches']} engine "
            f"batches ({stats['coalesced']} coalesced); all bit-identical"
        )

        print(f"\n[2] churn: {ticks} ticks of ~1% insert+delete")
        matrix = data.values.copy()
        for tick in range(ticks):
            m = max(1, matrix.shape[0] // 100)
            fresh = rng.random((m, d))
            inserted = client.insert(fresh)
            doomed = rng.choice(matrix.shape[0], size=m, replace=False)
            client.delete(doomed.tolist())
            # Mirror the mutations into the client-side oracle.  The
            # engine compacts deletes against the *post-insert* matrix.
            matrix = np.vstack([matrix, fresh])
            keep = np.ones(matrix.shape[0], dtype=bool)
            keep[doomed] = False
            matrix = matrix[keep]
            reference.close()
            reference = ScoreEngine(matrix, float32=True)
            check_bit_identity(client, reference, rng.random((3, d)), k)
            rep = client.representative(k)
            print(
                f"    tick {tick}: +{m}/-{m} rows -> rev {rep['revision']}, "
                f"|representative| = {len(rep['indices'])} "
                f"(inserted at {inserted['indices'][0]}..)"
            )

        if args.shards is not None and local is not None:
            print(f"\n[2b] shard kill: SIGKILL 1 of {args.shards} worker shards")
            fleet = local.server.session.engine
            victim = fleet._supervisor.hosts[0].pid
            os.kill(victim, signal.SIGKILL)
            # The next query notices the dead shard, rebuilds it from its
            # own snapshot + WAL suffix, and still merges bit-identically.
            check_bit_identity(client, reference, rng.random((3, d)), k)
            health = client.health()
            assert health["shards"]["serving"] == args.shards, (
                "a killed shard was not recovered"
            )
            recoveries = fleet.stats["shard_recoveries"]
            print(
                f"    killed pid {victim}; supervisor rebuilt the shard "
                f"({recoveries} recoveries), fleet serving "
                f"{health['shards']['serving']}/{args.shards}, responses "
                "bit-identical throughout"
            )

        if local is not None:
            print("\n[3] overload: burst against a paused dispatcher")
            local.call(local.server.pause)
            time.sleep(0.2)
            total = local.server.config.max_pending + 8
            outcomes: list[str] = []
            burst_weights = [rng.random((1, d)) for _ in range(total)]

            def burst_worker(i):
                try:
                    with ServiceClient(url, timeout=60, max_retries=0) as one:
                        one.topk(burst_weights[i], k)
                    outcomes.append("ok")
                except ServiceOverloadedError as exc:
                    assert exc.status == 429
                    outcomes.append("429")

            pool = [
                threading.Thread(target=burst_worker, args=(i,)) for i in range(total)
            ]
            for t in pool:
                t.start()
            deadline = time.time() + 30
            while time.time() < deadline and "429" not in outcomes:
                time.sleep(0.05)
            local.call(local.server.resume)
            for t in pool:
                t.join()
            rejected = outcomes.count("429")
            assert rejected > 0, "burst never hit admission control"
            print(
                f"    {total} bursted: {outcomes.count('ok')} served after "
                f"resume, {rejected} answered 429 (typed, with retry hint)"
            )

        if args.durability:
            print("\n[4] durability: kill -9 a durable server, restart, same answers")
            with tempfile.TemporaryDirectory() as data_dir:
                dconfig = ServerConfig(port=0, jobs=1, data_dir=data_dir)
                durable = ServerThread(matrix, dconfig).start()
                dclient = ServiceClient(durable.url, timeout=60)
                fresh = rng.random((2, d))
                acked = dclient.insert(fresh, idempotency_key="demo-ambiguous")
                durable.kill()  # no drain, no snapshot: SIGKILL semantics

                durable = ServerThread(matrix, dconfig).start()
                dclient = ServiceClient(durable.url, timeout=60)
                try:
                    # The ambiguous retry: same key, stored response,
                    # nothing re-applied.
                    retried = dclient.insert(fresh, idempotency_key="demo-ambiguous")
                    assert np.array_equal(retried["indices"], acked["indices"])
                    assert retried["revision"] == acked["revision"]
                    oracle = ScoreEngine(np.vstack([matrix, fresh]), float32=True)
                    check_bit_identity(dclient, oracle, rng.random((3, d)), k)
                    oracle.close()
                    recovered = dclient.stats()["durability"]["recovery"]
                    print(
                        f"    restarted from the WAL "
                        f"({recovered['replayed_commits']} commits replayed); "
                        "keyed retry applied exactly once; responses "
                        "bit-identical after the crash"
                    )
                finally:
                    dclient.close()
                    durable.stop()

        check_bit_identity(client, reference, rng.random((5, d)), k)
        final = client.health()
        print(
            f"\nfinal: n={final['n']} rev={final['revision']} — every served "
            f"response bit-identical to a direct engine call"
        )
        reference.close()
    finally:
        client.close()
        if local is not None:
            local.stop()
        if injector is not None:
            faults.uninstall()
    print("OK")


if __name__ == "__main__":
    main()
