"""Streaming service: a long-lived engine absorbing row churn and faults.

A deployed representative-serving endpoint doesn't get a frozen matrix:
listings appear, expire and get corrected while queries keep arriving.
This example runs that loop — one persistent :class:`ScoreEngine` is
calibrated once for this machine (PR 5's autotuner), then serves
``rank_regret_representative``-style revisions while 1% of its rows
churn every tick, using ``insert_rows`` / ``delete_rows`` (PR 5's
incremental update layer) instead of rebuilding from scratch.  Every
revision's answers are bit-identical to a fresh engine on the mutated
matrix — the loop checks one revision against a rebuild to prove it.

Nor does a deployed service get a polite host.  The loop runs with a
fault injector installed (:mod:`repro.engine.faults`) so worker crashes
and corrupted payloads keep firing mid-query, a pool worker is
force-killed between two revisions (the OOM-killer shape), and a SIGINT
lands mid-loop — the supervision layer (:mod:`repro.engine.resilience`)
absorbs all of it: failed work units are retried on a rebuilt pool (or a
degraded backend), the service finishes every revision, and the final
answers are still bit-identical to a cold rebuild.

Run:  python examples/streaming_service.py
"""

import signal
import time

import numpy as np

from repro import mdrc, synthetic_dot
from repro.engine import FaultInjector, RetryPolicy, ScoreEngine, faults
from repro.evaluation import rank_regret_sampled
from repro.ranking import sample_functions


def main() -> None:
    rng = np.random.default_rng(7)
    data = synthetic_dot(n=20_000, d=4, seed=7)
    k = data.n // 100
    churn = data.n // 100
    print(f"dataset: {data.name}, n={data.n}, d={data.d}, k={k}, churn={churn}/tick")

    # One engine for the service's lifetime.  Calibrate once: the probe
    # measures THIS machine's GEMM/dispatch/scalar costs and replaces the
    # hand-tuned defaults; persist the profile and restart with
    # ScoreEngine(values, tune=TuningProfile.load(path)) to skip it.
    # The RetryPolicy is the service's failure posture: per-work-unit
    # deadline, two retries per backend, then degrade a rung.
    engine = ScoreEngine(
        data.values,
        n_jobs=2,
        parallel_min_work=0,
        resilience=RetryPolicy(timeout_s=30.0, max_retries=2, backoff_base_s=0.01),
    )
    profile = engine.calibrate()
    print(
        f"calibrated: chunk_bytes={profile.chunk_bytes}, "
        f"parallel_min_work={profile.parallel_min_work}, "
        f"escalate_ratio={profile.backend_escalate_ratio:.3f}"
    )

    # The representative is computed against the engine's matrix; the
    # Monte-Carlo check reuses the same engine (orderings, quantized
    # stores and pools are paid for once across the whole session).
    representative = mdrc(data.values, k, engine=engine).indices
    print(f"initial representative: {len(representative)} tuples\n")

    # Chaos on: every fan-out submission now has a 10% chance of killing
    # its worker and a 10% chance of garbling its payload, deterministic
    # under this seed.  A real service doesn't install this — the OS
    # provides the faults — but recovery below is exactly what it gets.
    injector = FaultInjector(seed=7, crash=0.10, corrupt=0.10, max_faults=12)
    faults.install(injector)

    # A SIGINT mid-loop (ctrl-C, orchestrator restart) must not corrupt
    # the engine: the handler just requests a graceful stop at the next
    # tick boundary; queries in flight complete normally.
    stop_requested = False

    def on_sigint(signum, frame):
        nonlocal stop_requested
        stop_requested = True
        print("SIGINT received: finishing the current revision, then stopping")

    previous_handler = signal.signal(signal.SIGINT, on_sigint)

    total_updates = 0
    t_start = time.perf_counter()
    for tick in range(1, 6):
        # Row churn: expire 1% of the catalogue, ingest 1% fresh rows.
        doomed = rng.choice(engine.n, size=churn, replace=False)
        engine.delete_rows(doomed)
        fresh = rng.random((churn, data.d))
        engine.insert_rows(fresh)
        total_updates += 2 * churn
        # Mutations journal lazily; compact() settles them now so
        # engine.values below reflects this tick's churn.  (Any direct
        # engine query would do the same implicitly.)
        engine.compact()

        if tick == 2:
            # Between revisions, force-kill a live pool worker — the
            # OOM-killer shape.  The supervisor's dead-PID probe notices
            # before the next submit and rebuilds the pool proactively
            # instead of deadlocking on a half-dead one.
            executor = engine._executors.get("process")
            if executor is None:
                executor = engine._build_executor("process")
            if not executor._pool._processes:
                # Pool workers spawn on first submit; poke it once so
                # there is a live worker to kill.
                executor._pool.submit(int, 0).result()
            victim = next(iter(executor._pool._processes.values()))
            victim.terminate()
            victim.join()
            print("tick 2: killed one pool worker (simulated OOM kill)")

        if tick == 3:
            # Deliver a real SIGINT to ourselves mid-loop.
            signal.raise_signal(signal.SIGINT)

        # Serve from the mutated engine: the orderings/stores were
        # merge-repaired at compaction, not rebuilt — and any work unit
        # lost to an injected fault was silently re-executed.
        representative = mdrc(engine.values, k, engine=engine).indices
        regret = rank_regret_sampled(
            engine.values, representative, num_functions=2_000, rng=0, engine=engine
        )
        print(
            f"tick {tick}: n={engine.n}, representative={len(representative)} "
            f"tuples, sampled rank-regret={regret} "
            f"({'OK' if regret <= k else 'ABOVE k'})"
        )
        if stop_requested:
            print(f"tick {tick}: graceful stop honoured after a complete revision")
            stop_requested = False
    elapsed = time.perf_counter() - t_start
    signal.signal(signal.SIGINT, previous_handler)
    faults.uninstall()

    supervisor = engine._supervisor
    if supervisor is not None:
        recovered = {key: value for key, value in supervisor.stats.items() if value}
        print(f"\ninjected faults: {injector.injected}")
        print(f"recovery ledger: {recovered}")
    print(
        f"absorbed {total_updates} row updates across 5 revisions in "
        f"{elapsed:.2f}s while serving queries under injected faults "
        f"({total_updates / elapsed:,.0f} updates/s)"
    )

    # The exactness contract, demonstrated: after worker kills, injected
    # crashes/corruption and a SIGINT, a cold engine built on the final
    # matrix still gives bit-identical answers.
    cold = ScoreEngine(engine.values.copy())
    probe = sample_functions(data.d, 256, 1)
    assert np.array_equal(
        engine.topk_batch(probe, k).order, cold.topk_batch(probe, k).order
    )
    assert np.array_equal(
        engine.rank_of_best_batch(probe, representative),
        cold.rank_of_best_batch(probe, representative),
    )
    print("verified: post-recovery engine is bit-identical to a cold rebuild")
    engine.close()
    cold.close()


if __name__ == "__main__":
    main()
