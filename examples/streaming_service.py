"""Streaming service: a long-lived engine absorbing row churn.

A deployed representative-serving endpoint doesn't get a frozen matrix:
listings appear, expire and get corrected while queries keep arriving.
This example runs that loop — one persistent :class:`ScoreEngine` is
calibrated once for this machine (PR 5's autotuner), then serves
``rank_regret_representative``-style revisions while 1% of its rows
churn every tick, using ``insert_rows`` / ``delete_rows`` (PR 5's
incremental update layer) instead of rebuilding from scratch.  Every
revision's answers are bit-identical to a fresh engine on the mutated
matrix — the loop checks one revision against a rebuild to prove it.

Run:  python examples/streaming_service.py
"""

import time

import numpy as np

from repro import mdrc, synthetic_dot
from repro.engine import ScoreEngine
from repro.evaluation import rank_regret_sampled
from repro.ranking import sample_functions


def main() -> None:
    rng = np.random.default_rng(7)
    data = synthetic_dot(n=20_000, d=4, seed=7)
    k = data.n // 100
    churn = data.n // 100
    print(f"dataset: {data.name}, n={data.n}, d={data.d}, k={k}, churn={churn}/tick")

    # One engine for the service's lifetime.  Calibrate once: the probe
    # measures THIS machine's GEMM/dispatch/scalar costs and replaces the
    # hand-tuned defaults; persist the profile and restart with
    # ScoreEngine(values, tune=TuningProfile.load(path)) to skip it.
    engine = ScoreEngine(data.values)
    profile = engine.calibrate()
    print(
        f"calibrated: chunk_bytes={profile.chunk_bytes}, "
        f"parallel_min_work={profile.parallel_min_work}, "
        f"escalate_ratio={profile.backend_escalate_ratio:.3f}"
    )

    # The representative is computed against the engine's matrix; the
    # Monte-Carlo check reuses the same engine (orderings, quantized
    # stores and pools are paid for once across the whole session).
    representative = mdrc(data.values, k, engine=engine).indices
    print(f"initial representative: {len(representative)} tuples\n")

    total_updates = 0
    t_start = time.perf_counter()
    for tick in range(1, 6):
        # Row churn: expire 1% of the catalogue, ingest 1% fresh rows.
        doomed = rng.choice(engine.n, size=churn, replace=False)
        engine.delete_rows(doomed)
        fresh = rng.random((churn, data.d))
        engine.insert_rows(fresh)
        total_updates += 2 * churn
        # Mutations journal lazily; compact() settles them now so
        # engine.values below reflects this tick's churn.  (Any direct
        # engine query would do the same implicitly.)
        engine.compact()

        # Serve from the mutated engine: the orderings/stores were
        # merge-repaired at compaction, not rebuilt.
        representative = mdrc(engine.values, k, engine=engine).indices
        regret = rank_regret_sampled(
            engine.values, representative, num_functions=2_000, rng=0, engine=engine
        )
        print(
            f"tick {tick}: n={engine.n}, representative={len(representative)} "
            f"tuples, sampled rank-regret={regret} "
            f"({'OK' if regret <= k else 'ABOVE k'})"
        )
    elapsed = time.perf_counter() - t_start
    print(
        f"\nabsorbed {total_updates} row updates across 5 revisions in "
        f"{elapsed:.2f}s while serving queries "
        f"({total_updates / elapsed:,.0f} updates/s)"
    )

    # The exactness contract, demonstrated: a cold engine built on the
    # final matrix gives bit-identical answers.
    cold = ScoreEngine(engine.values.copy())
    probe = sample_functions(data.d, 256, 1)
    assert np.array_equal(
        engine.topk_batch(probe, k).order, cold.topk_batch(probe, k).order
    )
    assert np.array_equal(
        engine.rank_of_best_batch(probe, representative),
        cold.rank_of_best_batch(probe, representative),
    )
    print("verified: mutated engine is bit-identical to a cold rebuild")
    engine.close()
    cold.close()


if __name__ == "__main__":
    main()
