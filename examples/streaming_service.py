"""Streaming service: maintained representatives under churn and faults.

A deployed representative-serving endpoint doesn't get a frozen matrix:
listings appear, expire and get corrected while queries keep arriving.
This example runs that loop — one persistent :class:`ScoreEngine` is
calibrated once for this machine (PR 5's autotuner) and absorbs 1% row
churn per tick through ``insert_rows`` / ``delete_rows`` (PR 5's
incremental update layer).  The representative itself is served from the
materialized-view layer (PR 7, :mod:`repro.engine.views`): an
:class:`MDRCView` keeps the MDRC corner memo alive across revisions and
repairs only the cells the churn touched, and a :class:`RankRegretView`
patches the Monte-Carlo regret estimate by exact ±counting of the
mutated rows.  Every tick the maintained answers are checked
bit-identical against a from-scratch recompute — the view contract —
and the loop reports the measured maintain-vs-recompute speedup.

Nor does a deployed service get a polite host.  The loop runs with a
fault injector installed (:mod:`repro.engine.faults`) so worker crashes
and corrupted payloads keep firing mid-query, a pool worker is
force-killed between two revisions (the OOM-killer shape), and a SIGINT
lands mid-loop — the supervision layer (:mod:`repro.engine.resilience`)
absorbs all of it while the views stay bit-identical.

Run:  python examples/streaming_service.py
      python examples/streaming_service.py --smoke   # bounded CI run
"""

import argparse
import signal
import time

import numpy as np

from repro import mdrc, synthetic_dot
from repro.engine import (
    FaultInjector,
    MDRCView,
    RankRegretView,
    RetryPolicy,
    ScoreEngine,
    faults,
)
from repro.evaluation import rank_regret_sampled
from repro.ranking import sample_functions


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bounded CI run: small matrix, 3 ticks, fewer eval functions",
    )
    args = parser.parse_args(argv)
    n = 4_000 if args.smoke else 20_000
    ticks = 3 if args.smoke else 5
    eval_functions = 500 if args.smoke else 2_000

    rng = np.random.default_rng(7)
    data = synthetic_dot(n=n, d=4, seed=7)
    k = max(1, data.n // 100)
    churn = max(1, data.n // 100)
    print(f"dataset: {data.name}, n={data.n}, d={data.d}, k={k}, churn={churn}/tick")

    # One engine for the service's lifetime.  Calibrate once: the probe
    # measures THIS machine's GEMM/dispatch/scalar costs and replaces the
    # hand-tuned defaults; persist the profile and restart with
    # ScoreEngine(values, tune=TuningProfile.load(path)) to skip it.
    # The RetryPolicy is the service's failure posture: per-work-unit
    # deadline, two retries per backend, then degrade a rung.
    engine = ScoreEngine(
        data.values,
        n_jobs=2,
        parallel_min_work=0,
        resilience=RetryPolicy(timeout_s=30.0, max_retries=2, backoff_base_s=0.01),
    )
    profile = engine.calibrate()
    print(
        f"calibrated: chunk_bytes={profile.chunk_bytes}, "
        f"parallel_min_work={profile.parallel_min_work}, "
        f"escalate_ratio={profile.backend_escalate_ratio:.3f}"
    )

    # The maintained views: the MDRC corner memo and the rank-regret
    # panel live across revisions; churn invalidates only what its score
    # bounds can touch, the rest is served verbatim.
    view = MDRCView(engine, k)
    representative = view.refresh().indices
    regret_view = RankRegretView(
        engine, representative, num_functions=eval_functions, rng=0
    )
    regret_view.refresh()
    print(f"initial representative: {len(representative)} tuples\n")

    # Chaos on: every fan-out submission now has a 10% chance of killing
    # its worker and a 10% chance of garbling its payload, deterministic
    # under this seed.  A real service doesn't install this — the OS
    # provides the faults — but recovery below is exactly what it gets.
    injector = FaultInjector(seed=7, crash=0.10, corrupt=0.10, max_faults=12)
    faults.install(injector)

    # A SIGINT mid-loop (ctrl-C, orchestrator restart) must not corrupt
    # the engine: the handler just requests a graceful stop at the next
    # tick boundary; queries in flight complete normally.
    stop_requested = False

    def on_sigint(signum, frame):
        nonlocal stop_requested
        stop_requested = True
        print("SIGINT received: finishing the current revision, then stopping")

    previous_handler = signal.signal(signal.SIGINT, on_sigint)

    total_updates = 0
    maintained_s = 0.0
    recompute_s = 0.0
    t_start = time.perf_counter()
    for tick in range(1, ticks + 1):
        # Row churn: expire 1% of the catalogue, ingest 1% fresh rows.
        doomed = rng.choice(engine.n, size=churn, replace=False)
        engine.delete_rows(doomed)
        fresh = rng.random((churn, data.d))
        engine.insert_rows(fresh)
        total_updates += 2 * churn

        if tick == 2:
            # Between revisions, force-kill a live pool worker — the
            # OOM-killer shape.  The supervisor's dead-PID probe notices
            # before the next submit and rebuilds the pool proactively
            # instead of deadlocking on a half-dead one.
            executor = engine._executors.get("process")
            if executor is None:
                executor = engine._build_executor("process")
            if not executor._pool._processes:
                # Pool workers spawn on first submit; poke it once so
                # there is a live worker to kill.
                executor._pool.submit(int, 0).result()
            victim = next(iter(executor._pool._processes.values()))
            victim.terminate()
            victim.join()
            print(f"tick {tick}: killed one pool worker (simulated OOM kill)")

        if tick == 3:
            # Deliver a real SIGINT to ourselves mid-loop.
            signal.raise_signal(signal.SIGINT)

        # Serve from the maintained views: refresh() settles this tick's
        # journal (firing the views' repair hooks) and replays only the
        # invalidated corners / stale functions — any work unit lost to
        # an injected fault is silently re-executed underneath.
        start = time.perf_counter()
        representative = view.refresh().indices
        regret_view.set_subset(representative)
        regret = regret_view.refresh()
        maintained_s += time.perf_counter() - start

        # The view contract, enforced live: a from-scratch recompute on
        # the same engine must agree bit-for-bit, every revision.
        start = time.perf_counter()
        fresh_rep = mdrc(engine.values, k, engine=engine).indices
        fresh_regret = rank_regret_sampled(
            engine.values, fresh_rep, num_functions=eval_functions, rng=0,
            engine=engine,
        )
        recompute_s += time.perf_counter() - start
        assert representative == fresh_rep, f"tick {tick}: representative diverged"
        assert regret == fresh_regret, f"tick {tick}: regret estimate diverged"

        print(
            f"tick {tick}: n={engine.n}, representative={len(representative)} "
            f"tuples, sampled rank-regret={regret} "
            f"({'OK' if regret <= k else 'ABOVE k'}), verified identical"
        )
        if stop_requested:
            print(f"tick {tick}: graceful stop honoured after a complete revision")
            stop_requested = False
    elapsed = time.perf_counter() - t_start
    signal.signal(signal.SIGINT, previous_handler)
    faults.uninstall()

    supervisor = engine._supervisor
    if supervisor is not None:
        recovered = {key: value for key, value in supervisor.stats.items() if value}
        print(f"\ninjected faults: {injector.injected}")
        print(f"recovery ledger: {recovered}")
    print(
        f"absorbed {total_updates} row updates across {ticks} revisions in "
        f"{elapsed:.2f}s while serving queries under injected faults "
        f"({total_updates / elapsed:,.0f} updates/s)"
    )
    if maintained_s > 0:
        print(
            f"view maintenance: {maintained_s:.3f}s maintained vs "
            f"{recompute_s:.3f}s recompute "
            f"({recompute_s / maintained_s:.1f}x, bit-identical every revision; "
            f"stats: {view.stats})"
        )

    # The exactness contract, demonstrated: after worker kills, injected
    # crashes/corruption and a SIGINT, a cold engine built on the final
    # matrix still gives bit-identical answers.
    cold = ScoreEngine(engine.values.copy())
    probe = sample_functions(data.d, 256, 1)
    assert np.array_equal(
        engine.topk_batch(probe, k).order, cold.topk_batch(probe, k).order
    )
    assert np.array_equal(
        engine.rank_of_best_batch(probe, representative),
        cold.rank_of_best_batch(probe, representative),
    )
    print("verified: post-recovery engine is bit-identical to a cold rebuild")
    view.close()
    regret_view.close()
    engine.close()
    cold.close()


if __name__ == "__main__":
    main()
