"""Quickstart: compute a rank-regret representative in a few lines.

The scenario from the paper's introduction: users rank items by linear
combinations of attributes, each with their own weights.  Instead of
shipping the whole dataset (or the huge convex hull), we hand every user a
tiny subset guaranteed to contain one of their top-k items.

Run:  python examples/quickstart.py
"""

from repro import (
    evaluate_representative,
    rank_regret_representative,
    skyline_representative,
    synthetic_dot,
)


def main() -> None:
    # A synthetic stand-in for the DOT flight-delay database (3 attributes).
    data = synthetic_dot(n=5000, d=3, seed=42)
    print(f"dataset: {data.name}, n={data.n}, d={data.d}")
    print(f"attributes: {', '.join(data.attributes)}")

    # The order-1 representative (the skyline) is large...
    sky = skyline_representative(data.values)
    print(f"\nskyline (order-1 representative for monotone functions): "
          f"{len(sky)} tuples")

    # ...but accepting rank-regret k = 1% of n shrinks it dramatically.
    result = rank_regret_representative(data, k=0.01)  # k = 50
    print(f"\nrank-regret representative (k = top-1% = {result.k}):")
    print(f"  method     : {result.method}")
    print(f"  size       : {result.size} tuples")
    print(f"  guarantee  : rank-regret <= {result.guarantee} (Theorem 6)")
    print(f"  indices    : {list(result.indices)}")

    # Measure what we actually achieved (10,000 sampled functions, as §6.1).
    report = evaluate_representative(data.values, result.indices, result.k)
    print(f"\nmeasured over 10,000 random ranking functions:")
    print(f"  rank-regret  : {report.rank_regret}  "
          f"({'within' if report.meets_k else 'ABOVE'} the requested k)")
    print(f"  regret-ratio : {report.regret_ratio:.4f}")


if __name__ == "__main__":
    main()
