"""Flight search scenario (paper §1, §6.1): the DOT on-time database.

A travel site wants to precompute a short list of flights such that *any*
user — whether they care most about departure delay, taxi time, or total
duration — finds one of their personal top-k in the list.  This script
compares the three RRR algorithms against the HD-RRMS regret-ratio
baseline, reproducing the qualitative outcome of Figures 17–18: the
regret-ratio optimum says nothing about rank.

Run:  python examples/flight_delays.py
"""

import time

from repro import (
    hd_rrms,
    md_rrr,
    mdrc,
    rank_regret_sampled,
    synthetic_dot,
)


def measure(name: str, values, indices, k: int) -> None:
    regret = rank_regret_sampled(values, indices, num_functions=5000, rng=0)
    status = "OK " if regret <= k else "MISS"
    print(f"  {name:<8} size={len(indices):>3}  rank-regret={regret:>5}  "
          f"[{status} vs k={k}]")


def main() -> None:
    n, d = 2000, 3
    k = 20  # top-1%
    data = synthetic_dot(n=n, d=d, seed=7)
    values = data.values
    print(f"DOT stand-in: n={n}, d={d} ({', '.join(data.attributes)})")
    print(f"target rank-regret: k = {k} (top-1%)\n")

    print("MDRC (function-space partitioning):")
    start = time.perf_counter()
    mdrc_result = mdrc(values, k)
    print(f"  solved in {time.perf_counter() - start:.2f}s, "
          f"{mdrc_result.cells} cells, "
          f"{mdrc_result.corner_evaluations} corner evaluations")
    measure("mdrc", values, mdrc_result.indices, k)

    print("\nMDRRR (hitting set over K-SETr k-sets):")
    start = time.perf_counter()
    mdrrr_result = md_rrr(values, k, rng=0)
    print(f"  solved in {time.perf_counter() - start:.2f}s over "
          f"{len(mdrrr_result.ksets)} k-sets "
          f"({mdrrr_result.sample_draws} random functions drawn)")
    measure("mdrrr", values, mdrrr_result.indices, k)

    print("\nHD-RRMS (regret-ratio baseline, same size budget as MDRC):")
    start = time.perf_counter()
    baseline = hd_rrms(values, max(1, len(mdrc_result.indices)), rng=0)
    print(f"  solved in {time.perf_counter() - start:.2f}s, "
          f"epsilon={baseline.epsilon:.4f}")
    measure("hd-rrms", values, baseline.indices, k)

    print("\nTakeaway: optimizing score regret (HD-RRMS) can leave some "
          "users' best choice thousands of ranks away; the RRR algorithms "
          "bound the *rank* loss directly.")


if __name__ == "__main__":
    main()
