"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

Not figures from the paper — these quantify the implementation decisions:
corner-cache on/off and item-choice policy in MDRC, greedy vs ε-net
hitting set in MDRRR, K-SETr patience, and the two interval-covering
greedies in 2DRRR.
"""

import pytest

from conftest import record_report
from repro.core import md_rrr, mdrc, two_d_rrr
from repro.evaluation import rank_regret_exact_2d
from repro.experiments.runner import make_dataset
from repro.geometry import sample_ksets
from repro.setcover import epsnet_hitting_set, greedy_hitting_set


@pytest.fixture(scope="module")
def md_dataset():
    return make_dataset("dot", 800, 3, seed=0)


@pytest.fixture(scope="module")
def two_d_dataset():
    return make_dataset("dot", 300, 2, seed=0)


@pytest.fixture(scope="module")
def kset_collection(md_dataset):
    return sample_ksets(md_dataset.values, 8, patience=100, rng=0).ksets


class TestMDRCCornerCache:
    def test_bench_with_cache(self, benchmark, md_dataset):
        assert benchmark(lambda: mdrc(md_dataset.values, 8, use_cache=True).indices)

    def test_bench_without_cache(self, benchmark, md_dataset):
        assert benchmark(lambda: mdrc(md_dataset.values, 8, use_cache=False).indices)

    def test_cache_saves_evaluations(self, md_dataset):
        with_cache = mdrc(md_dataset.values, 8, use_cache=True)
        without = mdrc(md_dataset.values, 8, use_cache=False)
        assert with_cache.indices == without.indices
        assert with_cache.corner_evaluations < without.corner_evaluations
        record_report(
            "Ablation: MDRC corner cache",
            f"| cache | corner evaluations |\n|---|---|\n"
            f"| on  | {with_cache.corner_evaluations} |\n"
            f"| off | {without.corner_evaluations} |",
        )


class TestMDRCChoicePolicy:
    def test_bench_first(self, benchmark, md_dataset):
        assert benchmark(lambda: mdrc(md_dataset.values, 8, choice="first").indices)

    def test_bench_best_rank(self, benchmark, md_dataset):
        assert benchmark(
            lambda: mdrc(md_dataset.values, 8, choice="best-rank").indices
        )


class TestHittingSetEngine:
    def test_bench_greedy(self, benchmark, kset_collection):
        assert benchmark(greedy_hitting_set, kset_collection)

    def test_bench_epsnet(self, benchmark, kset_collection):
        assert benchmark(
            lambda: epsnet_hitting_set(kset_collection, vc_dimension=3, rng=0)
        )

    def test_greedy_output_not_larger(self, kset_collection):
        greedy = greedy_hitting_set(kset_collection)
        eps = epsnet_hitting_set(kset_collection, vc_dimension=3, rng=0)
        record_report(
            "Ablation: hitting-set engine (same k-sets)",
            f"| engine | output size |\n|---|---|\n"
            f"| greedy | {len(greedy)} |\n| epsnet | {len(eps)} |",
        )
        assert len(greedy) <= len(eps) + 3


class TestKSetrPatience:
    @pytest.mark.parametrize("patience", [25, 100, 400])
    def test_bench_patience(self, benchmark, md_dataset, patience):
        outcome = benchmark.pedantic(
            sample_ksets,
            args=(md_dataset.values, 8),
            kwargs={"patience": patience, "rng": 0},
            rounds=1,
            iterations=1,
        )
        assert outcome.ksets

    def test_more_patience_finds_no_fewer_ksets(self, md_dataset):
        impatient = sample_ksets(md_dataset.values, 8, patience=25, rng=0)
        patient = sample_ksets(md_dataset.values, 8, patience=400, rng=0)
        assert len(patient.ksets) >= len(impatient.ksets)


class TestIntervalCoverStrategy:
    def test_bench_sweep_greedy(self, benchmark, two_d_dataset):
        assert benchmark(two_d_rrr, two_d_dataset.values, 6, "sweep")

    def test_bench_max_coverage_greedy(self, benchmark, two_d_dataset):
        assert benchmark(two_d_rrr, two_d_dataset.values, 6, "max-coverage")

    def test_both_strategies_valid(self, two_d_dataset):
        for strategy in ("sweep", "max-coverage"):
            chosen = two_d_rrr(two_d_dataset.values, 6, strategy)
            assert rank_regret_exact_2d(two_d_dataset.values, chosen) <= 12


class TestOnionIndex:
    """Onion (layered maxima) index vs. flat argpartition for repeated
    top-k probes — the access pattern of MDRC corners and K-SETr."""

    def test_bench_flat_topk(self, benchmark, md_dataset):
        from repro.ranking import sample_functions, top_k

        probes = sample_functions(3, 100, rng=0)
        benchmark(lambda: [top_k(md_dataset.values, w, 8) for w in probes])

    def test_bench_onion_topk(self, benchmark, md_dataset):
        from repro.ranking import OnionIndex, sample_functions

        probes = sample_functions(3, 100, rng=0)
        index = OnionIndex(md_dataset.values, max_layers=16)
        benchmark(lambda: [index.top_k(w, 8) for w in probes])

    def test_onion_matches_flat(self, md_dataset):
        import numpy as np

        from repro.ranking import OnionIndex, sample_functions, top_k

        index = OnionIndex(md_dataset.values, max_layers=16)
        for w in sample_functions(3, 25, rng=1):
            assert np.array_equal(
                index.top_k(w, 8), top_k(md_dataset.values, w, 8)
            )
        record_report(
            "Ablation: onion index",
            f"| layers | candidates for k=8 | n |\n|---|---|---|\n"
            f"| {index.num_layers} | {index.candidates(8).size} "
            f"| {md_dataset.n} |",
        )


class TestHDRRMSGamma:
    """Faithful gamma-quantized HD-RRMS vs. the idealized continuous
    binary search — the slack that produces the paper's rank failures."""

    def test_gamma_variants(self, md_dataset):
        from repro.baselines import hd_rrms
        from repro.evaluation import rank_regret_sampled

        k = 8
        faithful = hd_rrms(md_dataset.values, 5, gamma=0.05)
        idealized = hd_rrms(md_dataset.values, 5, gamma=None)
        r_faithful = rank_regret_sampled(
            md_dataset.values, faithful.indices, 2000, rng=0
        )
        r_ideal = rank_regret_sampled(
            md_dataset.values, idealized.indices, 2000, rng=0
        )
        record_report(
            "Ablation: HD-RRMS discretization granularity",
            f"| variant | epsilon | rank-regret (k={k}) |\n|---|---|---|\n"
            f"| gamma=0.05 (faithful) | {faithful.epsilon:.4f} | {r_faithful} |\n"
            f"| continuous (idealized) | {idealized.epsilon:.4f} | {r_ideal} |",
        )
        assert faithful.epsilon >= idealized.epsilon - 1e-9


class TestMDRRRSamplerReuse:
    def test_bench_md_rrr_reusing_ksets(self, benchmark, md_dataset, kset_collection):
        result = benchmark(
            lambda: md_rrr(md_dataset.values, 8, ksets=kset_collection).indices
        )
        assert result
