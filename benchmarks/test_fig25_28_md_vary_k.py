"""Figures 25–28: MD — efficiency and effectiveness vs k.

Paper shape: MDRRR's cost grows with k (more k-sets to enumerate) while
MDRC gets *faster* as k grows — larger top-k sets intersect sooner, so the
recursion terminates earlier.  Rank-regret of the proposed algorithms
stays within guarantees at every k.
"""

import pytest

from conftest import record_report
from repro.core import mdrc
from repro.experiments import BENCH_EXPERIMENTS, format_experiment_table, run_experiment
from repro.experiments.runner import make_dataset

DOT_CONFIG = BENCH_EXPERIMENTS["fig25_26"]
BN_CONFIG = BENCH_EXPERIMENTS["fig27_28"]


@pytest.mark.parametrize("fraction", DOT_CONFIG.values)
def test_bench_mdrc_by_k(benchmark, fraction):
    dataset = make_dataset("dot", DOT_CONFIG.n, DOT_CONFIG.d, seed=DOT_CONFIG.seed)
    k = max(1, round(fraction * dataset.n))
    assert benchmark(lambda: mdrc(dataset.values, k).indices)


def test_mdrc_cell_count_shrinks_with_k():
    """The mechanism behind the paper's 'MDRC gets faster as k grows'."""
    dataset = make_dataset("dot", DOT_CONFIG.n, 3, seed=0)
    small_k = mdrc(dataset.values, max(1, round(0.01 * dataset.n)))
    large_k = mdrc(dataset.values, max(1, round(0.1 * dataset.n)))
    assert large_k.corner_evaluations <= small_k.corner_evaluations


@pytest.mark.parametrize(
    "config,title",
    [
        (DOT_CONFIG, "Figures 25-26: DOT MD, vary k"),
        (BN_CONFIG, "Figures 27-28: BN MD, vary k"),
    ],
    ids=["dot", "bn"],
)
def test_fig25_28_tables(benchmark, config, title):
    rows = benchmark.pedantic(run_experiment, args=(config,), rounds=1, iterations=1)
    record_report(title, format_experiment_table(rows))
    for row in rows:
        if row.algorithm == "mdrrr":
            assert row.rank_regret <= row.k
        elif row.algorithm == "mdrc":
            assert row.rank_regret <= row.d * row.k
