"""Figures 21–24: MD — efficiency and effectiveness vs dimensionality.

Paper shape: MDRRR degrades quickly with d (K-SETr must collect ever more
k-sets); MDRC and HD-RRMS stay fast; rank-regret of the proposed
algorithms stays within the guarantees while HD-RRMS's can reach a large
fraction of n.
"""

import pytest

from conftest import record_report
from repro.core import mdrc
from repro.experiments import BENCH_EXPERIMENTS, format_experiment_table, run_experiment
from repro.experiments.runner import make_dataset

DOT_CONFIG = BENCH_EXPERIMENTS["fig21_22"]
BN_CONFIG = BENCH_EXPERIMENTS["fig23_24"]


@pytest.mark.parametrize("d", [int(v) for v in DOT_CONFIG.values])
def test_bench_mdrc_by_dimension(benchmark, d):
    dataset = make_dataset("dot", DOT_CONFIG.n, d, seed=DOT_CONFIG.seed)
    k = max(1, round(DOT_CONFIG.k_fraction * dataset.n))
    result = benchmark(lambda: mdrc(dataset.values, k).indices)
    assert result


@pytest.mark.parametrize(
    "config,title",
    [
        (DOT_CONFIG, "Figures 21-22: DOT MD, vary d"),
        (BN_CONFIG, "Figures 23-24: BN MD, vary d"),
    ],
    ids=["dot", "bn"],
)
def test_fig21_24_tables(benchmark, config, title):
    rows = benchmark.pedantic(run_experiment, args=(config,), rounds=1, iterations=1)
    record_report(title, format_experiment_table(rows))
    for row in rows:
        if row.algorithm == "mdrrr":
            assert row.rank_regret <= row.k
        elif row.algorithm == "mdrc":
            assert row.rank_regret <= row.d * row.k
        if row.algorithm == "mdrrr":
            assert row.output_size < 40
        elif row.algorithm == "mdrc":
            # The paper's <40 holds at n=10K where absolute k is 5-12x
            # larger; at bench-scale k MDRC needs more cells.
            assert row.output_size < 100
