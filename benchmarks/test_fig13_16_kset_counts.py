"""Figures 13–16: k-set counts vs k and d, on DOT and Blue Nile.

Paper shape: measured |S| is dramatically below the theoretical upper
bounds, grows with k (toward 50%) and with d; K-SETr's run time grows with
|S| as the coupon-collector needs more draws.
"""

import pytest

from conftest import record_report
from repro.experiments import BENCH_EXPERIMENTS, format_kset_table, run_kset_count
from repro.geometry import sample_ksets
from repro.experiments.runner import make_dataset


@pytest.mark.parametrize("figure", ["fig13", "fig14", "fig15", "fig16"])
def test_kset_count_tables(benchmark, figure):
    config = BENCH_EXPERIMENTS[figure]
    rows = benchmark.pedantic(run_kset_count, args=(config,), rounds=1, iterations=1)
    titles = {
        "fig13": "Figure 13: DOT, #k-sets vs k (d=3)",
        "fig14": "Figure 14: DOT, #k-sets vs d",
        "fig15": "Figure 15: BN, #k-sets vs k (d=3)",
        "fig16": "Figure 16: BN, #k-sets vs d",
    }
    record_report(titles[figure], format_kset_table(rows))
    for row in rows:
        assert row.num_ksets >= 1
    # Shape: count grows along the sweep axis (k or d) for these scales.
    counts = [r.num_ksets for r in rows]
    assert counts[-1] >= counts[0]


def test_bench_ksetr_sampler(benchmark):
    config = BENCH_EXPERIMENTS["fig13"]
    dataset = make_dataset("dot", config.n, 3, seed=config.seed)
    k = max(1, round(0.05 * config.n))
    outcome = benchmark(
        lambda: sample_ksets(dataset.values, k, patience=config.patience, rng=0)
    )
    assert outcome.ksets
