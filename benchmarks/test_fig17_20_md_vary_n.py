"""Figures 17–20: MD (d=3) — efficiency and effectiveness vs n, DOT and BN.

Paper shape: MDRRR is the slowest (k-set enumeration bottleneck) and stops
scaling first; MDRC is fastest at scale; MDRRR/MDRC keep rank-regret ≤ k
(≤ d·k guaranteed for MDRC) while HD-RRMS — given the same output size as
MDRC — has no rank guarantee at all.
"""

import pytest

from conftest import record_report
from repro.baselines import hd_rrms
from repro.core import md_rrr, mdrc
from repro.experiments import BENCH_EXPERIMENTS, format_experiment_table, run_experiment
from repro.experiments.runner import make_dataset

DOT_CONFIG = BENCH_EXPERIMENTS["fig17_18"]
BN_CONFIG = BENCH_EXPERIMENTS["fig19_20"]
LARGEST_N = int(max(DOT_CONFIG.values))


@pytest.fixture(scope="module")
def dot_dataset():
    return make_dataset("dot", LARGEST_N, DOT_CONFIG.d, seed=DOT_CONFIG.seed)


@pytest.fixture(scope="module")
def k(dot_dataset):
    return max(1, round(DOT_CONFIG.k_fraction * dot_dataset.n))


def test_bench_mdrc(benchmark, dot_dataset, k):
    assert benchmark(lambda: mdrc(dot_dataset.values, k).indices)


def test_bench_mdrrr(benchmark, dot_dataset, k):
    assert benchmark(lambda: md_rrr(dot_dataset.values, k, rng=0).indices)


def test_bench_hd_rrms(benchmark, dot_dataset):
    assert benchmark(lambda: hd_rrms(dot_dataset.values, 10, rng=0).indices)


@pytest.mark.parametrize(
    "config,title",
    [
        (DOT_CONFIG, "Figures 17-18: DOT MD, vary n"),
        (BN_CONFIG, "Figures 19-20: BN MD, vary n"),
    ],
    ids=["dot", "bn"],
)
def test_fig17_20_tables(benchmark, config, title):
    rows = benchmark.pedantic(run_experiment, args=(config,), rounds=1, iterations=1)
    record_report(title, format_experiment_table(rows))
    for row in rows:
        if row.algorithm == "mdrrr":
            assert row.rank_regret <= row.k
        elif row.algorithm == "mdrc":
            assert row.rank_regret <= row.d * row.k
        if row.algorithm == "mdrrr":
            assert row.output_size < 40
        elif row.algorithm == "mdrc":
            # The paper's <40 holds at n=10K where absolute k is 5-12x
            # larger; at bench-scale k MDRC needs more cells.
            assert row.output_size < 100
