"""Figures 11–12: DOT 2-D — efficiency and effectiveness vs k.

Paper shape: 2DRRR/MDRRR runtimes track the sweep; MDRC runs in
milliseconds at every k; output sizes stay near-optimal with rank-regret
at or below k for nearly every setting.
"""

import pytest

from conftest import record_report
from repro.core import two_d_rrr
from repro.evaluation import rank_regret_exact_2d
from repro.experiments import BENCH_EXPERIMENTS, format_experiment_table, run_experiment
from repro.experiments.runner import make_dataset

CONFIG = BENCH_EXPERIMENTS["fig11_12"]


@pytest.fixture(scope="module")
def dataset():
    return make_dataset("dot", CONFIG.n, 2, seed=CONFIG.seed)


@pytest.mark.parametrize("fraction", CONFIG.values)
def test_bench_2drrr_by_k(benchmark, dataset, fraction):
    k = max(1, round(fraction * dataset.n))
    chosen = benchmark(two_d_rrr, dataset.values, k)
    assert rank_regret_exact_2d(dataset.values, chosen) <= 2 * k


def test_fig11_12_table(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(CONFIG,), rounds=1, iterations=1)
    record_report("Figures 11-12: DOT 2D, vary k", format_experiment_table(rows))
    for row in rows:
        factor = {"2drrr": 2, "mdrrr": 1, "mdrc": 2}[row.algorithm]
        assert row.rank_regret <= factor * row.k
