"""Scale probe: the rank-vs-score divergence grows with n (Figure 18's
headline number, 112K rank-regret at n = 400K, reproduced in miniature).

At bench scale (n ≈ 1–2K) HD-RRMS's rank-regret already violates k on
DOT; this probe runs the two fast algorithms at n = 20K to show the gap
*widening* with n — the paper's central quantitative trend — without the
quadratic/k-set algorithms that cannot reach this size in pure Python.
"""

import pytest

from conftest import record_report
from repro.baselines import hd_rrms
from repro.core import mdrc
from repro.evaluation import rank_regret_sampled
from repro.experiments.runner import make_dataset

SIZES = (2_000, 20_000)


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for n in SIZES:
        data = make_dataset("dot", n, 3, seed=0)
        k = n // 100
        mdrc_result = mdrc(data.values, k)
        mdrc_regret = rank_regret_sampled(data.values, mdrc_result.indices, 2000, rng=0)
        baseline = hd_rrms(data.values, max(1, len(mdrc_result.indices)), rng=0)
        base_regret = rank_regret_sampled(data.values, baseline.indices, 2000, rng=0)
        rows.append((n, k, mdrc_regret, base_regret))
    return rows


def test_scale_probe_table(measurements):
    lines = ["| n | k | mdrc rank-regret | hd-rrms rank-regret |", "|---|---|---|---|"]
    for n, k, m, b in measurements:
        lines.append(f"| {n} | {k} | {m} | {b} |")
    record_report("Scale probe: rank-regret divergence vs n (DOT, d=3)", "\n".join(lines))


def test_mdrc_stays_within_guarantee(measurements):
    for n, k, mdrc_regret, _ in measurements:
        assert mdrc_regret <= 3 * k


def test_hd_rrms_violation_grows_with_n(measurements):
    """The paper's shape: the baseline's rank-regret grows superlinearly
    relative to k as n grows."""
    (_, k_small, _, base_small), (_, k_large, _, base_large) = measurements
    assert base_large > k_large  # violates at scale
    assert base_large / k_large >= base_small / k_small * 0.5  # gap persists


def test_bench_mdrc_at_20k(benchmark):
    data = make_dataset("dot", 20_000, 3, seed=0)
    assert benchmark.pedantic(
        lambda: mdrc(data.values, 200).indices, rounds=1, iterations=2
    )
