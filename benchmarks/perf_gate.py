#!/usr/bin/env python
"""Perf-regression gate: times the engine-backed hot paths, writes BENCH_*.json.

Three bench-scale workloads (the ops the ``repro.engine`` refactor targets):

* ``mdrc``                — MDRC at d = 4 (frontier-batched corner probes);
* ``ksetr``               — K-SETr sampling (batched draws, bitset dedup);
* ``rank_regret_sampled`` — the Monte-Carlo estimator (chunked GEMM counting).

For each op the script measures BOTH the current implementation and the
frozen pre-engine reference (:mod:`repro.engine.reference`), asserts their
outputs agree, and records ``median_s`` / ``baseline_median_s`` / ``speedup``
in a machine-readable JSON file at the repository root.

Gate semantics: if an earlier ``BENCH_PR*.json`` exists, the run FAILS
(exit 1) when any op's fresh ``median_s`` regresses more than 20% against
the newest committed file — every future PR inherits this floor.

Usage::

    PYTHONPATH=src python benchmarks/perf_gate.py [--repeats 5] [--quick]

``--quick`` shrinks the workloads ~4x for a fast smoke run (its numbers are
NOT meant to be committed).
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_NAME = "BENCH_PR2.json"
REGRESSION_SLACK = 1.20  # fail when median_s exceeds previous by >20%


def _median_time(fn, repeats: int) -> tuple[float, object]:
    times = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), result


def _bench_mdrc(repeats: int, quick: bool) -> dict:
    from repro.core import mdrc
    from repro.datasets import independent
    from repro.engine.reference import reference_mdrc

    n, d, k = (1000, 4, 8) if quick else (2000, 4, 5)
    values = independent(n, d, seed=0).values
    mdrc(values, k)  # warm caches / BLAS
    base_s, base = _median_time(lambda: reference_mdrc(values, k), repeats)
    new_s, new = _median_time(lambda: mdrc(values, k), repeats)
    assert new.indices == base.indices, "mdrc output diverged from reference"
    return {
        "op": "mdrc",
        "dataset": "independent",
        "n": n,
        "d": d,
        "k": k,
        "median_s": new_s,
        "baseline_median_s": base_s,
        "speedup": base_s / new_s,
    }


def _bench_ksetr(repeats: int, quick: bool) -> dict:
    from repro.datasets import independent
    from repro.engine.reference import reference_sample_ksets
    from repro.geometry.ksets import sample_ksets

    n, d, k = (2000, 4, 10) if quick else (5000, 4, 25)
    values = independent(n, d, seed=0).values
    sample_ksets(values, k, patience=50, rng=1)  # warm
    base_s, base = _median_time(
        lambda: reference_sample_ksets(values, k, patience=100, rng=0), repeats
    )
    new_s, new = _median_time(
        lambda: sample_ksets(values, k, patience=100, rng=0), repeats
    )
    assert new.ksets == base.ksets and new.draws == base.draws, (
        "sample_ksets output diverged from reference"
    )
    return {
        "op": "ksetr",
        "dataset": "independent",
        "n": n,
        "d": d,
        "k": k,
        "draws": new.draws,
        "median_s": new_s,
        "baseline_median_s": base_s,
        "speedup": base_s / new_s,
    }


def _bench_rank_regret_sampled(repeats: int, quick: bool) -> dict:
    from repro.core import mdrc
    from repro.datasets import synthetic_dot
    from repro.engine.reference import reference_rank_regret_sampled
    from repro.evaluation import rank_regret_sampled

    n, d, m = (5000, 4, 2000) if quick else (20000, 4, 10000)
    values = synthetic_dot(n=n, d=d, seed=0).values
    subset = mdrc(values, max(1, n // 100)).indices
    rank_regret_sampled(values, subset, 100, rng=0)  # warm
    base_s, base = _median_time(
        lambda: reference_rank_regret_sampled(values, subset, m, rng=0), repeats
    )
    new_s, new = _median_time(
        lambda: rank_regret_sampled(values, subset, m, rng=0), repeats
    )
    assert new == base, "rank_regret_sampled estimate diverged from reference"
    return {
        "op": "rank_regret_sampled",
        "dataset": "dot",
        "n": n,
        "d": d,
        "k": None,
        "num_functions": m,
        "median_s": new_s,
        "baseline_median_s": base_s,
        "speedup": base_s / new_s,
    }


def _previous_bench(output: Path) -> tuple[Path, dict] | None:
    """The newest committed BENCH_PR*.json other than ``output``."""
    candidates = []
    for path in REPO_ROOT.glob("BENCH_PR*.json"):
        if path.resolve() == output.resolve():
            continue
        match = re.search(r"BENCH_PR(\d+)", path.name)
        if match:
            candidates.append((int(match.group(1)), path))
    if not candidates:
        return None
    _, newest = max(candidates)
    return newest, json.loads(newest.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true", help="~4x smaller workloads")
    parser.add_argument("--output", type=Path, default=REPO_ROOT / BENCH_NAME)
    args = parser.parse_args(argv)

    ops = [
        _bench_mdrc(args.repeats, args.quick),
        _bench_ksetr(args.repeats, args.quick),
        _bench_rank_regret_sampled(args.repeats, args.quick),
    ]

    print(f"{'op':<22}{'n':>8}{'d':>3}  {'baseline':>10}  {'engine':>10}  {'speedup':>8}")
    for row in ops:
        print(
            f"{row['op']:<22}{row['n']:>8}{row['d']:>3}"
            f"  {row['baseline_median_s']:>9.3f}s  {row['median_s']:>9.3f}s"
            f"  {row['speedup']:>7.1f}x"
        )

    report = {
        "schema": 1,
        "bench": BENCH_NAME.removesuffix(".json"),
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "ops": ops,
    }

    failures = []
    previous = _previous_bench(args.output)
    if previous is not None:
        prev_path, prev = previous
        prev_ops = {row["op"]: row for row in prev.get("ops", [])}
        if prev.get("quick"):
            print(f"\nprevious {prev_path.name} was a --quick run; gate skipped")
        else:
            for row in ops:
                old = prev_ops.get(row["op"])
                if old is None or args.quick:
                    continue
                if row["median_s"] > REGRESSION_SLACK * old["median_s"]:
                    failures.append(
                        f"{row['op']}: {row['median_s']:.3f}s vs "
                        f"{old['median_s']:.3f}s in {prev_path.name} "
                        f"(>{(REGRESSION_SLACK - 1) * 100:.0f}% regression)"
                    )
            print(f"\ngate vs {prev_path.name}: " + ("FAIL" if failures else "ok"))

    if not args.quick:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    for failure in failures:
        print("REGRESSION:", failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
