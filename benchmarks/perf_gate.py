#!/usr/bin/env python
"""Perf-regression gate: times the engine-backed hot paths, writes BENCH_*.json.

Four bench-scale workloads (the ops the ``repro.engine`` refactor targets):

* ``mdrc``                — MDRC at d = 4 (frontier-batched corner probes);
* ``ksetr``               — K-SETr sampling (quantized screening, byte dedup);
* ``rank_regret_sampled`` — the Monte-Carlo estimator (pruned rank counting);
* ``update_throughput``   — incremental row churn on a long-lived engine
  (insert/delete + query) vs delete-rebuild-requery from scratch;
* ``view_maintenance``    — materialized representative views under churn
  (corner-memo repair + regret patching) vs recompute-per-revision,
  bit-identity asserted at every revision;
* ``serving_load``        — the async HTTP front-end (:mod:`repro.serve`)
  under concurrent clients: request coalescing vs sequential keep-alive
  requests, sustained QPS + p50/p99 latency, every response asserted
  bit-identical to a direct engine call;
* ``recovery``            — crash recovery of the durable serving state
  (:mod:`repro.engine.wal`): newest-snapshot load + WAL-suffix replay vs
  replaying the entire mutation history onto the boot matrix, both
  asserted bit-identical to the engine that lived through the churn.

``--history`` prints a cross-PR table of every op's median/speedup from
all committed ``BENCH_PR*.json`` files instead of running anything.

For each op the script measures BOTH the current implementation and the
frozen pre-engine reference (:mod:`repro.engine.reference`), asserts their
outputs agree, and records ``median_s`` / ``baseline_median_s`` / ``speedup``
in a machine-readable JSON file at the repository root.  Each op also
carries a ``backends`` column — serial/thread/process wall time at
``--backend-jobs`` workers (ops whose per-call work sits below the
engine's fan-out cutover legitimately time like serial) — and the report
ends with a ``quant`` section: the quantized tier's resolved/screened
hit rate and chosen level for a top-k and a rank workload at bench
scale.

Gate semantics: if an earlier ``BENCH_PR*.json`` exists, the run FAILS
(exit 1) when any op's fresh ``median_s`` regresses more than 20% against
the newest committed file — every future PR inherits this floor.

Usage::

    PYTHONPATH=src python benchmarks/perf_gate.py [--repeats 5] [--quick]
                                                  [--jobs N] [--smoke]
                                                  [--faults]

``--quick`` shrinks the workloads ~4x for a fast smoke run (its numbers are
NOT meant to be committed).  ``--jobs`` runs the current implementations
with the engine's process fan-out (the references stay serial).

``--smoke`` (alias ``--check-only``) is the CI mode: run every op at
reduced scale, check *exactness* against the references plus
serial-vs-parallel bit-identity of the fan-out layer, and skip the timing
gate entirely — noisy shared runners can never flake it.  No JSON is
written in this mode; the timing gate stays a local/dev concern.

``--faults`` additionally runs the deterministic fault-injection probe
(:mod:`repro.engine.faults` + :mod:`repro.engine.resilience`): injected
worker crashes, hangs, corrupted payloads, shm allocation failures and a
torn tuning profile must all recover without process death, bit-identical
to the fault-free serial run, leaking no ``/dev/shm`` segment.  It also
runs the kill-9 chaos drill: a real ``repro serve --data-dir`` process is
SIGKILLed mid-churn, restarted on the same data dir, handed a keyed retry
of the in-flight mutation (which must apply exactly once), and asserted
bit-identical — top-k, rank and representative — against an in-process
oracle server that never died.
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_NAME = "BENCH_PR9.json"
REGRESSION_SLACK = 1.20  # fail when median_s exceeds previous by >20%


def _median_time(fn, repeats: int) -> tuple[float, object]:
    times = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), result


def _backend_column(fn, repeats: int, backend_jobs: int) -> dict:
    """Per-backend medians of one op: serial, thread, process.

    ``fn(backend, jobs)`` runs the op once.  Thread/process run at
    ``backend_jobs`` workers; an op whose per-call work sits below the
    engine's serial cutover never fans out and legitimately times like
    serial.  Each call builds (and closes) its own engine, so the
    process column includes per-call pool construction — the cost a
    one-shot caller pays; persistent-engine callers amortize it away.
    Informational only — the regression gate reads ``median_s``.
    """
    column = {}
    for backend, jobs in (
        ("serial", None),
        ("thread", backend_jobs),
        ("process", backend_jobs),
    ):
        fn(backend, jobs)  # warm pool/caches for this backend
        column[backend], _ = _median_time(
            lambda: fn(backend, jobs), max(1, repeats - 2)
        )
    return column


def _bench_mdrc(repeats: int, quick: bool, jobs: int | None, backend_jobs: int) -> dict:
    from repro.core import mdrc
    from repro.datasets import independent
    from repro.engine.reference import reference_mdrc

    n, d, k = (1000, 4, 8) if quick else (2000, 4, 5)
    values = independent(n, d, seed=0).values
    mdrc(values, k, jobs=jobs)  # warm caches / BLAS / pool
    base_s, base = _median_time(lambda: reference_mdrc(values, k), repeats)
    new_s, new = _median_time(lambda: mdrc(values, k, jobs=jobs), repeats)
    assert new.indices == base.indices, "mdrc output diverged from reference"
    backends = _backend_column(
        lambda backend, bj: mdrc(values, k, jobs=bj, backend=backend),
        repeats,
        backend_jobs,
    )
    return {
        "op": "mdrc",
        "dataset": "independent",
        "n": n,
        "d": d,
        "k": k,
        "median_s": new_s,
        "baseline_median_s": base_s,
        "speedup": base_s / new_s,
        "backends": backends,
    }


def _bench_ksetr(repeats: int, quick: bool, jobs: int | None, backend_jobs: int) -> dict:
    from repro.datasets import independent
    from repro.engine.reference import reference_sample_ksets
    from repro.geometry.ksets import sample_ksets

    n, d, k = (2000, 4, 10) if quick else (5000, 4, 25)
    values = independent(n, d, seed=0).values
    sample_ksets(values, k, patience=50, rng=1, jobs=jobs)  # warm
    base_s, base = _median_time(
        lambda: reference_sample_ksets(values, k, patience=100, rng=0), repeats
    )
    new_s, new = _median_time(
        lambda: sample_ksets(values, k, patience=100, rng=0, jobs=jobs), repeats
    )
    assert new.ksets == base.ksets and new.draws == base.draws, (
        "sample_ksets output diverged from reference"
    )
    backends = _backend_column(
        lambda backend, bj: sample_ksets(
            values, k, patience=100, rng=0, jobs=bj, backend=backend
        ),
        repeats,
        backend_jobs,
    )
    return {
        "op": "ksetr",
        "dataset": "independent",
        "n": n,
        "d": d,
        "k": k,
        "draws": new.draws,
        "median_s": new_s,
        "baseline_median_s": base_s,
        "speedup": base_s / new_s,
        "backends": backends,
    }


def _bench_rank_regret_sampled(
    repeats: int, quick: bool, jobs: int | None, backend_jobs: int
) -> dict:
    from repro.core import mdrc
    from repro.datasets import synthetic_dot
    from repro.engine.reference import reference_rank_regret_sampled
    from repro.evaluation import rank_regret_sampled

    n, d, m = (5000, 4, 2000) if quick else (20000, 4, 10000)
    values = synthetic_dot(n=n, d=d, seed=0).values
    subset = mdrc(values, max(1, n // 100)).indices
    rank_regret_sampled(values, subset, 100, rng=0, jobs=jobs)  # warm
    base_s, base = _median_time(
        lambda: reference_rank_regret_sampled(values, subset, m, rng=0), repeats
    )
    new_s, new = _median_time(
        lambda: rank_regret_sampled(values, subset, m, rng=0, jobs=jobs), repeats
    )
    assert new == base, "rank_regret_sampled estimate diverged from reference"
    backends = _backend_column(
        lambda backend, bj: rank_regret_sampled(
            values, subset, m, rng=0, jobs=bj, backend=backend
        ),
        repeats,
        backend_jobs,
    )
    return {
        "op": "rank_regret_sampled",
        "dataset": "dot",
        "n": n,
        "d": d,
        "k": None,
        "num_functions": m,
        "median_s": new_s,
        "baseline_median_s": base_s,
        "speedup": base_s / new_s,
        "backends": backends,
    }


def _bench_update_throughput(repeats: int, quick: bool) -> dict:
    """Incremental insert/delete+query vs delete-rebuild-requery.

    Simulates a long-lived representative-serving engine absorbing row
    churn: per revision, 1% of the rows are deleted (uniformly at
    random), 1% fresh rows are inserted, and a query mix (a top-k batch
    plus a rank probe against its first k-set) is served.  The
    *incremental* path mutates one persistent engine through
    ``delete_rows``/``insert_rows`` (orderings merge-repaired, quantized
    stores patched, caches invalidated); the *rebuild* baseline applies
    the same churn to a plain matrix and constructs a fresh engine every
    revision — paying the argsorts, the quantizer's dynamic-range probe
    and the store quantization again each time.  Query results are
    asserted bit-identical between the two paths every revision.
    """
    from repro.datasets import independent
    from repro.engine import ScoreEngine
    from repro.ranking.sampling import sample_functions

    n, d = (20_000, 4) if quick else (100_000, 4)
    churn = max(1, n // 100)
    revisions = 3 if quick else 5
    k = 10
    queries = sample_functions(d, 64, 0)
    base = independent(n, d, seed=0).values

    # Pre-generate the churn so both paths replay the identical sequence
    # (n is constant across revisions: churn out == churn in).
    rng = np.random.default_rng(1)
    deads = [rng.choice(n, size=churn, replace=False) for _ in range(revisions)]
    news = [rng.random((churn, d)) for _ in range(revisions)]

    def churn_loop(engine_for) -> list[tuple[np.ndarray, np.ndarray]]:
        results = []
        matrix = base
        for dead, new in zip(deads, news):
            matrix = np.vstack([np.delete(matrix, dead, axis=0), new])
            engine = engine_for(dead, new, matrix)
            batch = engine.topk_batch(queries, k)
            subset = batch.order[0]
            results.append((batch.order, engine.rank_of_best_batch(queries, subset)))
        return results

    def incremental() -> list[tuple[np.ndarray, np.ndarray]]:
        # The persistent engine and its one-time pre-churn build are set
        # up OUTSIDE the timed region: a long-lived service pays them
        # once and amortizes them over every later revision — the bench
        # measures the steady state, mutation + query per revision.
        def mutate(dead, new, _matrix):
            live.delete_rows(dead)
            live.insert_rows(new)
            return live

        return churn_loop(mutate)

    def rebuild() -> list[tuple[np.ndarray, np.ndarray]]:
        def fresh(_dead, _new, matrix):
            engines.append(ScoreEngine(matrix))
            return engines[-1]

        engines: list[ScoreEngine] = []
        try:
            return churn_loop(fresh)
        finally:
            for engine in engines:
                engine.close()

    inc_times, reb_times = [], []
    inc = reb = None
    for _ in range(max(1, repeats)):
        live = ScoreEngine(base)
        live.topk_batch(queries, k)  # one-time build, untimed
        t0 = time.perf_counter()
        inc = incremental()
        inc_times.append(time.perf_counter() - t0)
        live.close()
        t0 = time.perf_counter()
        reb = rebuild()
        reb_times.append(time.perf_counter() - t0)
    inc_s = statistics.median(inc_times)
    reb_s = statistics.median(reb_times)
    for r, ((inc_o, inc_r), (reb_o, reb_r)) in enumerate(zip(inc, reb)):
        assert np.array_equal(inc_o, reb_o), f"incremental top-k diverged (rev {r})"
        assert np.array_equal(inc_r, reb_r), f"incremental ranks diverged (rev {r})"
    return {
        "op": "update_throughput",
        "dataset": "independent",
        "n": n,
        "d": d,
        "k": k,
        "churn": churn,
        "revisions": revisions,
        "median_s": inc_s,
        "baseline_median_s": reb_s,
        "speedup": reb_s / inc_s,
        "updates_per_s": 2 * churn * revisions / inc_s,
    }


def _bench_view_maintenance(repeats: int, quick: bool) -> dict:
    """Maintained representatives vs recompute-per-revision.

    The materialized-view layer (:mod:`repro.engine.views`) keeps the
    MDRC decision tree and the Monte-Carlo regret panel alive across row
    churn: per revision 1% of the rows are deleted, 1% inserted, and the
    representative plus its sampled rank-regret are served again.  The
    *maintained* path repairs the corner memo in place (reserve-buffer
    compaction for deletes, banded placement for inserts), re-decides
    only cells whose corner top-k actually changed, and patches the
    regret estimate by exact ±counting; the *recompute* baseline does
    what a system without the view layer must — build a fresh engine
    over the mutated matrix and run ``mdrc`` + ``rank_regret_sampled``
    from scratch every revision.  Both answers are asserted bit-identical
    at every revision.
    """
    from repro.core import mdrc
    from repro.engine import MDRCView, RankRegretView, ScoreEngine
    from repro.evaluation import rank_regret_sampled

    n, d = (20_000, 4) if quick else (100_000, 4)
    churn = max(1, n // 100)
    revisions = 3 if quick else 5
    k = 25
    functions = 1024 if quick else 4096

    rng = np.random.default_rng(1)
    base = rng.random((n, d))
    deads = [rng.choice(n, size=churn, replace=False) for _ in range(revisions)]
    news = [rng.random((churn, d)) for _ in range(revisions)]

    maint_times, rec_times = [], []
    maintained = recomputed = None
    for _ in range(max(1, repeats)):
        # The long-lived service: engine + views built once, untimed.
        engine = ScoreEngine(base)
        view = MDRCView(engine, k)
        rview = RankRegretView(
            engine, view.refresh().indices, num_functions=functions, rng=0
        )
        rview.refresh()
        maintained = []
        t0 = time.perf_counter()
        for dead, new in zip(deads, news):
            engine.delete_rows(dead)
            engine.insert_rows(new)
            rep = view.refresh().indices
            rview.set_subset(rep)
            maintained.append((rep, rview.refresh()))
        maint_times.append(time.perf_counter() - t0)
        stats = dict(view.stats)
        view.close()
        rview.close()
        engine.close()

        # Recompute-per-revision: no views, no incremental engine — a
        # fresh build over the mutated matrix each time.
        matrix = base
        recomputed = []
        t0 = time.perf_counter()
        for dead, new in zip(deads, news):
            matrix = np.vstack([np.delete(matrix, dead, axis=0), new])
            with ScoreEngine(matrix) as cold:
                rep = mdrc(matrix, k, engine=cold).indices
                regret = rank_regret_sampled(
                    matrix, rep, num_functions=functions, rng=0, engine=cold
                )
            recomputed.append((rep, regret))
        rec_times.append(time.perf_counter() - t0)
    for r, ((m_rep, m_reg), (c_rep, c_reg)) in enumerate(
        zip(maintained, recomputed)
    ):
        assert m_rep == c_rep, f"maintained representative diverged (rev {r})"
        assert m_reg == c_reg, f"maintained regret estimate diverged (rev {r})"
    maint_s = statistics.median(maint_times)
    rec_s = statistics.median(rec_times)
    return {
        "op": "view_maintenance",
        "dataset": "uniform",
        "n": n,
        "d": d,
        "k": k,
        "churn": churn,
        "revisions": revisions,
        "functions": functions,
        "median_s": maint_s,
        "baseline_median_s": rec_s,
        "speedup": rec_s / maint_s,
        "view_stats": {key: int(value) for key, value in stats.items()},
    }


def _bench_serving_load(repeats: int, quick: bool) -> dict:
    """Sustained serving throughput: concurrent clients vs sequential HTTP.

    Boots the asyncio front-end (:mod:`repro.serve`) on a bench-scale
    matrix and fires a fixed request count from concurrent client
    threads; the coalescer stacks whatever accumulates in its queue into
    shared ``topk_batch`` engine calls and de-interleaves the result
    rows.  Every response is asserted bit-identical to a direct
    :class:`ScoreEngine` call over the same matrix — the exactness
    contract, measured under load.  The baseline issues the same
    requests sequentially over one keep-alive connection (nothing
    concurrent, nothing to coalesce) — what a client pays without the
    coalescing front-end.  Reports sustained QPS and p50/p99 latency;
    the gate reads the concurrent storm's ``median_s``.
    """
    import threading

    from repro.engine import ScoreEngine
    from repro.serve import ServerConfig, ServerThread, ServiceClient

    n, d, k, m = (5_000, 4, 10, 4) if quick else (20_000, 4, 10, 4)
    clients = 4 if quick else 8
    per_client = 8 if quick else 12
    total = clients * per_client
    rng = np.random.default_rng(0)
    values = rng.random((n, d))
    requests = [
        [rng.random((m, d)) for _ in range(per_client)] for _ in range(clients)
    ]

    with ScoreEngine(values, float32=True) as direct:
        references = [
            [direct.topk_batch(weights, k) for weights in chunk]
            for chunk in requests
        ]

    storm_times, seq_times = [], []
    latencies: list[float] = []
    config = ServerConfig(port=0, max_pending=max(64, 2 * total))
    with ServerThread(values, config) as url:
        with ServiceClient(url, timeout=300) as warm:
            warm.topk(requests[0][0], k)  # one-time engine warm-up, untimed
        for _ in range(max(1, repeats)):
            lat: list[list[float]] = [[] for _ in range(clients)]
            outputs = [[None] * per_client for _ in range(clients)]

            def worker(i):
                with ServiceClient(url, timeout=300) as client:
                    for j, weights in enumerate(requests[i]):
                        t0 = time.perf_counter()
                        outputs[i][j] = client.topk(weights, k)
                        lat[i].append(time.perf_counter() - t0)

            pool = [
                threading.Thread(target=worker, args=(i,)) for i in range(clients)
            ]
            t0 = time.perf_counter()
            for t in pool:
                t.start()
            for t in pool:
                t.join()
            storm_times.append(time.perf_counter() - t0)
            latencies.extend(x for chunk in lat for x in chunk)
            for i in range(clients):
                for j in range(per_client):
                    ref = references[i][j]
                    assert np.array_equal(
                        outputs[i][j]["members"], ref.members
                    ), "served top-k members diverged from direct engine call"
                    assert np.array_equal(outputs[i][j]["order"], ref.order), (
                        "served top-k order diverged from direct engine call"
                    )
            with ServiceClient(url, timeout=300) as client:
                t0 = time.perf_counter()
                for chunk in requests:
                    for weights in chunk:
                        client.topk(weights, k)
                seq_times.append(time.perf_counter() - t0)
        with ServiceClient(url, timeout=300) as client:
            coalescing = client.stats()["coalescing"]
    storm_s = statistics.median(storm_times)
    seq_s = statistics.median(seq_times)
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return {
        "op": "serving_load",
        "dataset": "uniform",
        "n": n,
        "d": d,
        "k": k,
        "clients": clients,
        "requests": total,
        "median_s": storm_s,
        "baseline_median_s": seq_s,
        "speedup": seq_s / storm_s,
        "qps": total / storm_s,
        "p50_ms": p50 * 1000,
        "p99_ms": p99 * 1000,
        "coalescing": coalescing,
    }


def _bench_recovery(repeats: int, quick: bool) -> dict:
    """Crash recovery: snapshot + WAL-suffix replay vs full-history replay.

    Builds a durable serving history in a temp data dir — boot matrix,
    churn commits fsync'd through an attached :class:`DurableStore`, a
    snapshot cut midway so the WAL holds only the suffix — then measures
    what a restart pays: open the dir, load the newest snapshot, rebuild
    the engine on its matrix and replay the WAL commits beyond the
    watermark.  The baseline is recovery without snapshots: replaying
    the *entire* mutation history onto the boot matrix.  Both paths must
    land bit-identical to the engine that lived through the churn
    (matrix bytes, revision counter, and a top-k probe) — recovery speed
    only counts if the recovered answers are exact.
    """
    import tempfile

    from repro.engine import DurableStore, ScoreEngine, replay_commits
    from repro.engine.delta import replay_event
    from repro.ranking.sampling import sample_functions

    n, d, k = (5_000, 4, 10) if quick else (20_000, 4, 10)
    commits = 16 if quick else 48
    churn = 8
    rng = np.random.default_rng(17)
    boot = rng.random((n, d))
    weights = sample_functions(d, 32, 1)
    history: list[tuple[np.ndarray, np.ndarray]] = []

    with tempfile.TemporaryDirectory() as tmpdir:
        store = DurableStore(tmpdir).open()
        engine = ScoreEngine(boot)
        engine.subscribe_delta(
            lambda ev: history.append(
                (np.array(ev.deleted_ids), np.array(ev.inserted_rows))
            )
        )
        store.attach(engine)
        for i in range(commits):
            engine.delete_rows(rng.choice(engine.n, churn, replace=False))
            engine.insert_rows(rng.random((churn, d)))
            engine.compact()
            store.commit(None, None, engine.revision)
            if i == commits // 2 - 1:
                store.snapshot(engine.values, engine.revision)
        final_bytes = engine.values.tobytes()
        revision = engine.revision
        ref = engine.topk_batch(weights, k)
        wal_bytes = store.wal_bytes
        engine.close()
        store.close()
        snapshot_bytes = sum(
            p.stat().st_size for p in Path(tmpdir).glob("snapshot-*.snap")
        )

        def check(eng) -> None:
            assert eng.revision == revision, "recovery lost the revision counter"
            assert eng.values.tobytes() == final_bytes, (
                "recovered matrix is not bit-identical"
            )
            got = eng.topk_batch(weights, k)
            assert np.array_equal(got.order, ref.order), (
                "recovered top-k diverged from the engine that lived"
            )
            eng.close()

        def recover() -> None:
            s2 = DurableStore(tmpdir).open()
            try:
                snap, wal_commits = s2.load()
                eng = ScoreEngine(snap.values)
                eng.revision = snap.revision
                replay_commits(eng, wal_commits)
            finally:
                s2.close()
            check(eng)

        def rebuild() -> None:
            eng = ScoreEngine(boot)
            for deleted_ids, inserted_rows in history:
                replay_event(eng, deleted_ids, inserted_rows)
            check(eng)

        rec_s, _ = _median_time(recover, repeats)
        cold_s, _ = _median_time(rebuild, repeats)

    return {
        "op": "recovery",
        "dataset": "uniform",
        "n": n,
        "d": d,
        "k": k,
        "commits": commits,
        "replayed_commits": commits - commits // 2,
        "churn": churn,
        "median_s": rec_s,
        "baseline_median_s": cold_s,
        "speedup": cold_s / rec_s,
        "snapshot_bytes": snapshot_bytes,
        "wal_bytes": wal_bytes,
    }


def _bench_sharded_load(repeats: int, quick: bool) -> dict:
    """Sharded engine overhead: fleet queries + churn vs one engine.

    Boots a :class:`ShardedScoreEngine` (in-process shards — the
    benchmark measures routing/merge overhead, not process transport)
    and an unsharded :class:`ScoreEngine` on the same matrix, drives an
    identical mix of ``topk_batch`` / ``rank_of_best_batch`` queries
    and keyed fleet mutations through both, and asserts every response
    bit-identical — the sharding exactness contract, measured.  The
    gate reads the fleet's ``median_s``; ``speedup`` below 1 is the
    price of supervision, per-shard durability hooks and deterministic
    merges.
    """
    from repro.engine import ScoreEngine
    from repro.engine.sharded import ShardedScoreEngine
    from repro.ranking.sampling import sample_functions

    n, d, k, m = (4_000, 4, 10, 64) if quick else (16_000, 4, 10, 256)
    shards = 4
    rng = np.random.default_rng(3)
    values = rng.random((n, d))
    weights = sample_functions(d, m, 7)
    subset = sorted(int(x) for x in rng.choice(n // 2, 6, replace=False))
    churn = [(rng.random((8, d)), sorted(int(x) for x in rng.integers(0, n // 2, 4)))
             for _ in range(3)]

    def drive(engine, keyed: bool) -> list:
        out = [engine.topk_batch(weights, k)]
        for i, (rows, doomed) in enumerate(churn):
            if keyed:
                engine.fleet_insert(rows, key=f"bench-ins-{i}")
                engine.fleet_delete(doomed, key=f"bench-del-{i}")
            else:
                engine.insert_rows(rows)
                engine.delete_rows(doomed)
            engine.compact()
            out.append(engine.topk_batch(weights, k))
        out.append(engine.rank_of_best_batch(weights, subset))
        return out

    def fleet_run() -> list:
        with ShardedScoreEngine(values.copy(), shards=shards, isolation="local") as fleet:
            return drive(fleet, keyed=True)

    def solo_run() -> list:
        with ScoreEngine(values.copy(), float32=True) as engine:
            return drive(engine, keyed=False)

    fleet_s, fleet_out = _median_time(fleet_run, repeats)
    solo_s, solo_out = _median_time(solo_run, repeats)
    for got, want in zip(fleet_out, solo_out):
        if isinstance(want, np.ndarray):
            assert np.array_equal(got, want), "sharded rank diverged from unsharded"
        else:
            assert np.array_equal(got.order, want.order) and np.array_equal(
                got.members, want.members
            ), "sharded top-k diverged from unsharded"
    return {
        "op": "sharded_load",
        "dataset": "uniform",
        "n": n,
        "d": d,
        "k": k,
        "shards": shards,
        "functions": m,
        "revisions": 2 * len(churn),
        "median_s": fleet_s,
        "baseline_median_s": solo_s,
        "speedup": solo_s / fleet_s,
    }


def _quant_hit_rates(quick: bool) -> dict:
    """Quantized-tier hit rate: resolved / screened columns per workload."""
    from repro.datasets import independent, synthetic_dot
    from repro.engine import ScoreEngine
    from repro.ranking.sampling import sample_functions

    from repro.core import mdrc

    n, d, k, m = (2000, 4, 10, 1024) if quick else (5000, 4, 25, 4096)
    topk_engine = ScoreEngine(independent(n, d, seed=0).values, float32=True)
    topk_engine.topk_batch(sample_functions(d, m, 0), k)
    rn = 5000 if quick else 20000
    rank_values = synthetic_dot(n=rn, d=d, seed=0).values
    rank_engine = ScoreEngine(rank_values)
    # The rank tier engages adaptively (fallback-heavy data only); force
    # it here so the stat reflects the screen itself, not the policy.
    # Probe with a representative-grade subset (the rank bench's own),
    # whose best-member score sits near the top where the envelope band
    # is thin — the shape the estimator actually runs against.
    rank_engine._rank_float_columns = 10**9
    rank_engine._rank_float_fallbacks = 10**9
    subset = mdrc(rank_values, max(1, rn // 100)).indices
    rank_engine.rank_of_best_batch(sample_functions(d, m, 0), subset)
    return {
        "topk": {
            "level": topk_engine._quantizer.level,
            "screened": topk_engine.stats["quant_columns"],
            "resolved": topk_engine.stats["quant_resolved"],
        },
        "rank": {
            "level": rank_engine._quantizer.level,
            "screened": rank_engine.stats["quant_columns"],
            "resolved": rank_engine.stats["quant_resolved"],
        },
    }


def _smoke_parallel_identity(jobs: int | None) -> None:
    """Serial vs fan-out bit-identity probe, per backend (the CI check)."""
    from repro.engine import ScoreEngine
    from repro.ranking.sampling import sample_functions

    jobs = jobs if jobs and jobs != 1 else 2
    rng = np.random.default_rng(0)
    values = rng.random((600, 4))
    weights = sample_functions(4, 150, 0)
    # Tiny GEMM chunks force real multi-unit splits on every op —
    # score_batch in particular only fans out when m exceeds one serial
    # chunk, and the probe must not silently compare serial vs serial.
    serial = ScoreEngine(values, chunk_bytes=1)
    for backend in ("thread", "process"):
        with ScoreEngine(
            values, n_jobs=jobs, parallel_min_work=0, chunk_bytes=1,
            backend=backend,
        ) as fanout:
            a = serial.topk_batch(weights, 9)
            b = fanout.topk_batch(weights, 9)
            assert np.array_equal(a.order, b.order), f"{backend} topk diverged"
            assert np.array_equal(a.members, b.members), (
                f"{backend} bitsets diverged"
            )
            subset = [1, 300, 599]
            assert np.array_equal(
                serial.rank_of_best_batch(weights, subset),
                fanout.rank_of_best_batch(weights, subset),
            ), f"{backend} rank counting diverged"
            assert np.array_equal(
                serial.score_batch(weights), fanout.score_batch(weights)
            ), f"{backend} score_batch diverged"
            few = sample_functions(4, 2, 1)
            assert np.array_equal(
                serial.topk_batch(few, 5).order, fanout.topk_batch(few, 5).order
            ), f"{backend} row-chunked topk diverged"
        print(f"parallel identity probe [{backend}]: ok")


def _shm_segments() -> set[str]:
    """Current /dev/shm entries (empty off Linux): the leak probe."""
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux dev machines
        return set()
    return {entry.name for entry in shm.iterdir()}


def _smoke_fault_identity(jobs: int | None) -> None:
    """Chaos probe: every injected failure mode must recover bit-identically.

    Drives the deterministic fault harness (:mod:`repro.engine.faults`)
    through the supervision layer (:mod:`repro.engine.resilience`):
    worker crashes, hangs past the per-unit timeout, corrupted return
    payloads, shared-memory allocation failures, and a torn tuning
    profile.  Each scenario must finish without process death, yield
    results bit-identical to a fault-free serial run, and leave no
    leaked /dev/shm segment behind.
    """
    from repro.engine import FaultInjector, RetryPolicy, ScoreEngine, TuningProfile
    from repro.engine import faults
    from repro.exceptions import CorruptStateError
    from repro.ranking.sampling import sample_functions

    jobs = jobs if jobs and jobs != 1 else 2
    rng = np.random.default_rng(7)
    values = rng.random((600, 4))
    weights = sample_functions(4, 120, 0)
    subset = [1, 300, 599]
    serial = ScoreEngine(values, chunk_bytes=1)
    ref_topk = serial.topk_batch(weights, 9)
    ref_rank = serial.rank_of_best_batch(weights, subset)
    policy = RetryPolicy(timeout_s=5.0, max_retries=2, backoff_base_s=0.0)
    segments_before = _shm_segments()

    for backend in ("thread", "process"):
        for kind in ("crash", "hang", "corrupt"):
            injector = FaultInjector(
                seed=0, **{kind: 0.4}, max_faults=3, hang_s=20.0
            )
            with ScoreEngine(
                values, n_jobs=jobs, parallel_min_work=0, chunk_bytes=1,
                backend=backend, resilience=policy,
            ) as fanout:
                with faults.injected(injector):
                    got_topk = fanout.topk_batch(weights, 9)
                    got_rank = fanout.rank_of_best_batch(weights, subset)
                assert injector.total_injected > 0, (
                    f"{backend}/{kind}: harness injected nothing"
                )
                assert np.array_equal(ref_topk.order, got_topk.order), (
                    f"{backend}/{kind}: topk diverged after recovery"
                )
                assert np.array_equal(ref_rank, got_rank), (
                    f"{backend}/{kind}: rank counting diverged after recovery"
                )
            print(
                f"fault probe [{backend}/{kind}]: recovered, bit-identical "
                f"(injected={injector.total_injected})"
            )

    # Shared-memory allocation failure: the process backend cannot be
    # built, the engine degrades to threads, results stay identical.
    with ScoreEngine(
        values, n_jobs=jobs, parallel_min_work=0, chunk_bytes=1,
        backend="process", resilience=policy,
    ) as fanout:
        with faults.injected(FaultInjector(shm_errors=16)):
            got = fanout.topk_batch(weights, 9)
        assert np.array_equal(ref_topk.order, got.order), (
            "shm-failure degradation diverged"
        )
        assert fanout._degraded == "thread", "shm failure did not degrade"
    print("fault probe [shm-OSError]: degraded process->thread, bit-identical")

    # Torn tuning-profile JSON: load must fail with the typed error (the
    # CLI recalibrates on it), and the atomic save must round-trip.
    import tempfile

    with tempfile.TemporaryDirectory() as tmpdir:
        path = Path(tmpdir) / "profile.json"
        profile = TuningProfile()
        profile.save(path)
        assert TuningProfile.load(path) == profile
        path.write_text(profile.to_json()[: len(profile.to_json()) // 2])
        try:
            TuningProfile.load(path)
        except CorruptStateError:
            pass
        else:
            raise AssertionError("torn profile JSON loaded without error")
    print("fault probe [torn-profile]: typed CorruptStateError, save atomic")

    # Maintained views under chaos: the view repair path fans work
    # through the same supervised executors, so injected crashes and
    # corrupted payloads must leave the maintained representative (and
    # its patched regret estimate) bit-identical to a from-scratch
    # recompute at every revision.
    from repro.core import mdrc
    from repro.engine import MDRCView, RankRegretView
    from repro.evaluation import rank_regret_sampled

    view_rng = np.random.default_rng(3)
    view_engine = ScoreEngine(
        view_rng.random((1_500, 4)), n_jobs=jobs, parallel_min_work=0,
        chunk_bytes=1, resilience=policy,
    )
    view = MDRCView(view_engine, 8)
    rview = RankRegretView(
        view_engine, view.refresh().indices, num_functions=96, rng=0
    )
    rview.refresh()
    injector = FaultInjector(seed=1, crash=0.2, corrupt=0.2, max_faults=8)
    with faults.injected(injector):
        for revision in range(3):
            view_engine.delete_rows(
                view_rng.choice(view_engine.n, 15, replace=False)
            )
            view_engine.insert_rows(view_rng.random((15, 4)))
            rep = view.refresh().indices
            rview.set_subset(rep)
            regret = rview.refresh()
            fresh_rep = mdrc(view_engine.values, 8, engine=view_engine).indices
            fresh_regret = rank_regret_sampled(
                view_engine.values, fresh_rep, num_functions=96, rng=0,
                engine=view_engine,
            )
            assert rep == fresh_rep, (
                f"maintained view diverged under faults (rev {revision})"
            )
            assert regret == fresh_regret, (
                f"maintained regret diverged under faults (rev {revision})"
            )
    view.close()
    rview.close()
    view_engine.close()
    print(
        "fault probe [maintained-views]: 3 revisions under chaos, "
        f"bit-identical (injected={injector.total_injected})"
    )

    leaked = _shm_segments() - segments_before
    assert not leaked, f"leaked /dev/shm segments after fault runs: {leaked}"
    print("fault probe [shm-leak]: no leaked segments")


def _smoke_crash_recovery() -> None:
    """Kill-9 chaos drill: SIGKILL a durable server mid-churn, restart, same answers.

    Boots a real ``repro serve --data-dir`` subprocess and an in-process
    oracle server on the same deterministic dataset, drives both through
    an identical keyed mutation script, SIGKILLs the subprocess at a
    seeded point mid-script (after a mutation was acknowledged but
    before the client moved on — the ambiguous-retry window), restarts
    it on the same data dir, retries the in-flight mutation with its
    idempotency key (it must answer with the stored response and apply
    nothing), finishes the script on both, and asserts every top-k /
    rank / representative response bit-identical to the oracle that
    never died.  A final SIGTERM must drain, snapshot and exit 0.
    """
    import os
    import signal
    import subprocess
    import tempfile

    from repro.experiments.runner import make_dataset
    from repro.serve import ServerConfig, ServerThread, ServiceClient

    n, d, k = 400, 3, 7
    values = make_dataset("dot", n, d, seed=0).values

    def spawn(data_dir: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--dataset", "dot", "--n", str(n), "--d", str(d),
                "--port", "0", "--jobs", "1", "--data-dir", data_dir,
            ],
            env=env,
            cwd=REPO_ROOT,
            stderr=subprocess.PIPE,
            text=True,
        )
        line = proc.stderr.readline()
        assert "listening on http://" in line, f"serve did not boot: {line!r}"
        port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
        return proc, f"http://127.0.0.1:{port}"

    rng = np.random.default_rng(23)
    script = []
    for i in range(12):
        script.append(("insert", rng.random((2, d)).tolist(), f"ins-{i}"))
        script.append(
            ("delete", sorted({int(x) for x in rng.integers(0, n // 2, 2)}), f"del-{i}")
        )
    kill_at = int(rng.integers(4, len(script) - 4))

    def apply(client, step):
        kind, payload, key = step
        if kind == "insert":
            return client.insert(payload, idempotency_key=key)
        return client.delete(payload, idempotency_key=key)

    with tempfile.TemporaryDirectory() as data_dir:
        oracle_thread = ServerThread(values, ServerConfig(port=0, jobs=1)).start()
        proc = None
        try:
            oracle = ServiceClient(oracle_thread.url)
            proc, url = spawn(data_dir)
            client = ServiceClient(url, timeout=30)
            for step in script[:kill_at]:
                apply(client, step)
                apply(oracle, step)
            ambiguous = script[kill_at]
            pending = apply(client, ambiguous)
            apply(oracle, ambiguous)

            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            assert os.path.exists(os.path.join(data_dir, "LOCK")), (
                "SIGKILL must leave the stale lock for the next boot to reclaim"
            )

            proc, url = spawn(data_dir)
            client = ServiceClient(url, timeout=30)
            retried = apply(client, ambiguous)  # same key: exactly once
            assert retried["revision"] == pending["revision"] and all(
                np.array_equal(retried[f], pending[f])
                for f in ("indices", "deleted")
                if f in pending
            ), "keyed retry after SIGKILL did not replay the stored response"
            assert client.health()["n"] == oracle.health()["n"], (
                "keyed retry after SIGKILL re-applied the mutation"
            )
            for step in script[kill_at + 1 :]:
                apply(client, step)
                apply(oracle, step)

            weights = np.random.default_rng(29).random((5, d))
            got, want = client.topk(weights, k), oracle.topk(weights, k)
            assert np.array_equal(got["members"], want["members"]), (
                "post-recovery top-k diverged from the never-killed oracle"
            )
            assert np.array_equal(got["order"], want["order"]), (
                "post-recovery top-k order diverged"
            )
            assert got["revision"] == want["revision"], (
                "post-recovery revision counter diverged"
            )
            got = client.rank(weights, [0, 3, 9])
            want = oracle.rank(weights, [0, 3, 9])
            assert np.array_equal(got["ranks"], want["ranks"]), (
                "post-recovery rank counting diverged"
            )
            rep = client.representative(4, "mdrc")["indices"]
            assert rep == oracle.representative(4, "mdrc")["indices"], (
                "post-recovery representative diverged"
            )
            replayed = client.stats()["durability"]["recovery"]["replayed_commits"]

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0, "SIGTERM drain did not exit 0"
            proc = None
        finally:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            oracle_thread.stop()
    print(
        f"fault probe [kill-9 drill]: SIGKILL at step {kill_at}/{len(script)}, "
        f"replayed {replayed} WAL commits on restart, keyed retry "
        "exactly-once, all responses bit-identical to the uninterrupted oracle"
    )


def _smoke_shard_chaos() -> None:
    """Shard-kill chaos drill: crash/corrupt/hang a live fleet, same answers.

    Boots a process-isolated :class:`ShardedScoreEngine` next to an
    unsharded oracle, SIGKILLs one shard outright, then drives keyed
    churn with injected crash, corrupt and hang tokens landing on the
    shard RPCs.  Supervision must rebuild every shard from its own
    snapshot + WAL suffix, mutations must apply exactly once under
    keyed retry, and every post-chaos response must stay bit-identical
    to the oracle — a silent partial merge anywhere shows up here.
    """
    import os as _os
    import signal as _signal

    from repro.engine import FaultInjector, RetryPolicy, ScoreEngine
    from repro.engine import faults as fault_layer
    from repro.engine.sharded import ShardedScoreEngine

    n, d, k = 400, 4, 8
    rng = np.random.default_rng(41)
    matrix = rng.random((n, d))
    weights = rng.random((6, d))
    subset = np.asarray([0, 7, 19], dtype=np.int64)

    oracle = ScoreEngine(matrix.copy())
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="process",
        policy=RetryPolicy(timeout_s=60.0, max_retries=3, backoff_base_s=0.01),
    )
    try:
        # Hard SIGKILL of a serving shard: the next query recovers it.
        _os.kill(fleet._supervisor.hosts[0].pid, _signal.SIGKILL)
        assert np.array_equal(
            fleet.topk_batch(weights, k).order, oracle.topk_batch(weights, k).order
        ), "post-SIGKILL top-k diverged from the unsharded oracle"
        assert fleet.stats["shard_recoveries"] >= 1, "SIGKILL went unnoticed"

        # Crash token mid-insert, then a keyed retry: exactly once.
        rows = rng.standard_normal((3, d))
        injector = FaultInjector(seed=0, plan={0: "crash"})
        fault_layer.install(injector)
        try:
            first = fleet.fleet_insert(rows, key="chaos-burst")
        finally:
            fault_layer.uninstall()
        assert injector.injected["crash"] == 1, "crash token was not drawn"
        oracle.insert_rows(rows)
        oracle.compact()
        retry = fleet.fleet_insert(rows, key="chaos-burst")
        assert retry["replayed"] and retry["indices"] == first["indices"], (
            "keyed retry after shard crash did not replay the stored response"
        )
        assert fleet.n == oracle.n, "shard crash re-applied the mutation"

        # Corrupt + hang tokens on query RPCs: contained, never merged.
        injector = FaultInjector(seed=1, plan={0: "corrupt", 1: "hang"}, hang_s=5.0)
        fleet._supervisor.policy = RetryPolicy(
            timeout_s=1.0, max_retries=3, backoff_base_s=0.01
        )
        fault_layer.install(injector)
        try:
            got = fleet.topk_batch(weights, k)
        finally:
            fault_layer.uninstall()
        assert np.array_equal(got.order, oracle.topk_batch(weights, k).order), (
            "corrupt/hang chaos leaked into a merged top-k"
        )
        assert np.array_equal(
            fleet.rank_of_best_batch(weights, subset),
            oracle.rank_of_best_batch(weights, subset),
        ), "post-chaos rank counting diverged"
        assert all(
            state == "serving" for state in fleet.supervisor_states()
        ), "a shard was left dead after the chaos drill"
        recoveries = fleet.stats["shard_recoveries"]
    finally:
        fleet.close()
        oracle.close()
    print(
        f"fault probe [shard chaos]: SIGKILL + crash/corrupt/hang tokens over "
        f"2 process shards, {recoveries} shard recoveries, keyed retry "
        "exactly-once, all merges bit-identical to the unsharded oracle"
    )


def _discover_benches(skip: Path | None = None) -> list[tuple[int, Path, dict]]:
    """All committed BENCH_PR*.json files, sorted by PR number."""
    benches = []
    for path in REPO_ROOT.glob("BENCH_PR*.json"):
        if skip is not None and path.resolve() == skip.resolve():
            continue
        match = re.search(r"BENCH_PR(\d+)", path.name)
        if match:
            benches.append((int(match.group(1)), path, json.loads(path.read_text())))
    benches.sort(key=lambda entry: entry[0])
    return benches


def _previous_bench(output: Path) -> tuple[Path, dict] | None:
    """The newest committed BENCH_PR*.json other than ``output``."""
    benches = _discover_benches(skip=output)
    if not benches:
        return None
    _, newest, payload = benches[-1]
    return newest, payload


def _print_history() -> int:
    """Cross-PR speedup table from every committed BENCH_PR*.json."""
    benches = _discover_benches()
    if not benches:
        print("no BENCH_PR*.json files found")
        return 1
    op_names: list[str] = []
    for _, _, payload in benches:
        for row in payload.get("ops", []):
            if row["op"] not in op_names:
                op_names.append(row["op"])
    header = f"{'op':<22}" + "".join(f"{f'PR{num}':>16}" for num, _, _ in benches)
    print(header)
    print("-" * len(header))
    for op in op_names:
        cells = []
        for _, _, payload in benches:
            row = next((r for r in payload.get("ops", []) if r["op"] == op), None)
            median = row.get("median_s") if row else None
            speedup = row.get("speedup") if row else None
            if median is None or speedup is None:
                # Older BENCH files predate this op (or carry a partial
                # row from an interrupted run) — render an em-dash cell
                # instead of KeyError-ing the whole table.
                cells.append(f"{'—':>16}")
            else:
                cells.append(f"{median:>8.3f}s{speedup:>6.1f}x")
        print(f"{op:<22}" + "".join(cells))
    print(
        "\n(each cell: median_s of the then-current implementation and its "
        "speedup over that PR's frozen baseline; '—' = op not benched yet)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true", help="~4x smaller workloads")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="engine workers for the current implementations "
        "(references stay serial); -1 = all cores",
    )
    parser.add_argument(
        "--backend-jobs", type=int, default=2,
        help="workers used for the informational per-backend column",
    )
    parser.add_argument(
        "--smoke", "--check-only", dest="smoke", action="store_true",
        help="CI mode: exactness + parallel-identity checks at reduced "
        "scale, no timing gate, no JSON output",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="with --smoke: also run the deterministic fault-injection "
        "probe (crash/hang/corrupt/shm + torn profile) and the kill-9 "
        "durability drill, asserting every recovery path is "
        "bit-identical and leak-free",
    )
    parser.add_argument(
        "--history", action="store_true",
        help="print a cross-PR speedup table from every committed "
        "BENCH_PR*.json and exit (no benchmarks run)",
    )
    parser.add_argument("--output", type=Path, default=REPO_ROOT / BENCH_NAME)
    args = parser.parse_args(argv)

    if args.history:
        return _print_history()

    quick = args.quick or args.smoke
    repeats = 1 if args.smoke else args.repeats
    ops = [
        _bench_mdrc(repeats, quick, args.jobs, args.backend_jobs),
        _bench_ksetr(repeats, quick, args.jobs, args.backend_jobs),
        _bench_rank_regret_sampled(repeats, quick, args.jobs, args.backend_jobs),
        _bench_update_throughput(repeats, quick),
        _bench_view_maintenance(repeats, quick),
        _bench_serving_load(repeats, quick),
        _bench_recovery(repeats, quick),
        _bench_sharded_load(repeats, quick),
    ]
    quant = _quant_hit_rates(quick)

    print(
        f"{'op':<22}{'n':>8}{'d':>3}  {'baseline':>10}  {'engine':>10}  "
        f"{'speedup':>8}  {'serial':>8}  {'thread':>8}  {'process':>8}"
    )
    for row in ops:
        backends = row.get("backends")
        backend_cells = (
            f"  {backends['serial']:>7.3f}s  {backends['thread']:>7.3f}s"
            f"  {backends['process']:>7.3f}s"
            if backends
            else f"  {'-':>8}{'-':>10}{'-':>10}"
        )
        print(
            f"{row['op']:<22}{row['n']:>8}{row['d']:>3}"
            f"  {row['baseline_median_s']:>9.3f}s  {row['median_s']:>9.3f}s"
            f"  {row['speedup']:>7.1f}x" + backend_cells
        )
    update = next(row for row in ops if row["op"] == "update_throughput")
    print(
        f"update[{update['n']}x{update['d']}, {update['revisions']} revisions, "
        f"{update['churn']} +/- rows each]: incremental {update['median_s']:.3f}s "
        f"vs rebuild {update['baseline_median_s']:.3f}s "
        f"({update['speedup']:.1f}x, {update['updates_per_s']:,.0f} updates/s)"
    )
    views = next(row for row in ops if row["op"] == "view_maintenance")
    print(
        f"views[{views['n']}x{views['d']}, k={views['k']}, "
        f"{views['revisions']} revisions, {views['churn']} +/- rows each]: "
        f"maintained {views['median_s']:.3f}s vs recompute "
        f"{views['baseline_median_s']:.3f}s ({views['speedup']:.1f}x, "
        f"bit-identical every revision)"
    )
    serving = next(row for row in ops if row["op"] == "serving_load")
    print(
        f"serving[{serving['n']}x{serving['d']}, {serving['clients']} clients, "
        f"{serving['requests']} requests]: {serving['qps']:,.0f} qps, "
        f"p50 {serving['p50_ms']:.1f}ms, p99 {serving['p99_ms']:.1f}ms "
        f"({serving['speedup']:.1f}x vs sequential HTTP, every response "
        f"bit-identical)"
    )
    recovery = next(row for row in ops if row["op"] == "recovery")
    print(
        f"recovery[{recovery['n']}x{recovery['d']}, "
        f"{recovery['replayed_commits']}/{recovery['commits']} commits in WAL]: "
        f"snapshot+replay {recovery['median_s']:.3f}s vs full-history replay "
        f"{recovery['baseline_median_s']:.3f}s ({recovery['speedup']:.1f}x, "
        f"bit-identical, snapshot {recovery['snapshot_bytes'] / 1024:.0f}KiB + "
        f"WAL {recovery['wal_bytes'] / 1024:.0f}KiB)"
    )
    sharded = next(row for row in ops if row["op"] == "sharded_load")
    print(
        f"sharded[{sharded['n']}x{sharded['d']}, {sharded['shards']} shards, "
        f"{sharded['functions']} functions, {sharded['revisions']} keyed "
        f"revisions]: fleet {sharded['median_s']:.3f}s vs unsharded "
        f"{sharded['baseline_median_s']:.3f}s ({sharded['speedup']:.2f}x, "
        f"bit-identical merges)"
    )
    for name, stats in quant.items():
        rate = stats["resolved"] / max(1, stats["screened"])
        print(
            f"quant[{name}]: level={stats['level']} "
            f"hit-rate={rate:.1%} ({stats['resolved']}/{stats['screened']})"
        )

    if args.smoke:
        _smoke_parallel_identity(args.jobs)
        if args.faults:
            _smoke_fault_identity(args.jobs)
            _smoke_crash_recovery()
            _smoke_shard_chaos()
        print("smoke mode: exactness checks passed; timing gate skipped")
        return 0
    if args.faults:
        _smoke_fault_identity(args.jobs)
        _smoke_crash_recovery()
        _smoke_shard_chaos()

    report = {
        "schema": 1,
        "bench": BENCH_NAME.removesuffix(".json"),
        "quick": args.quick,
        "jobs": args.jobs,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "ops": ops,
        "quant": quant,
    }

    failures = []
    previous = _previous_bench(args.output)
    if previous is not None:
        prev_path, prev = previous
        prev_ops = {row["op"]: row for row in prev.get("ops", [])}
        if prev.get("quick"):
            print(f"\nprevious {prev_path.name} was a --quick run; gate skipped")
        elif prev.get("jobs") != args.jobs:
            # Serial and fan-out medians are not comparable; only gate
            # like against like.
            print(
                f"\nprevious {prev_path.name} ran with jobs="
                f"{prev.get('jobs')} (this run: {args.jobs}); gate skipped"
            )
        else:
            for row in ops:
                old = prev_ops.get(row["op"])
                if old is None or args.quick:
                    continue
                if row["median_s"] > REGRESSION_SLACK * old["median_s"]:
                    failures.append(
                        f"{row['op']}: {row['median_s']:.3f}s vs "
                        f"{old['median_s']:.3f}s in {prev_path.name} "
                        f"(>{(REGRESSION_SLACK - 1) * 100:.0f}% regression)"
                    )
            print(f"\ngate vs {prev_path.name}: " + ("FAIL" if failures else "ok"))

    if not args.quick:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    for failure in failures:
        print("REGRESSION:", failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
