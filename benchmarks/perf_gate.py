#!/usr/bin/env python
"""Perf-regression gate: times the engine-backed hot paths, writes BENCH_*.json.

Three bench-scale workloads (the ops the ``repro.engine`` refactor targets):

* ``mdrc``                — MDRC at d = 4 (frontier-batched corner probes);
* ``ksetr``               — K-SETr sampling (batched draws, bitset dedup);
* ``rank_regret_sampled`` — the Monte-Carlo estimator (pruned rank counting).

For each op the script measures BOTH the current implementation and the
frozen pre-engine reference (:mod:`repro.engine.reference`), asserts their
outputs agree, and records ``median_s`` / ``baseline_median_s`` / ``speedup``
in a machine-readable JSON file at the repository root.

Gate semantics: if an earlier ``BENCH_PR*.json`` exists, the run FAILS
(exit 1) when any op's fresh ``median_s`` regresses more than 20% against
the newest committed file — every future PR inherits this floor.

Usage::

    PYTHONPATH=src python benchmarks/perf_gate.py [--repeats 5] [--quick]
                                                  [--jobs N] [--smoke]

``--quick`` shrinks the workloads ~4x for a fast smoke run (its numbers are
NOT meant to be committed).  ``--jobs`` runs the current implementations
with the engine's process fan-out (the references stay serial).

``--smoke`` (alias ``--check-only``) is the CI mode: run every op at
reduced scale, check *exactness* against the references plus
serial-vs-parallel bit-identity of the fan-out layer, and skip the timing
gate entirely — noisy shared runners can never flake it.  No JSON is
written in this mode; the timing gate stays a local/dev concern.
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_NAME = "BENCH_PR3.json"
REGRESSION_SLACK = 1.20  # fail when median_s exceeds previous by >20%


def _median_time(fn, repeats: int) -> tuple[float, object]:
    times = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), result


def _bench_mdrc(repeats: int, quick: bool, jobs: int | None) -> dict:
    from repro.core import mdrc
    from repro.datasets import independent
    from repro.engine.reference import reference_mdrc

    n, d, k = (1000, 4, 8) if quick else (2000, 4, 5)
    values = independent(n, d, seed=0).values
    mdrc(values, k, n_jobs=jobs)  # warm caches / BLAS / pool
    base_s, base = _median_time(lambda: reference_mdrc(values, k), repeats)
    new_s, new = _median_time(lambda: mdrc(values, k, n_jobs=jobs), repeats)
    assert new.indices == base.indices, "mdrc output diverged from reference"
    return {
        "op": "mdrc",
        "dataset": "independent",
        "n": n,
        "d": d,
        "k": k,
        "median_s": new_s,
        "baseline_median_s": base_s,
        "speedup": base_s / new_s,
    }


def _bench_ksetr(repeats: int, quick: bool, jobs: int | None) -> dict:
    from repro.datasets import independent
    from repro.engine.reference import reference_sample_ksets
    from repro.geometry.ksets import sample_ksets

    n, d, k = (2000, 4, 10) if quick else (5000, 4, 25)
    values = independent(n, d, seed=0).values
    sample_ksets(values, k, patience=50, rng=1, n_jobs=jobs)  # warm
    base_s, base = _median_time(
        lambda: reference_sample_ksets(values, k, patience=100, rng=0), repeats
    )
    new_s, new = _median_time(
        lambda: sample_ksets(values, k, patience=100, rng=0, n_jobs=jobs), repeats
    )
    assert new.ksets == base.ksets and new.draws == base.draws, (
        "sample_ksets output diverged from reference"
    )
    return {
        "op": "ksetr",
        "dataset": "independent",
        "n": n,
        "d": d,
        "k": k,
        "draws": new.draws,
        "median_s": new_s,
        "baseline_median_s": base_s,
        "speedup": base_s / new_s,
    }


def _bench_rank_regret_sampled(repeats: int, quick: bool, jobs: int | None) -> dict:
    from repro.core import mdrc
    from repro.datasets import synthetic_dot
    from repro.engine.reference import reference_rank_regret_sampled
    from repro.evaluation import rank_regret_sampled

    n, d, m = (5000, 4, 2000) if quick else (20000, 4, 10000)
    values = synthetic_dot(n=n, d=d, seed=0).values
    subset = mdrc(values, max(1, n // 100)).indices
    rank_regret_sampled(values, subset, 100, rng=0, n_jobs=jobs)  # warm
    base_s, base = _median_time(
        lambda: reference_rank_regret_sampled(values, subset, m, rng=0), repeats
    )
    new_s, new = _median_time(
        lambda: rank_regret_sampled(values, subset, m, rng=0, n_jobs=jobs), repeats
    )
    assert new == base, "rank_regret_sampled estimate diverged from reference"
    return {
        "op": "rank_regret_sampled",
        "dataset": "dot",
        "n": n,
        "d": d,
        "k": None,
        "num_functions": m,
        "median_s": new_s,
        "baseline_median_s": base_s,
        "speedup": base_s / new_s,
    }


def _smoke_parallel_identity(jobs: int | None) -> None:
    """Serial vs fan-out bit-identity probe (the CI plumbing check)."""
    from repro.engine import ScoreEngine
    from repro.ranking.sampling import sample_functions

    jobs = jobs if jobs and jobs != 1 else 2
    rng = np.random.default_rng(0)
    values = rng.random((600, 4))
    weights = sample_functions(4, 150, 0)
    # Tiny GEMM chunks force real multi-unit splits on every op —
    # score_batch in particular only fans out when m exceeds one serial
    # chunk, and the probe must not silently compare serial vs serial.
    serial = ScoreEngine(values, chunk_bytes=1)
    with ScoreEngine(
        values, n_jobs=jobs, parallel_min_work=0, chunk_bytes=1
    ) as fanout:
        a = serial.topk_batch(weights, 9)
        b = fanout.topk_batch(weights, 9)
        assert np.array_equal(a.order, b.order), "parallel topk diverged"
        assert np.array_equal(a.members, b.members), "parallel bitsets diverged"
        subset = [1, 300, 599]
        assert np.array_equal(
            serial.rank_of_best_batch(weights, subset),
            fanout.rank_of_best_batch(weights, subset),
        ), "parallel rank counting diverged"
        assert np.array_equal(
            serial.score_batch(weights), fanout.score_batch(weights)
        ), "parallel score_batch diverged"
        few = sample_functions(4, 2, 1)
        assert np.array_equal(
            serial.topk_batch(few, 5).order, fanout.topk_batch(few, 5).order
        ), "row-chunked topk diverged"
    print("parallel identity probe: ok")


def _previous_bench(output: Path) -> tuple[Path, dict] | None:
    """The newest committed BENCH_PR*.json other than ``output``."""
    candidates = []
    for path in REPO_ROOT.glob("BENCH_PR*.json"):
        if path.resolve() == output.resolve():
            continue
        match = re.search(r"BENCH_PR(\d+)", path.name)
        if match:
            candidates.append((int(match.group(1)), path))
    if not candidates:
        return None
    _, newest = max(candidates)
    return newest, json.loads(newest.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true", help="~4x smaller workloads")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="engine worker processes for the current implementations "
        "(references stay serial); -1 = all cores",
    )
    parser.add_argument(
        "--smoke", "--check-only", dest="smoke", action="store_true",
        help="CI mode: exactness + parallel-identity checks at reduced "
        "scale, no timing gate, no JSON output",
    )
    parser.add_argument("--output", type=Path, default=REPO_ROOT / BENCH_NAME)
    args = parser.parse_args(argv)

    quick = args.quick or args.smoke
    repeats = 1 if args.smoke else args.repeats
    ops = [
        _bench_mdrc(repeats, quick, args.jobs),
        _bench_ksetr(repeats, quick, args.jobs),
        _bench_rank_regret_sampled(repeats, quick, args.jobs),
    ]

    print(f"{'op':<22}{'n':>8}{'d':>3}  {'baseline':>10}  {'engine':>10}  {'speedup':>8}")
    for row in ops:
        print(
            f"{row['op']:<22}{row['n']:>8}{row['d']:>3}"
            f"  {row['baseline_median_s']:>9.3f}s  {row['median_s']:>9.3f}s"
            f"  {row['speedup']:>7.1f}x"
        )

    if args.smoke:
        _smoke_parallel_identity(args.jobs)
        print("smoke mode: exactness checks passed; timing gate skipped")
        return 0

    report = {
        "schema": 1,
        "bench": BENCH_NAME.removesuffix(".json"),
        "quick": args.quick,
        "jobs": args.jobs,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "ops": ops,
    }

    failures = []
    previous = _previous_bench(args.output)
    if previous is not None:
        prev_path, prev = previous
        prev_ops = {row["op"]: row for row in prev.get("ops", [])}
        if prev.get("quick"):
            print(f"\nprevious {prev_path.name} was a --quick run; gate skipped")
        elif prev.get("jobs") != args.jobs:
            # Serial and fan-out medians are not comparable; only gate
            # like against like.
            print(
                f"\nprevious {prev_path.name} ran with jobs="
                f"{prev.get('jobs')} (this run: {args.jobs}); gate skipped"
            )
        else:
            for row in ops:
                old = prev_ops.get(row["op"])
                if old is None or args.quick:
                    continue
                if row["median_s"] > REGRESSION_SLACK * old["median_s"]:
                    failures.append(
                        f"{row['op']}: {row['median_s']:.3f}s vs "
                        f"{old['median_s']:.3f}s in {prev_path.name} "
                        f"(>{(REGRESSION_SLACK - 1) * 100:.0f}% regression)"
                    )
            print(f"\ngate vs {prev_path.name}: " + ("FAIL" if failures else "ok"))

    if not args.quick:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    for failure in failures:
        print("REGRESSION:", failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
