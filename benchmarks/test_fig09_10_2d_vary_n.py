"""Figures 9–10: DOT 2-D — efficiency and effectiveness vs dataset size.

Paper shape: 2DRRR and MDRRR share the quadratic sweep cost; MDRC is
orders of magnitude faster.  All three produce small outputs whose exact
rank-regret stays at (or well under) k.
"""

import pytest

from conftest import record_report
from repro.core import mdrc, md_rrr, two_d_rrr
from repro.experiments import BENCH_EXPERIMENTS, format_experiment_table, run_experiment
from repro.experiments.runner import make_dataset

CONFIG = BENCH_EXPERIMENTS["fig09_10"]
LARGEST_N = int(max(CONFIG.values))


@pytest.fixture(scope="module")
def dataset():
    return make_dataset("dot", LARGEST_N, 2, seed=CONFIG.seed)


@pytest.fixture(scope="module")
def k(dataset):
    return max(1, round(CONFIG.k_fraction * dataset.n))


def test_bench_2drrr(benchmark, dataset, k):
    result = benchmark(two_d_rrr, dataset.values, k)
    assert result


def test_bench_mdrrr(benchmark, dataset, k):
    result = benchmark(lambda: md_rrr(dataset.values, k, rng=0).indices)
    assert result


def test_bench_mdrc(benchmark, dataset, k):
    result = benchmark(lambda: mdrc(dataset.values, k).indices)
    assert result


def test_fig09_10_table(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(CONFIG,), rounds=1, iterations=1)
    record_report("Figures 9-10: DOT 2D, vary n", format_experiment_table(rows))
    # Effectiveness shape: every proposed algorithm within its guarantee.
    for row in rows:
        factor = {"2drrr": 2, "mdrrr": 1, "mdrc": 2}[row.algorithm]
        assert row.rank_regret <= factor * row.k
        assert row.output_size < 40
