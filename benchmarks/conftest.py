"""Shared benchmark infrastructure.

Each benchmark module regenerates one of the paper's figures at bench
scale (see ``repro.experiments.config.bench_scale``) and prints the
measured rows as a table after timing the core computation with
pytest-benchmark.  Collected tables are echoed at the end of the session
so `pytest benchmarks/ --benchmark-only` doubles as the reproduction
report generator.
"""

from __future__ import annotations

import pytest

_REPORTS: list[tuple[str, str]] = []


def record_report(title: str, table: str) -> None:
    """Stash a rendered table for the end-of-session report."""
    _REPORTS.append((title, table))


@pytest.fixture(scope="session", autouse=True)
def _echo_reports():
    yield
    if not _REPORTS:
        return
    print("\n\n" + "=" * 72)
    print("Reproduction tables (bench scale)")
    print("=" * 72)
    for title, table in _REPORTS:
        print(f"\n--- {title} ---")
        print(table)
