"""Legacy shim: lets `pip install -e .`/`setup.py develop` work on
environments without the `wheel` package (metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
