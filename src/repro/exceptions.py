"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, range, or type)."""


class DatasetError(ReproError):
    """A dataset could not be constructed, loaded, or normalized."""


class GeometryError(ReproError):
    """A geometric computation failed (degenerate input, no hull, ...)."""


class InfeasibleError(ReproError):
    """A requested optimization or cover has no feasible solution."""


class ConvergenceError(ReproError):
    """An iterative algorithm exhausted its iteration budget."""
