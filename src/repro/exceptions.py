"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, range, or type)."""


class InvalidDataError(ValidationError):
    """Input *data* is unusable: NaN/Inf entries, or a non-numeric dtype.

    Raised at the public API boundary (``ScoreEngine``, ``mdrc``,
    ``sample_ksets``, dataset loading) instead of letting NaN propagate
    into the scoring kernels, where comparisons against NaN are silently
    False and would produce garbage ranks with no error at all.
    """


class DatasetError(ReproError):
    """A dataset could not be constructed, loaded, or normalized."""


class ExecutionError(ReproError):
    """Base class for failures of the parallel execution layer.

    Subclasses cover the failure modes a long-lived service actually
    sees — dead workers, hung workers, garbled result payloads.  The
    supervision layer (:mod:`repro.engine.resilience`) catches these
    internally and recovers (retry, pool rebuild, backend degradation);
    callers only see one when every recovery path is exhausted.
    """


class WorkerCrashError(ExecutionError):
    """A pool worker died mid-task (OOM kill, segfault, ``os._exit``)."""


class ExecutionTimeoutError(ExecutionError, TimeoutError):
    """A work unit exceeded its per-unit timeout (hung worker)."""


class CorruptStateError(ReproError):
    """Persisted or transported state failed an integrity check.

    Covers a torn/garbled tuning-profile JSON, a checksum mismatch, a
    mutation journal violating its invariants, and a worker result
    payload whose shape/dtype cannot be the work unit's true output.
    """


class DataDirLockedError(ReproError):
    """A serving data directory is locked by another live process.

    Two servers appending to one write-ahead log would interleave
    revisions and corrupt recovery; the lock holder's pid is probed, so
    a lock left behind by a killed process is reclaimed silently and
    this error means the holder is actually alive.
    """


class GeometryError(ReproError):
    """A geometric computation failed (degenerate input, no hull, ...)."""


class InfeasibleError(ReproError):
    """A requested optimization or cover has no feasible solution."""


class ConvergenceError(ReproError):
    """An iterative algorithm exhausted its iteration budget."""
