"""repro — a full reproduction of *RRR: Rank-Regret Representative*
(Asudeh, Nazi, Zhang, Das, Jagadish; SIGMOD 2019).

The **order-k rank-regret representative** of a dataset is the smallest
subset guaranteed to contain at least one of the top-k tuples of *every*
linear ranking function.  This package implements the paper end to end:

* the three proposed algorithms — :func:`~repro.core.two_d_rrr` (2-D,
  optimal size / 2k regret), :func:`~repro.core.md_rrr` (hitting set over
  k-sets, exact k guarantee), :func:`~repro.core.mdrc` (function-space
  partitioning, fast and near-optimal in practice);
* every substrate they need — the dual-space angular sweep, k-set
  enumeration (exact sweep, LP-validated BFS, randomized K-SETr),
  hitting-set solvers (greedy and Brönnimann–Goodrich ε-nets), interval
  covering, convex hull / skyline maxima, and linear-ranking evaluation;
* the baselines and metrics of the paper's evaluation, plus an experiment
  harness regenerating every figure.

Quickstart::

    from repro import synthetic_dot, rank_regret_representative

    data = synthetic_dot(n=2000, d=3, seed=7)
    result = rank_regret_representative(data, k=0.01)   # top-1%
    print(result.indices, result.guarantee)

For long-lived use (many calls over one dataset, mutations, serving),
:class:`repro.Session` owns a single calibrated engine behind the same
algorithms::

    with repro.Session(data.values, jobs=-1, tune="auto") as session:
        result = session.mdrc(k=0.01)
        report = session.evaluate(result.indices, k=0.01)

and ``repro.serve`` (``repro serve`` on the command line) exposes a
Session over asyncio HTTP with request coalescing.

Every public free function shares one keyword vocabulary: ``jobs``
(worker count), ``backend`` (``auto``/``serial``/``thread``/
``process``), ``tune`` (a :class:`~repro.engine.TuningProfile` or
``"auto"``) and ``policy`` (a :class:`~repro.engine.RetryPolicy`).
Deprecated spellings (``n_jobs``) keep working with a
:class:`DeprecationWarning`.
"""

from repro.baselines import (
    convex_hull_representative,
    cube,
    greedy_regret,
    hd_rrms,
    skyline_representative,
)
from repro.core import (
    MDRCResult,
    MDRRRResult,
    RRRResult,
    SizeBudgetResult,
    collect_ksets,
    find_ranges,
    md_rrr,
    mdrc,
    min_rank_regret_of_size,
    rank_regret_representative,
    resolve_k,
    two_d_rrr,
)
from repro.engine import BitsetTable, RetryPolicy, ScoreEngine, TuningProfile
from repro.datasets import (
    Dataset,
    anticorrelated,
    clustered,
    correlated,
    independent,
    load_csv,
    on_sphere,
    paper_example,
    save_csv,
    synthetic_bluenile,
    synthetic_dot,
)
from repro.evaluation import (
    evaluate_representative,
    kset_upper_bound,
    rank_regret_exact_2d,
    rank_regret_sampled,
    regret_ratio_sampled,
)
from repro.exceptions import (
    ConvergenceError,
    CorruptStateError,
    DatasetError,
    ExecutionError,
    ExecutionTimeoutError,
    GeometryError,
    InfeasibleError,
    InvalidDataError,
    ReproError,
    ValidationError,
    WorkerCrashError,
)
from repro.geometry import (
    convex_hull,
    enumerate_ksets_2d,
    enumerate_ksets_bfs,
    sample_ksets,
    skyline,
)
from repro.ranking import LinearFunction, sample_functions, top_k, top_k_set
from repro.session import Session

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # session facade
    "Session",
    # core
    "rank_regret_representative",
    "RRRResult",
    "resolve_k",
    "two_d_rrr",
    "find_ranges",
    "md_rrr",
    "MDRRRResult",
    "collect_ksets",
    "mdrc",
    "MDRCResult",
    "min_rank_regret_of_size",
    "SizeBudgetResult",
    # datasets
    "Dataset",
    "paper_example",
    "independent",
    "correlated",
    "anticorrelated",
    "clustered",
    "on_sphere",
    "synthetic_dot",
    "synthetic_bluenile",
    "save_csv",
    "load_csv",
    # engine
    "ScoreEngine",
    "TuningProfile",
    "RetryPolicy",
    "BitsetTable",
    # ranking / geometry
    "LinearFunction",
    "sample_functions",
    "top_k",
    "top_k_set",
    "convex_hull",
    "skyline",
    "enumerate_ksets_2d",
    "enumerate_ksets_bfs",
    "sample_ksets",
    # evaluation
    "evaluate_representative",
    "rank_regret_exact_2d",
    "rank_regret_sampled",
    "regret_ratio_sampled",
    "kset_upper_bound",
    # baselines
    "hd_rrms",
    "cube",
    "greedy_regret",
    "convex_hull_representative",
    "skyline_representative",
    # errors
    "ReproError",
    "ValidationError",
    "InvalidDataError",
    "DatasetError",
    "GeometryError",
    "InfeasibleError",
    "ConvergenceError",
    "ExecutionError",
    "WorkerCrashError",
    "ExecutionTimeoutError",
    "CorruptStateError",
]
