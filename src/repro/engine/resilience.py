"""Supervision layer for :class:`ScoreEngine`'s parallel fan-out.

:mod:`repro.engine.parallel` assumes a happy sandbox: every worker stays
alive, finishes promptly and returns what it computed.  A long-lived
service sees none of that — workers are OOM-killed, segfault inside
BLAS, wedge in a syscall, or hand back a torn payload.  This module
wraps the pool backends in a :class:`Supervisor` that owns the failure
handling so the engine's call sites (and its exactness contract) stay
untouched:

* **Crash recovery.**  A dead worker (``BrokenProcessPool`` on a live
  future, or the dead-PID probe before reusing a persistent pool) retires
  the pool and re-executes *only the failed work units* against a fresh
  one, under bounded retry with exponential backoff + jitter.
* **Timeouts.**  With ``RetryPolicy.timeout_s`` set, each work unit must
  produce its result within the budget; a hung pool is *reaped*
  (workers force-killed, shared segment unlinked — never leaked) and
  the unit retried, so one stuck chunk cannot stall a query forever.
* **Payload validation.**  Every result is structurally checked (type /
  shape / dtype per work-unit kind) before it may merge; a corrupt
  payload is indistinguishable from a torn pickle and is simply retried.
* **Graceful degradation.**  A backend that keeps failing is abandoned
  — process → thread → serial, sticky per engine, the exact reverse of
  PR 4's thread → process escalation.  The serial rung runs the work
  units in-process on a serial clone and is the trusted bottom: the
  fault harness (:mod:`repro.engine.faults`) never injects there, which
  is why every chaos run terminates.

Correctness is free by construction: work units honour the engine's
exactness contract (bit-identical to the scalar path for any split, any
backend), and merges are order-preserving on the *unit index*, not on
completion order — so a result computed on retry attempt 3 of the serial
rung merges into exactly the slot its crashed process-pool ancestor
would have filled, and the output of any supervised call is bit-identical
to a fault-free serial run.

The default policy (:func:`get_default_policy`) applies to every engine
that is not given an explicit :class:`RetryPolicy`; the CLI's
``--timeout`` / ``--max-retries`` flags install one process-wide via
:func:`set_default_policy` so the knobs reach every engine the
algorithms build internally.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass

import numpy as np

from repro.engine import faults
from repro.engine.parallel import _chunk_bounds, _dispatch
from repro.exceptions import (
    CorruptStateError,
    ExecutionTimeoutError,
    ValidationError,
    WorkerCrashError,
)

__all__ = [
    "RetryPolicy",
    "Supervisor",
    "get_default_policy",
    "set_default_policy",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Failure-handling knobs for one engine's supervised fan-out.

    Parameters
    ----------
    timeout_s:
        Per-work-unit result deadline.  ``None`` (default) disables the
        deadline — a legitimate unit on a loaded machine can take
        arbitrarily long, so timeouts are opt-in (CLI ``--timeout``).
    max_retries:
        Failed attempts a work unit may accumulate *per backend rung*
        beyond its first, before the supervisor gives up on that backend
        and degrades.  ``2`` means up to three attempts on the process
        pool, three on the thread pool, then serial.
    backoff_base_s / backoff_max_s / backoff_jitter:
        Retry ``i`` sleeps ``min(backoff_max_s, backoff_base_s *
        2**(i-1))``, stretched by up to ``backoff_jitter`` (fraction,
        seeded — deterministic for tests) so rebuilt pools don't
        stampede a machine that is failing *because* it is overloaded.
    degrade:
        When False, exhausting ``max_retries`` raises the typed error
        (:class:`~repro.exceptions.WorkerCrashError` /
        :class:`~repro.exceptions.ExecutionTimeoutError` /
        :class:`~repro.exceptions.CorruptStateError`) instead of
        stepping down the backend ladder — for callers that prefer fail
        -fast over fail-slow.
    seed:
        Seeds the jitter stream.
    """

    timeout_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.25
    degrade: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ValidationError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValidationError("backoff durations must be >= 0")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValidationError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )


_DEFAULT_POLICY = RetryPolicy()


def get_default_policy() -> RetryPolicy:
    """The policy engines adopt when built without an explicit one."""
    return _DEFAULT_POLICY


def set_default_policy(policy: RetryPolicy) -> RetryPolicy:
    """Install a process-wide default policy; returns the previous one.

    Only affects engines built *afterwards* (each engine snapshots the
    default at construction).  This is how the CLI's ``--timeout`` /
    ``--max-retries`` reach the engines that ``mdrc`` / ``sample_ksets``
    / the estimators construct internally.
    """
    global _DEFAULT_POLICY
    if not isinstance(policy, RetryPolicy):
        raise ValidationError(f"expected a RetryPolicy, got {type(policy).__name__}")
    previous = _DEFAULT_POLICY
    _DEFAULT_POLICY = policy
    return previous


# Sticky degradation ladder: the reverse of the auto policy's
# thread → process escalation.
_NEXT_RUNG = {"process": "thread", "thread": "serial"}


class Supervisor:
    """Failure-handling executor facade for one :class:`ScoreEngine`.

    Exposes the same ``run_function_chunks`` / ``run_row_chunks`` calls
    the raw executors do, so the engine's fan-out sites are agnostic to
    supervision.  Chunk bounds are computed **once** per call and the
    per-unit result slots are keyed on the unit index, so retries and
    backend changes re-execute only failed units and merge order never
    depends on scheduling.
    """

    def __init__(self, engine, policy: RetryPolicy | None = None) -> None:
        self._engine = engine
        self.policy = policy if policy is not None else get_default_policy()
        self._rng = random.Random(self.policy.seed)
        self._serial_clone = None
        self._last_failure: str | None = None
        # Recovery counters, read by the chaos tests and perf_gate --faults.
        self.stats = {
            "retries": 0,
            "worker_crashes": 0,
            "timeouts": 0,
            "corrupt_payloads": 0,
            "shm_errors": 0,
            "pool_rebuilds": 0,
            "degradations": 0,
            "serial_units": 0,
            "backoff_s": 0.0,
        }

    # ------------------------------------------------------------------
    # the executor-facing API (same shape as parallel._ChunkDispatch)
    def run_function_chunks(self, kind: str, weights, args=(), align: int = 1):
        engine = self._engine
        engine.stats["parallel_calls"] += 1
        bounds = _chunk_bounds(
            weights.shape[0], engine.n_jobs, align, engine._tuning.units_per_worker
        )
        units = [(weights[lo:hi], *args) for lo, hi in bounds]
        return self._run_units(kind, units)

    def run_row_chunks(self, kind: str, weights, n: int, args=()):
        engine = self._engine
        engine.stats["parallel_calls"] += 1
        bounds = _chunk_bounds(
            n, engine.n_jobs, units_per_worker=engine._tuning.units_per_worker
        )
        units = [(weights, *args, lo, hi) for lo, hi in bounds]
        return self._run_units(kind, units)

    def reset(self) -> None:
        """Drop state bound to the engine's current matrix (on close)."""
        self._serial_clone = None

    # ------------------------------------------------------------------
    # core retry loop
    def _run_units(self, kind: str, units: list[tuple]) -> list:
        results: list = [None] * len(units)
        done = [False] * len(units)
        attempts = [0] * len(units)
        while True:
            pending = [i for i in range(len(units)) if not done[i]]
            if not pending:
                return results
            level = self._level()
            if level == "serial":
                for i in pending:
                    results[i] = self._run_serial(kind, units[i])
                    done[i] = True
                continue
            try:
                executor = self._acquire(level)
            except OSError:
                # Shared-memory allocation failed: the process backend
                # cannot even be constructed on this machine right now.
                self.stats["shm_errors"] += 1
                for i in pending:
                    attempts[i] += 1
                self._after_failures(attempts, pending, level, "crash")
                continue
            self._round(executor, kind, units, results, done, attempts, pending)
            still = [i for i in pending if not done[i]]
            if still:
                self._after_failures(attempts, still, level, self._last_failure)
        # unreachable

    def _level(self) -> str:
        """The backend rung for the next round: selection capped by the
        engine's sticky degradation state."""
        engine = self._engine
        degraded = engine._degraded
        if degraded == "serial":
            return "serial"
        kind = engine._select_backend()
        if degraded == "thread" and kind == "process":
            return "thread"
        return kind

    def _acquire(self, level: str):
        """The live executor for ``level``, rebuilding a dead pool first."""
        engine = self._engine
        executor = engine._executors.get(level)
        if (
            executor is not None
            and level == "process"
            and not executor.workers_alive()
        ):
            # A worker died while the pool sat idle (e.g. the OOM killer
            # between calls): rebuild proactively instead of letting the
            # next submit discover a broken pool.
            self._retire(executor, reap=True)
            executor = None
        if executor is None:
            executor = engine._build_executor(level)
        return executor

    def _round(self, executor, kind, units, results, done, attempts, pending) -> None:
        """Submit every pending unit once; harvest in unit order."""
        injector = faults.active()
        submitted = []
        for i in pending:
            fault = injector.draw_unit() if injector is not None else None
            submitted.append((i, executor._submit(kind, *units[i], fault=fault)))
        executor.tasks_dispatched += len(submitted)
        self._last_failure = None
        executor_down = False
        for i, future in submitted:
            if executor_down:
                # The pool was retired mid-round.  Units that finished
                # before it went down are harvested (their payloads are
                # intact — re-running them would only waste work); the
                # rest fail this attempt.
                if not self._harvest_completed(kind, units[i], future, results, done, i):
                    attempts[i] += 1
                continue
            try:
                payload = future.result(timeout=self.policy.timeout_s)
                self._validate(kind, units[i], payload)
            except CorruptStateError:
                # Bad payload, healthy pool: fail only this unit.
                self.stats["corrupt_payloads"] += 1
                self._last_failure = self._last_failure or "corrupt"
                attempts[i] += 1
            except (_FutureTimeout, TimeoutError):
                self.stats["timeouts"] += 1
                self._last_failure = "timeout"
                attempts[i] += 1
                executor_down = True
                self._retire(executor, reap=True)
            except (BrokenExecutor, WorkerCrashError, OSError):
                self.stats["worker_crashes"] += 1
                self._last_failure = "crash"
                attempts[i] += 1
                executor_down = True
                self._retire(executor, reap=False)
            else:
                results[i] = payload
                done[i] = True

    def _harvest_completed(self, kind, unit, future, results, done, i) -> bool:
        """Salvage an already-finished future after the pool went down."""
        if not future.done():
            return False
        try:
            payload = future.result(timeout=0)
            self._validate(kind, unit, payload)
        except Exception:
            # Cancelled / broken / corrupt: genuinely failed, retry it.
            # A real bug in the work unit re-raises on the serial rung.
            return False
        results[i] = payload
        done[i] = True
        return True

    def _after_failures(self, attempts, still, level, cause) -> None:
        self.stats["retries"] += len(still)
        worst = max(attempts[i] for i in still)
        if worst > self.policy.max_retries:
            self._degrade(level, cause or "crash")
            for i in still:
                attempts[i] = 0  # fresh retry budget on the next rung
        else:
            self._backoff(worst)

    def _degrade(self, level: str, cause: str) -> None:
        policy = self.policy
        if not policy.degrade:
            if cause == "timeout":
                raise ExecutionTimeoutError(
                    f"work unit exceeded the {policy.timeout_s}s timeout "
                    f"{policy.max_retries + 1} times on the {level} backend"
                )
            if cause == "corrupt":
                raise CorruptStateError(
                    f"worker payloads failed validation {policy.max_retries + 1} "
                    f"times on the {level} backend"
                )
            raise WorkerCrashError(
                f"workers kept dying ({policy.max_retries + 1} attempts) "
                f"on the {level} backend"
            )
        engine = self._engine
        engine._degraded = _NEXT_RUNG[level]
        self.stats["degradations"] += 1
        executor = engine._executors.get(level)
        if executor is not None:
            self._retire(executor, reap=False)

    def _retire(self, executor, reap: bool) -> None:
        """Remove ``executor`` from the engine and tear it down.

        ``reap`` force-kills workers first (the hung-pool path) — a
        plain shutdown would block behind a worker stuck in a syscall.
        Either way the pool's finalizer runs, so the shared-memory
        segment is closed and unlinked: abnormal teardown never leaks
        ``/dev/shm`` entries.
        """
        engine = self._engine
        for level, existing in list(engine._executors.items()):
            if existing is executor:
                engine._executors.pop(level)
                break
        self.stats["pool_rebuilds"] += 1
        if reap and hasattr(executor, "terminate"):
            executor.terminate()
        else:
            executor.close()

    def _backoff(self, failed_attempts: int) -> None:
        policy = self.policy
        if policy.backoff_base_s <= 0:
            return
        delay = min(
            policy.backoff_max_s,
            policy.backoff_base_s * (2.0 ** max(0, failed_attempts - 1)),
        )
        delay *= 1.0 + policy.backoff_jitter * self._rng.random()
        self.stats["backoff_s"] += delay
        time.sleep(delay)

    # ------------------------------------------------------------------
    # the serial rung
    def _run_serial(self, kind: str, unit: tuple):
        """Run one work unit in-process on a cached serial clone.

        Not ``_dispatch(engine, ...)``: the parent's bulk methods would
        re-enter the parallel planner and recurse.  The clone is the
        same zero-copy serial view the thread pool uses, and its counter
        deltas fold back into the parent so the adaptive policies keep
        seeing the work.
        """
        engine = self._engine
        clone = self._serial_clone
        if clone is None or clone.values is not engine.values:
            clone = engine._thread_clone()
            self._serial_clone = clone
        before = dict(clone.stats)
        rank_columns = clone._rank_float_columns
        rank_fallbacks = clone._rank_float_fallbacks
        try:
            result = _dispatch(clone, kind, *unit)
        finally:
            for key, value in clone.stats.items():
                engine.stats[key] += value - before[key]
            engine._rank_float_columns += clone._rank_float_columns - rank_columns
            engine._rank_float_fallbacks += clone._rank_float_fallbacks - rank_fallbacks
        self.stats["serial_units"] += 1
        return result

    # ------------------------------------------------------------------
    # structural payload validation
    def _validate(self, kind: str, unit: tuple, payload) -> None:
        """Reject payloads whose structure cannot be the unit's output.

        This is the corruption firewall: a torn pickle / garbled return
        surfaces as a wrong type, shape or dtype long before its values
        could poison a merge.  (Value-level trust comes from the
        exactness contract, which re-verifies contested decisions.)
        """
        engine = self._engine
        if kind == "topk":
            Wc, k = unit[0], unit[1]
            ok = (
                isinstance(payload, np.ndarray)
                and payload.shape == (Wc.shape[0], k)
                and payload.dtype.kind in "iu"
            )
        elif kind == "rank":
            ok = (
                isinstance(payload, np.ndarray)
                and payload.shape == (unit[0].shape[0],)
                and payload.dtype.kind in "iu"
            )
        elif kind == "score":
            ok = (
                isinstance(payload, np.ndarray)
                and payload.shape == (engine.n, unit[0].shape[0])
                and payload.dtype == np.float64
            )
        elif kind == "topk_rows":
            ok = (
                isinstance(payload, list)
                and len(payload) == unit[0].shape[0]
                and all(
                    isinstance(c, np.ndarray) and c.ndim == 1 for c in payload
                )
            )
        elif kind == "rank_rows":
            m = unit[0].shape[0]
            ok = (
                isinstance(payload, tuple)
                and len(payload) == 2
                and all(
                    isinstance(p, np.ndarray) and p.shape == (m,) for p in payload
                )
            )
        else:  # pragma: no cover - new kinds must add validation
            ok = False
        if not ok:
            raise CorruptStateError(
                f"worker returned a structurally invalid {kind!r} payload "
                "(torn or corrupted result); unit will be retried"
            )
