"""repro.engine — the vectorized batch-scoring subsystem.

One :class:`ScoreEngine` per data matrix answers every top-k / scoring
question the algorithms ask, batched: a single chunked GEMM plus one
``argpartition`` over all query functions replaces per-function GEMV
probes, and packed bitsets (:mod:`repro.engine.bitset`) replace Python
``frozenset`` churn for k-set dedup and intersection.

Consumers (all refactored onto this engine):

* :func:`repro.core.mdrc` — frontier-batched corner evaluation;
* :func:`repro.geometry.ksets.sample_ksets` — K-SETr with bitset dedup;
* :func:`repro.ranking.topk.batch_top_k_sets` and
  :func:`repro.core.workload_rrr` — workload scoring;
* :func:`repro.evaluation.regret.rank_regret_sampled` — batched,
  ulp-verified rank counting;
* the :mod:`repro.baselines` regret-ratio algorithms — shared chunked
  scoring.

Decisions climb a four-tier exactness ladder — int8/int16 quantized
screening (:mod:`repro.engine.quantize`), float32 batch, float64 batch,
scalar GEMV fallback — each tier resolving only what it can prove, so
results are always bit-identical to the scalar ``top_k``/``rank_of``
path.

:mod:`repro.engine.parallel` is the fan-out layer: with
``ScoreEngine(..., n_jobs=N, backend=...)`` every bulk call above a
calibrated work cutover is split into function-chunk or row-chunk work
units, run over a persistent thread pool (zero-copy clones, GIL-free
GEMM) or shared-memory process pool, and merged deterministically —
bit-identical to the serial path.  ``backend="auto"`` picks
serial/thread/process from problem size and the measured scalar-fallback
ratio.

:mod:`repro.engine.autotune` is the self-tuning layer: every perf
constant lives in a per-engine :class:`TuningProfile` (defaults = the
legacy hand-tuned values), and a sub-second calibration probe
(``ScoreEngine(..., tune="auto")`` / :meth:`ScoreEngine.calibrate`)
derives machine- and matrix-specific values, persistable to JSON.
:mod:`repro.engine.delta` gives long-lived engines incremental
:meth:`ScoreEngine.insert_rows` / :meth:`ScoreEngine.delete_rows`:
journaled mutations compact lazily by merge-repairing the orderings and
quantized stores instead of rebuilding them, bit-identical to a fresh
engine on the mutated matrix.

:mod:`repro.engine.resilience` is the supervision layer around the
fan-out: dead workers are detected and their work units re-executed
under bounded retry with backoff, hung units are reaped on a per-unit
timeout, corrupted payloads are rejected structurally, and a backend
that keeps failing degrades process → thread → serial (sticky) — always
bit-identical, because merges key on unit index, not completion.
:mod:`repro.engine.faults` is the matching deterministic fault-injection
harness the chaos tests and ``perf_gate.py --faults`` drive.

:mod:`repro.engine.views` is the materialized-view layer on top of the
delta journal: :class:`MDRCView` / :class:`KSetView` / :class:`MDRRRView`
/ :class:`RankRegretView` cache a consumer's intermediate state
(corner memo, draw state, rank counts), subscribe to the engine's
delta events, invalidate only what a mutation's score bounds can touch,
and replay the real algorithm over the surviving cache — maintained
results bit-identical to a from-scratch recompute.

:mod:`repro.engine.wal` is the durability layer for the serving tier:
a CRC-framed, fsync'd write-ahead log of committed mutations (torn
tails truncated, bit flips rejected), atomic checksummed snapshots, and
:class:`DurableStore` — one locked data directory whose recovery path
(newest valid snapshot + WAL-suffix replay through
:func:`repro.engine.delta.replay_event`) restarts an engine
bit-identical to one that never crashed, idempotency table included.

:mod:`repro.engine.sharded` is the beyond-one-process layer:
:class:`ShardedScoreEngine` partitions the rows across N supervised
worker shards (each a full engine with its own tuning profile and
optional shard-local :class:`DurableStore`), merges queries under the
exactness contract bit-identically to an unsharded engine, journals
fleet mutations as intent/commit frames, and recovers killed or hung
shards from their own snapshot + WAL suffix while the fleet serves —
with a two-level exactly-once table so retried fleet mutations re-apply
only on shards whose commit record is missing.

:mod:`repro.engine.reference` keeps the frozen pre-engine
implementations that the equivalence tests and the perf-regression gate
(``benchmarks/perf_gate.py``) compare against.
"""

from repro.engine.autotune import TuningProfile, calibrate_engine
from repro.engine.faults import FaultInjector
from repro.engine.bitset import (
    BitsetTable,
    intersect_all,
    pack_indices,
    pack_membership,
    packed_width,
    popcount,
    unpack_indices,
)
from repro.engine.parallel import (
    BACKENDS,
    ParallelExecutor,
    SharedMatrix,
    ThreadExecutor,
    resolve_backend,
    resolve_n_jobs,
)
from repro.engine.quantize import Quantizer
from repro.engine.resilience import (
    RetryPolicy,
    Supervisor,
    get_default_policy,
    set_default_policy,
)
from repro.engine.score_engine import ScoreEngine, TopKBatch
from repro.engine.sharded import (
    ShardedScoreEngine,
    ShardSupervisor,
    ShardWorker,
)
from repro.engine.wal import (
    Commit,
    DurableStore,
    Snapshot,
    WriteAheadLog,
    load_snapshot,
    replay_commits,
    write_snapshot,
)
from repro.engine.views import (
    KSetView,
    MaterializedView,
    MDRCView,
    MDRRRView,
    RankRegretView,
)

__all__ = [
    "ScoreEngine",
    "ShardedScoreEngine",
    "ShardSupervisor",
    "ShardWorker",
    "TopKBatch",
    "MaterializedView",
    "MDRCView",
    "KSetView",
    "MDRRRView",
    "RankRegretView",
    "TuningProfile",
    "calibrate_engine",
    "RetryPolicy",
    "Supervisor",
    "get_default_policy",
    "set_default_policy",
    "FaultInjector",
    "Commit",
    "DurableStore",
    "Snapshot",
    "WriteAheadLog",
    "load_snapshot",
    "replay_commits",
    "write_snapshot",
    "BACKENDS",
    "ParallelExecutor",
    "SharedMatrix",
    "ThreadExecutor",
    "Quantizer",
    "resolve_backend",
    "resolve_n_jobs",
    "BitsetTable",
    "pack_indices",
    "pack_membership",
    "unpack_indices",
    "packed_width",
    "popcount",
    "intersect_all",
]
