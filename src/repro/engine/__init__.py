"""repro.engine — the vectorized batch-scoring subsystem.

One :class:`ScoreEngine` per data matrix answers every top-k / scoring
question the algorithms ask, batched: a single chunked GEMM plus one
``argpartition`` over all query functions replaces per-function GEMV
probes, and packed bitsets (:mod:`repro.engine.bitset`) replace Python
``frozenset`` churn for k-set dedup and intersection.

Consumers (all refactored onto this engine):

* :func:`repro.core.mdrc` — frontier-batched corner evaluation;
* :func:`repro.geometry.ksets.sample_ksets` — K-SETr with bitset dedup;
* :func:`repro.ranking.topk.batch_top_k_sets` and
  :func:`repro.core.workload_rrr` — workload scoring;
* :func:`repro.evaluation.regret.rank_regret_sampled` — batched,
  ulp-verified rank counting;
* the :mod:`repro.baselines` regret-ratio algorithms — shared chunked
  scoring.

:mod:`repro.engine.parallel` is the shared-memory fan-out layer: with
``ScoreEngine(..., n_jobs=N)`` every bulk call above a calibrated work
cutover is split into function-chunk or row-chunk work units, run over a
persistent process pool that maps the data matrix zero-copy, and merged
deterministically — bit-identical to the serial path.

:mod:`repro.engine.reference` keeps the frozen pre-engine
implementations that the equivalence tests and the perf-regression gate
(``benchmarks/perf_gate.py``) compare against.
"""

from repro.engine.bitset import (
    BitsetTable,
    intersect_all,
    pack_indices,
    pack_membership,
    packed_width,
    popcount,
    unpack_indices,
)
from repro.engine.parallel import ParallelExecutor, SharedMatrix, resolve_n_jobs
from repro.engine.score_engine import ScoreEngine, TopKBatch

__all__ = [
    "ScoreEngine",
    "TopKBatch",
    "ParallelExecutor",
    "SharedMatrix",
    "resolve_n_jobs",
    "BitsetTable",
    "pack_indices",
    "pack_membership",
    "unpack_indices",
    "packed_width",
    "popcount",
    "intersect_all",
]
