"""Calibration-based autotuning for :class:`~repro.engine.ScoreEngine`.

Every perf-relevant constant the engine used to hard-code — GEMM chunk
sizes, the serial/parallel cutover, fan-out granularity, the quantized
and scalar routing caps, the adaptive-policy thresholds — was hand-tuned
on one sandbox and silently wrong everywhere else: a laptop with a small
L3, a 64-core server, a container pinned to one CPU and a BLAS that
spawns its own threads all want different numbers.  This module replaces
those module constants with a per-engine :class:`TuningProfile` and
derives one from a **calibration probe**: a sub-second micro-benchmark
run against *this* machine and *this* matrix that measures

* GEMM throughput (seconds per score-matrix entry) and per-call
  overhead, which set the column chunk size and the score-buffer size of
  the fused rank-counting loop;
* pool-dispatch latency, which sets the serial cutover (a call only
  fans out once its serial GEMM time dwarfs the cost of shipping work
  units) and the work-unit granularity;
* the scalar-fallback kernel's cost relative to a GEMM column, which
  sets the thread→process escalation threshold (threads only lose when
  GIL-bound scalar work is a meaningful share of a call) and how
  eagerly the rank path engages the quantized screen (the screen pays
  by eliminating full-matrix rescans — its trigger should track how
  expensive those rescans actually are);
* integer-carrier vs float GEMM throughput, which prices the quantized
  tier's extra passes.

Exactness is never at stake: every knob in a profile changes *who does
the work* — chunk layout, routing, which tier attempts a decision first
— while the engine's ulp-band / exact-fallback machinery keeps results
bit-identical to the scalar path for **any** profile, however
pathological (the test suite pins this).  The truly semantic constants
(the tie-band width, the quantization slack, the safe-scale range) are
deliberately *not* tunable and stay where they are.

Profiles serialize to JSON (:meth:`TuningProfile.save` /
:meth:`TuningProfile.load`), so a service calibrates once and restarts
with ``--tuning-profile profile.json`` instead of re-probing.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import tempfile
import time
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.engine.parallel import DEFAULT_MIN_PARALLEL_WORK
from repro.exceptions import CorruptStateError


def _payload_checksum(payload: dict) -> str:
    """sha256 over the canonical (sorted, JSON-native) profile payload.

    The payload is round-tripped through JSON before hashing so the
    write-time hash (computed on Python objects) and the load-time hash
    (computed on reparsed JSON values) see byte-identical input.
    """
    canonical = json.loads(json.dumps(payload, default=str))
    body = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()

__all__ = ["TuningProfile", "calibrate_engine"]

# Probe workload caps: the calibration GEMMs never exceed this many data
# rows / weight columns, so the probe stays sub-second on any matrix.
_PROBE_ROWS = 8192
_PROBE_COLS = 64

# Chunk-size candidates tried by the probe (bytes of one float64 score
# chunk).  The hand-tuned legacy value sits in the middle.
_CHUNK_CANDIDATES = (1 << 24, 1 << 26, 1 << 28)
_RANK_BUFFER_CANDIDATES = (1 << 21, 1 << 23, 1 << 25)


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


@dataclass(frozen=True)
class TuningProfile:
    """Every tunable runtime constant of one :class:`ScoreEngine`.

    The defaults reproduce the legacy hand-tuned module constants
    exactly, so ``ScoreEngine(values)`` (``tune=None``) behaves as it
    always did; :func:`calibrate_engine` derives machine- and
    matrix-specific values.  All fields are performance knobs only —
    any profile yields bit-identical results.

    Attributes
    ----------
    chunk_bytes:
        Target byte size of one float64 score chunk; the weight batch is
        processed ``chunk_bytes / (8n)`` columns at a time.
    parallel_min_work:
        Serial fast-path cutover in score-matrix entries (``n * m``);
        bulk calls below it never touch a worker pool.
    units_per_worker:
        Work units per worker per parallel call — slack for the pool to
        balance uneven chunks against dispatch overhead.
    rank_buffer_bytes:
        Target float32 score-buffer size of one fused rank-count chunk
        (sized to sit in cache so threshold passes read hot data).
    rank_grid_base:
        Base of the doubling prefix-size grid used to group rank-count
        functions onto shared GEMMs.
    quant_rank_cap:
        Rank counting: a function whose integer-envelope band exceeds
        this many rows is promoted to the float tiers.
    quant_scalar_promote:
        Top-k: promoted sets at or below this size skip the batch tiers
        for the scalar kernel directly.
    rank_quant_fallback_ratio / rank_quant_min_sample:
        The rank path engages the quantized screen once the float path
        has dropped more than this fraction of at least ``min_sample``
        counted functions to the exact scalar kernel.
    backend_escalate_ratio / backend_min_sample:
        ``backend="auto"`` escalates threads → processes once this
        fraction of at least ``min_sample`` decided columns needed the
        scalar (GIL-bound) fallback.
    initial_backend:
        The pool ``backend="auto"`` starts with above the cutover
        (``"thread"`` or ``"process"``).
    quant_promote_window / quant_promote_limit:
        The quantizer's adaptive level policy: after ``window`` screened
        columns, a promote rate above ``limit`` upgrades
        int8 → int16 → off.
    meta:
        Free-form provenance (probe measurements, machine info).  Never
        read by the engine; survives JSON round-trips.
    """

    chunk_bytes: int = 1 << 26
    parallel_min_work: int = DEFAULT_MIN_PARALLEL_WORK
    units_per_worker: int = 4
    rank_buffer_bytes: int = 1 << 23
    rank_grid_base: int = 128
    quant_rank_cap: int = 256
    quant_scalar_promote: int = 16
    rank_quant_fallback_ratio: float = 0.02
    rank_quant_min_sample: int = 64
    backend_escalate_ratio: float = 0.05
    backend_min_sample: int = 4096
    initial_backend: str = "thread"
    quant_promote_window: int = 512
    quant_promote_limit: float = 0.25
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        # Coerce and store: a JSON profile (the hand-editable restart
        # surface) can carry 8388608.0 where an int is meant — validated
        # -but-uncoerced floats would crash much later inside range()/
        # slicing in the hot kernels.  Non-integral values are rejected.
        for name, floor in (
            ("chunk_bytes", 1),
            ("units_per_worker", 1),
            ("rank_buffer_bytes", 1),
            ("rank_grid_base", 1),
            ("quant_rank_cap", 1),
            ("quant_scalar_promote", 1),
            ("quant_promote_window", 1),
            ("parallel_min_work", 0),
            ("rank_quant_min_sample", 0),
            ("backend_min_sample", 0),
        ):
            raw = getattr(self, name)
            value = int(raw)
            if value != raw:
                raise ValueError(f"TuningProfile.{name} must be an integer, got {raw!r}")
            if value < floor:
                raise ValueError(f"TuningProfile.{name} must be >= {floor}")
            object.__setattr__(self, name, value)
        for name in (
            "rank_quant_fallback_ratio",
            "backend_escalate_ratio",
            "quant_promote_limit",
        ):
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"TuningProfile.{name} must be in [0, 1]")
            object.__setattr__(self, name, value)
        if self.initial_backend not in ("thread", "process"):
            raise ValueError(
                "TuningProfile.initial_backend must be 'thread' or 'process', "
                f"got {self.initial_backend!r}"
            )

    # ------------------------------------------------------------------
    # JSON persistence
    def to_json(self) -> str:
        payload = {"schema": 1, **asdict(self)}
        payload["checksum"] = _payload_checksum(payload)
        return json.dumps(payload, indent=2, default=str) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "TuningProfile":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CorruptStateError(
                f"tuning profile is not valid JSON (torn write?): {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise CorruptStateError(
                f"tuning profile must be a JSON object, got {type(payload).__name__}"
            )
        stored = payload.pop("checksum", None)
        if stored is not None and stored != _payload_checksum(payload):
            raise CorruptStateError(
                "tuning profile failed its checksum (corrupted or hand-edited); "
                "delete the file or recalibrate to regenerate it"
            )
        payload.pop("schema", None)
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown TuningProfile fields: {sorted(unknown)}")
        return cls(**payload)

    def save(self, path) -> None:
        """Atomically persist the profile (temp file + ``os.replace``).

        A crash mid-write can therefore never leave a torn file behind:
        readers see either the previous profile or the complete new one.
        """
        path = os.fspath(path)
        directory = os.path.dirname(path) or "."
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".tuning-", suffix=".json.tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(self.to_json())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            # Durable-rename discipline: fsync the directory too, or a
            # machine-level crash can undo the replace (losing the rename
            # even though the file's bytes were synced).
            from repro.engine.wal import _fsync_dir

            _fsync_dir(directory)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - already replaced/removed
                pass
            raise

    @classmethod
    def load(cls, path) -> "TuningProfile":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def with_meta(self, **entries) -> "TuningProfile":
        return replace(self, meta={**self.meta, **entries})


# ----------------------------------------------------------------------
# Probe primitives.  Each measurement repeats within a small budget and
# keeps the *minimum* wall time — the least-interfered-with run is the
# best estimate of the machine's actual cost.
def _min_time(fn, budget_s: float, min_repeats: int = 3) -> float:
    best = np.inf
    deadline = time.perf_counter() + budget_s
    repeats = 0
    while repeats < min_repeats or time.perf_counter() < deadline:
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
        repeats += 1
        if repeats >= 64:
            break
    return max(best, 1e-9)


def _probe_gemm(V: np.ndarray, W: np.ndarray, budget_s: float) -> tuple[float, float]:
    """(seconds per score entry, seconds of per-call overhead)."""
    out = np.empty((V.shape[0], W.shape[0]))
    t_full = _min_time(lambda: np.matmul(V, W.T, out=out), budget_s)
    tiny_out = np.empty((min(V.shape[0], 64), 1))
    tiny_V = V[: tiny_out.shape[0]]
    tiny_W = W[:1]
    t_call = _min_time(lambda: np.matmul(tiny_V, tiny_W.T, out=tiny_out), budget_s / 2)
    per_entry = max(t_full - t_call, t_full * 0.5) / (V.shape[0] * W.shape[0])
    return per_entry, t_call


def _probe_dispatch(budget_s: float) -> float:
    """Round-trip latency of one thread-pool work unit."""
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=1) as pool:
        pool.submit(int).result()  # warm the worker thread

        def roundtrip() -> None:
            pool.submit(int).result()

        return _min_time(roundtrip, budget_s)


def _probe_chunk_bytes(V: np.ndarray, d: int, n: int, budget_s: float) -> int:
    """The chunk-size candidate with the best measured GEMM throughput.

    Chunk width only differentiates once ``chunk_bytes / (8n)`` changes
    across candidates; on small matrices every candidate collapses to
    the same width and the legacy default wins by the hysteresis rule.
    """
    rows = V.shape[0]
    timings: list[tuple[float, int]] = []
    rng = np.random.default_rng(0)
    for candidate in _CHUNK_CANDIDATES:
        cols = max(1, candidate // (8 * n))
        cols = min(cols, 4 * _PROBE_COLS)  # keep the probe GEMM bounded
        W = rng.standard_normal((cols, d))
        out = np.empty((rows, cols))
        t = _min_time(
            lambda V=V, W=W, out=out: np.matmul(V, W.T, out=out),
            budget_s / len(_CHUNK_CANDIDATES),
        )
        timings.append((t / (rows * cols), candidate))
    best_per_entry = min(t for t, _ in timings)
    default_entry = next(t for t, c in timings if c == 1 << 26)
    # 5% hysteresis toward the legacy default: only move for a real win.
    if default_entry <= best_per_entry * 1.05:
        return 1 << 26
    return min(c for t, c in timings if t <= best_per_entry * 1.02)


def _probe_rank_buffer(budget_s: float) -> int:
    """Largest buffer whose threshold-scan throughput is near the best.

    The fused rank loop wants the biggest buffer that still scans at
    cache speed: bigger buffers amortize Python loop overhead, but past
    the cache the scan drops to memory bandwidth.
    """
    rng = np.random.default_rng(0)
    timings: list[tuple[float, int]] = []
    for candidate in _RANK_BUFFER_CANDIDATES:
        buf = rng.standard_normal(candidate // 4).astype(np.float32)
        t = _min_time(
            lambda buf=buf: (buf > 0.5).sum(), budget_s / len(_RANK_BUFFER_CANDIDATES)
        )
        timings.append((t / buf.size, candidate))
    best = min(t for t, _ in timings)
    eligible = [c for t, c in timings if t <= best * 1.10]
    return max(eligible)


def _probe_scalar_column(values: np.ndarray, budget_s: float) -> float:
    """Cost of one scalar-fallback column: float64 GEMV + over-select."""
    rng = np.random.default_rng(0)
    w = rng.random(values.shape[1])
    n = values.shape[0]
    k = min(16, n)

    def fallback() -> None:
        score = values @ w
        if k >= n:
            candidates = np.arange(n)
        else:
            kth = np.partition(score, n - k)[n - k]
            candidates = np.flatnonzero(score >= kth)
        np.lexsort((candidates, -score[candidates]))

    return _min_time(fallback, budget_s)


def _probe_quant_ratio(V: np.ndarray, d: int, budget_s: float) -> float:
    """Integer-carrier GEMM time relative to the float32 GEMM."""
    rng = np.random.default_rng(0)
    rows = V.shape[0]
    Q = np.rint(rng.uniform(-127, 127, size=(rows, d + 1))).astype(np.float32)
    Wq = np.rint(rng.uniform(-127, 127, size=(_PROBE_COLS, d + 1))).astype(np.float32)
    V32 = V.astype(np.float32)
    W32 = rng.standard_normal((_PROBE_COLS, d)).astype(np.float32)
    t_int = _min_time(lambda: Wq @ Q.T, budget_s / 2)
    t_f32 = _min_time(lambda: W32 @ V32.T, budget_s / 2)
    return t_int / max(t_f32, 1e-9)


def calibrate_engine(engine, budget_s: float = 0.25) -> TuningProfile:
    """Measure this machine + matrix and derive a :class:`TuningProfile`.

    ``budget_s`` bounds the *per-measurement* probe budget; the whole
    calibration stays within a small multiple of it.  The derivations:

    * ``chunk_bytes`` — the candidate chunk size with the best measured
      GEMM throughput on the engine's own rows (5% hysteresis toward
      the legacy default);
    * ``parallel_min_work`` — fan-out only pays once the serial GEMM
      time is ≥ ~16 pool round-trips per worker, so the cutover is
      ``16 · n_jobs · t_dispatch / sec_per_entry``;
    * ``units_per_worker`` — as many balancing units as keep one unit's
      GEMM ≥ ~20 dispatches;
    * ``rank_buffer_bytes`` — the largest buffer that still threshold-
      scans at near-peak (cache) speed;
    * ``backend_escalate_ratio`` — threads escalate to processes when
      the GIL-bound scalar share eats ≥ ~25% of a call's parallel GEMM
      time, so the threshold shrinks as the scalar kernel gets more
      expensive relative to a GEMM column;
    * ``rank_quant_fallback_ratio`` — the quantized screen's trigger
      tracks its price: the cheaper the integer GEMM relative to
      float32, the earlier it engages;
    * ``quant_rank_cap`` / ``quant_scalar_promote`` — sized from the
      measured per-call overhead vs per-entry throughput (how many
      gathered rows cost as much as the batch-tier setup they avoid).

    The profile is returned, not applied — callers use
    :meth:`ScoreEngine.calibrate` (which applies it) or persist it via
    :meth:`TuningProfile.save`.
    """
    values = engine.values
    n, d = values.shape
    rng = np.random.default_rng(0)
    V = np.ascontiguousarray(values[: min(n, _PROBE_ROWS)])
    W = rng.standard_normal((_PROBE_COLS, d))

    sec_per_entry, t_call = _probe_gemm(V, W, budget_s)
    t_dispatch = _probe_dispatch(budget_s / 2)
    chunk_bytes = _probe_chunk_bytes(V, d, n, budget_s)
    rank_buffer_bytes = _probe_rank_buffer(budget_s / 2)
    t_scalar = _probe_scalar_column(values if n <= _PROBE_ROWS else V, budget_s / 2)
    quant_ratio = _probe_quant_ratio(V, d, budget_s / 2)

    n_jobs = max(1, getattr(engine, "n_jobs", 1))
    t_gemm_col = n * sec_per_entry

    parallel_min_work = int(
        _clamp(16.0 * n_jobs * t_dispatch / sec_per_entry, 1 << 18, 1 << 27)
    )
    units_per_worker = int(
        _clamp(
            parallel_min_work * sec_per_entry / (20.0 * t_dispatch * n_jobs),
            2,
            8,
        )
    )
    backend_escalate_ratio = _clamp(
        0.25 * t_gemm_col / (n_jobs * max(t_scalar, 1e-9)), 0.01, 0.25
    )
    # The screen's extra cost per function is roughly (quant_ratio - 1)
    # float32-GEMM equivalents plus two threshold passes; each avoided
    # fallback saves one full scalar rescan.  Engage once the measured
    # fallback rate covers that price (never below 0.5%, never above 10%).
    screen_extra = max(quant_ratio - 1.0, 0.0) + 0.5
    rank_quant_fallback_ratio = _clamp(
        screen_extra * t_gemm_col / max(t_scalar, 1e-9) * 0.01, 0.005, 0.10
    )
    # How many exactly-rescored rows cost as much as one batch-tier setup
    # (a per-call overhead plus a probe GEMM): route small candidate sets
    # straight to the gather/scalar finishes.
    rows_per_call = t_call / max(sec_per_entry * max(d, 1), 1e-12)
    quant_scalar_promote = int(_clamp(rows_per_call / 8.0, 4, 64))
    quant_rank_cap = int(_clamp(rows_per_call * 2.0, 64, 2048))

    profile = TuningProfile(
        chunk_bytes=chunk_bytes,
        parallel_min_work=parallel_min_work,
        units_per_worker=units_per_worker,
        rank_buffer_bytes=rank_buffer_bytes,
        quant_rank_cap=quant_rank_cap,
        quant_scalar_promote=quant_scalar_promote,
        rank_quant_fallback_ratio=rank_quant_fallback_ratio,
        backend_escalate_ratio=backend_escalate_ratio,
        meta={
            "calibrated": True,
            "n": int(n),
            "d": int(d),
            "float32": bool(engine.float32),
            "n_jobs": int(n_jobs),
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "sec_per_entry": float(sec_per_entry),
            "t_call_s": float(t_call),
            "t_dispatch_s": float(t_dispatch),
            "t_scalar_column_s": float(t_scalar),
            "quant_gemm_ratio": float(quant_ratio),
        },
    )
    return profile
