"""Frozen pre-engine reference implementations.

These are the seed repository's scalar/per-column hot paths, captured
verbatim (modulo trimming) before they were refactored onto
:class:`repro.engine.ScoreEngine`.  They exist for two consumers:

* the equivalence test suite (``tests/engine/``), which asserts the
  batched engine reproduces these semantics bit-for-bit on seeded
  instance grids;
* ``benchmarks/perf_gate.py``, which times them to produce the
  ``baseline_median_s`` column of the committed ``BENCH_*.json`` files —
  the denominator of every speedup claim.

Do not "improve" this module: its value is that it stays identical to
the seed behavior.  New code belongs in :mod:`repro.engine.score_engine`
or the algorithm modules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.ranking.functions import weights_from_angles
from repro.ranking.sampling import sample_functions

__all__ = [
    "reference_top_k",
    "reference_batch_top_k_sets",
    "reference_sample_ksets",
    "reference_mdrc",
    "reference_rank_regret_sampled",
    "reference_kset_graph_edges",
]

_HALF_PI = float(np.pi / 2)


def reference_top_k(values: np.ndarray, weights: np.ndarray, k: int) -> np.ndarray:
    """Seed ``repro.ranking.topk.top_k``: one GEMV + partition + lexsort."""
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    n = values.shape[0]
    score = values @ weights
    if k >= n:
        candidates = np.arange(n)
    else:
        kth = np.partition(score, n - k)[n - k]
        candidates = np.flatnonzero(score >= kth)
    order = np.lexsort((candidates, -score[candidates]))
    return candidates[order[:k]]


def reference_batch_top_k_sets(
    values: np.ndarray, weight_matrix: np.ndarray, k: int
) -> list[frozenset[int]]:
    """Seed ``batch_top_k_sets``: one GEMM, per-column Python loop."""
    values = np.asarray(values, dtype=np.float64)
    weight_matrix = np.asarray(weight_matrix, dtype=np.float64)
    n = values.shape[0]
    all_scores = values @ weight_matrix.T
    results: list[frozenset[int]] = []
    index_key = np.arange(n)
    for column in range(all_scores.shape[1]):
        score = all_scores[:, column]
        if k >= n:
            candidates = index_key
        else:
            kth = np.partition(score, n - k)[n - k]
            candidates = np.flatnonzero(score >= kth)
        order = np.lexsort((candidates, -score[candidates]))
        results.append(frozenset(int(i) for i in candidates[order[:k]]))
    return results


@dataclass
class ReferenceKSetResult:
    """Mirror of :class:`repro.geometry.ksets.KSetSampleResult`."""

    ksets: list[frozenset[int]]
    functions: list[np.ndarray] = field(default_factory=list)
    draws: int = 0
    exhausted: bool = False


def reference_sample_ksets(
    values: np.ndarray,
    k: int,
    patience: int = 100,
    rng: int | np.random.Generator | None = None,
    max_draws: int = 1_000_000,
    batch_size: int = 256,
) -> ReferenceKSetResult:
    """Seed K-SETr: per-draw frozenset construction and set-of-frozenset dedup."""
    matrix = np.asarray(values, dtype=np.float64)
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    n = matrix.shape[0]
    result = ReferenceKSetResult(ksets=[])
    seen: set[frozenset[int]] = set()
    misses = 0
    index_key = np.arange(n)
    while result.draws < max_draws:
        batch = min(batch_size, max_draws - result.draws)
        weights = sample_functions(matrix.shape[1], batch, generator)
        score_matrix = matrix @ weights.T
        done = False
        for column in range(batch):
            score = score_matrix[:, column]
            result.draws += 1
            if k >= n:
                members = index_key
            else:
                kth = np.partition(score, n - k)[n - k]
                candidates = np.flatnonzero(score >= kth)
                order = np.lexsort((candidates, -score[candidates]))
                members = candidates[order[:k]]
            kset = frozenset(int(i) for i in members)
            if kset in seen:
                misses += 1
                if misses >= patience:
                    done = True
                    break
            else:
                seen.add(kset)
                result.ksets.append(kset)
                result.functions.append(weights[column])
                misses = 0
        if done:
            return result
    result.exhausted = True
    return result


@dataclass
class _ReferenceMDRCState:
    matrix: np.ndarray
    k: int
    choice: str
    use_cache: bool
    selected: set[int] = field(default_factory=set)
    evaluations: int = 0
    _cache: dict[tuple[float, ...], tuple[frozenset[int], np.ndarray]] = field(
        default_factory=dict
    )

    def corner_top_k(self, angles: tuple[float, ...]) -> tuple[frozenset[int], np.ndarray]:
        if self.use_cache and angles in self._cache:
            return self._cache[angles]
        weights = weights_from_angles(np.asarray(angles))
        ordered = reference_top_k(self.matrix, weights, self.k)
        entry = (frozenset(int(i) for i in ordered), ordered)
        if self.use_cache:
            self._cache[angles] = entry
        self.evaluations += 1
        return entry

    def center_top1(self, cell: tuple[tuple[float, float], ...]) -> int:
        center = tuple((lo + hi) / 2.0 for lo, hi in cell)
        weights = weights_from_angles(np.asarray(center))
        return int(reference_top_k(self.matrix, weights, 1)[0])


@dataclass
class ReferenceMDRCResult:
    """Mirror of :class:`repro.core.mdrc.MDRCResult`."""

    indices: list[int]
    cells: int = 0
    max_depth_reached: int = 0
    capped_cells: int = 0
    corner_evaluations: int = 0


def _reference_pick(common, corner_data, choice):
    if choice == "first":
        return min(common)
    best_item = -1
    best_worst = None
    for item in sorted(common):
        worst = 0
        for _, ordered in corner_data:
            position = int(np.flatnonzero(ordered == item)[0])
            worst = max(worst, position)
        if best_worst is None or worst < best_worst:
            best_worst = worst
            best_item = item
    return best_item


def reference_mdrc(
    values: np.ndarray,
    k: int,
    max_depth: int = 48,
    max_cells: int = 10_000,
    choice: str = "first",
    use_cache: bool = True,
) -> ReferenceMDRCResult:
    """Seed MDRC: depth-first recursion, one scalar top-k probe per corner."""
    matrix = np.asarray(values, dtype=np.float64)
    d = matrix.shape[1]
    state = _ReferenceMDRCState(matrix, int(k), choice, use_cache)
    result = ReferenceMDRCResult(indices=[])
    root = tuple((0.0, _HALF_PI) for _ in range(d - 1))
    stack = [(root, 0)]
    while stack:
        cell, level = stack.pop()
        result.max_depth_reached = max(result.max_depth_reached, level)
        budget_exhausted = result.cells >= max_cells
        if not budget_exhausted:
            corners = list(itertools.product(*cell))
            corner_data = [state.corner_top_k(corner) for corner in corners]
            common = frozenset.intersection(*(members for members, _ in corner_data))
            if common:
                state.selected.add(_reference_pick(common, corner_data, state.choice))
                result.cells += 1
                continue
            if level < max_depth:
                axis = level % len(cell)
                lo, hi = cell[axis]
                mid = (lo + hi) / 2.0
                left = cell[:axis] + ((lo, mid),) + cell[axis + 1 :]
                right = cell[:axis] + ((mid, hi),) + cell[axis + 1 :]
                stack.append((right, level + 1))
                stack.append((left, level + 1))
                continue
        state.selected.add(state.center_top1(cell))
        result.cells += 1
        result.capped_cells += 1
    result.indices = sorted(state.selected)
    result.corner_evaluations = state.evaluations
    return result


def reference_rank_regret_sampled(
    values: np.ndarray,
    subset,
    num_functions: int = 10_000,
    rng: int | np.random.Generator | None = None,
) -> int:
    """Seed Monte-Carlo rank-regret: unchunked GEMM, strict > counting."""
    matrix = np.asarray(values, dtype=np.float64)
    members = sorted({int(i) for i in subset})
    weights = sample_functions(matrix.shape[1], num_functions, rng)
    score_matrix = matrix @ weights.T
    subset_best = score_matrix[members].max(axis=0)
    better = (score_matrix > subset_best[None, :]).sum(axis=0)
    return int(better.max()) + 1


def reference_kset_graph_edges(ksets: list[frozenset[int]]) -> list[tuple[int, int]]:
    """Seed k-set graph: O(m²) pairwise frozenset intersections."""
    edges: list[tuple[int, int]] = []
    for i in range(len(ksets)):
        for j in range(i + 1, len(ksets)):
            k = len(ksets[i])
            if len(ksets[i] & ksets[j]) == k - 1:
                edges.append((i, j))
    return edges
