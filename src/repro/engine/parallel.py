"""Shared-memory multi-process execution layer for :class:`ScoreEngine`.

The engine's three bulk entry points — ``topk_batch``, ``score_batch`` and
``rank_of_best_batch`` — are embarrassingly parallel once the data matrix
is visible to every worker: each call splits into *function-chunk* work
units (slices of the weight batch, the natural cut for MDRC frontiers and
the 10k-function Monte-Carlo estimator) or *row-chunk* work units (slices
of the data rows, for few functions over a large matrix), and partial
results merge deterministically.

Architecture
------------
* the ``(n, d)`` float64 matrix is published once per engine through
  :mod:`multiprocessing.shared_memory` (:class:`SharedMatrix`); workers
  map it zero-copy — nothing per-task but the weight slice crosses the
  pipe;
* a persistent :class:`concurrent.futures.ProcessPoolExecutor` is built
  lazily on the first above-cutover call and reused for the engine's
  lifetime.  Its initializer attaches the shared matrix and constructs
  one :class:`~repro.engine.score_engine.ScoreEngine` *per worker
  process* over it (serial, same configuration).  That worker engine
  persists across tasks, so lazily-built state — norm/attribute pruning
  orderings, the top-k memo — is built once per worker, not once per
  chunk;
* merging is pure bookkeeping: function-chunk results concatenate in
  submission order; row-chunk partial counts sum and row-chunk top-k
  candidates are re-scored exactly by the parent.  Because every work
  unit honours the engine's exactness contract (results bit-identical to
  the scalar ``top_k``/``rank_of`` path), the merged output is
  bit-identical to the serial tiered path for any split.

Determinism note: worker scheduling order never matters — futures are
collected in submission order and every merge is order-preserving.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context, shared_memory

import numpy as np

__all__ = [
    "DEFAULT_MIN_PARALLEL_WORK",
    "ParallelExecutor",
    "SharedMatrix",
    "resolve_n_jobs",
]

# Serial fast-path cutover: calls with fewer than this many score-matrix
# entries (n rows x m functions) stay in-process, so small problems never
# pay pool dispatch (~1 ms/task) or result pickling.  Calibrated so the
# parallel path only engages once one GEMM costs >~10 ms.
DEFAULT_MIN_PARALLEL_WORK = 1 << 23

# Work units per worker and parallel call: more units than workers gives
# the pool slack to balance uneven chunks (tie-heavy columns fall back to
# scalar probes and can be 10x slower than clean ones).
_UNITS_PER_WORKER = 4


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob: None/1 -> serial, -1 -> all cores.

    Any other non-positive value is rejected rather than guessed at.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def _default_context():
    """fork where available (cheap startup, Linux), else spawn.

    Overridable through ``REPRO_MP_CONTEXT`` (``fork`` | ``spawn`` |
    ``forkserver``) without touching call sites.
    """
    name = os.environ.get("REPRO_MP_CONTEXT")
    if name:
        return get_context(name)
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context("spawn")


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without touching the resource tracker.

    Attaching registers the segment with the tracker on CPython < 3.13
    (gh-82300), so workers would try to clean up — or, under fork, send
    spurious unregisters to the parent's tracker — for a segment the
    creating engine owns.  3.13+ has ``track=False``; earlier versions
    get the standard workaround of muting ``register`` for the call.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - CPython < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedMatrix:
    """One float64 matrix in a shared-memory segment.

    The parent :meth:`create`-s it (one copy, at pool construction);
    workers :meth:`attach` by name and wrap the buffer in a read-only,
    C-contiguous ndarray — exactly the layout :class:`ScoreEngine`
    accepts without copying.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, array: np.ndarray, owner: bool
    ) -> None:
        self._shm = shm
        self.array = array
        self._owner = owner

    @classmethod
    def create(cls, matrix: np.ndarray) -> "SharedMatrix":
        shm = shared_memory.SharedMemory(create=True, size=matrix.nbytes)
        array = np.ndarray(matrix.shape, dtype=np.float64, buffer=shm.buf)
        array[:] = matrix
        array.flags.writeable = False
        return cls(shm, array, owner=True)

    @property
    def spec(self) -> tuple[str, tuple[int, ...]]:
        """Picklable handle: (segment name, matrix shape)."""
        return self._shm.name, self.array.shape

    @classmethod
    def attach(cls, spec: tuple[str, tuple[int, ...]]) -> "SharedMatrix":
        name, shape = spec
        shm = _attach_untracked(name)
        array = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
        array.flags.writeable = False
        return cls(shm, array, owner=False)

    def close(self) -> None:
        try:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - double close
            pass


# ----------------------------------------------------------------------
# Worker side.  One engine per worker process, built by the initializer
# and reused across every task the pool hands this worker — orderings
# and memo state are therefore constructed once per worker, never once
# per chunk.
_WORKER: dict = {}


def _init_worker(spec: tuple[str, tuple[int, ...]], config: dict) -> None:
    from repro.engine.score_engine import ScoreEngine

    shared = SharedMatrix.attach(spec)
    _WORKER["shared"] = shared
    _WORKER["engine"] = ScoreEngine(shared.array, **config)


def _run_task(kind: str, *args):
    engine = _WORKER["engine"]
    if kind == "topk":
        weights, k = args
        return engine.topk_order_batch(weights, k)
    if kind == "rank":
        weights, members = args
        return engine.rank_of_best_batch(weights, members)
    if kind == "score":
        weights, = args
        return engine.score_batch(weights)
    if kind == "topk_rows":
        weights, k, lo, hi = args
        return engine.topk_candidates_slice(weights, k, lo, hi)
    if kind == "rank_rows":
        weights, members, lo, hi = args
        return engine.rank_count_slice(weights, members, lo, hi)
    raise ValueError(f"unknown work-unit kind {kind!r}")  # pragma: no cover


def _cleanup(pool: ProcessPoolExecutor, shared: SharedMatrix) -> None:
    pool.shutdown(wait=False, cancel_futures=True)
    shared.close()


class ParallelExecutor:
    """Persistent worker pool + shared matrix for one engine.

    Owns no scoring semantics: the parent engine decides how a call is
    split and how partials merge; this class only ships work units and
    returns their results in submission order.
    """

    def __init__(
        self,
        values: np.ndarray,
        config: dict,
        n_jobs: int,
        mp_context: str | None = None,
    ) -> None:
        self.n_jobs = int(n_jobs)
        self._shared = SharedMatrix.create(values)
        context = get_context(mp_context) if mp_context else _default_context()
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_jobs,
            mp_context=context,
            initializer=_init_worker,
            initargs=(self._shared.spec, config),
        )
        self.tasks_dispatched = 0
        self._finalizer = weakref.finalize(self, _cleanup, self._pool, self._shared)

    # ------------------------------------------------------------------
    def function_chunk_bounds(self, m: int, align: int = 1) -> list[tuple[int, int]]:
        """Contiguous ``[lo, hi)`` slices of an m-function batch.

        ``align`` forces boundaries onto multiples of the engine's serial
        GEMM chunk so ``score_batch`` work units replay the exact serial
        matmul calls (bit-identical raw scores).
        """
        units = min(m, self.n_jobs * _UNITS_PER_WORKER)
        size = -(-m // units)  # ceil
        if align > 1:
            size = -(-size // align) * align
        return [(lo, min(m, lo + size)) for lo in range(0, m, size)]

    def row_chunk_bounds(self, n: int) -> list[tuple[int, int]]:
        units = min(n, self.n_jobs * _UNITS_PER_WORKER)
        size = -(-n // units)
        return [(lo, min(n, lo + size)) for lo in range(0, n, size)]

    def run_function_chunks(self, kind: str, weights, args=(), align: int = 1):
        """Ship one work unit per weight slice; results in slice order."""
        bounds = self.function_chunk_bounds(weights.shape[0], align=align)
        futures = [
            self._pool.submit(_run_task, kind, weights[lo:hi], *args)
            for lo, hi in bounds
        ]
        self.tasks_dispatched += len(futures)
        return [future.result() for future in futures]

    def run_row_chunks(self, kind: str, weights, n: int, args=()):
        """Ship one work unit per data-row slice; results in slice order."""
        bounds = self.row_chunk_bounds(n)
        futures = [
            self._pool.submit(_run_task, kind, weights, *args, lo, hi)
            for lo, hi in bounds
        ]
        self.tasks_dispatched += len(futures)
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and release the shared segment."""
        self._finalizer()
