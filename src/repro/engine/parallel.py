"""Execution backends for :class:`ScoreEngine`'s bulk-call fan-out.

The engine's three bulk entry points — ``topk_batch``, ``score_batch`` and
``rank_of_best_batch`` — are embarrassingly parallel once the data matrix
is visible to every worker: each call splits into *function-chunk* work
units (slices of the weight batch, the natural cut for MDRC frontiers and
the 10k-function Monte-Carlo estimator) or *row-chunk* work units (slices
of the data rows, for few functions over a large matrix), and partial
results merge deterministically.

Two pool backends implement the same work-unit protocol:

:class:`ThreadExecutor` (``backend="thread"``)
    An in-process :class:`~concurrent.futures.ThreadPoolExecutor` whose
    workers run serial *clones* of the parent engine sharing the matrix,
    the pruning orderings, the quantized stores and the float32 copy by
    reference — zero spawn, pickle and shared-memory cost.  NumPy
    releases the GIL inside BLAS and the large ufunc/selection kernels,
    so the GEMM-dominated tiers scale across threads; only the scalar
    fallback tier serializes on the GIL.

:class:`ParallelExecutor` (``backend="process"``)
    The ``(n, d)`` float64 matrix is published once per engine through
    :mod:`multiprocessing.shared_memory` (:class:`SharedMatrix`); a
    persistent :class:`~concurrent.futures.ProcessPoolExecutor` attaches
    it zero-copy and constructs one serial engine *per worker process*.
    Worker engines persist across tasks, so lazily-built state —
    orderings, quantized stores, the top-k memo — is built once per
    worker, not once per chunk.  Immune to the GIL, at the price of
    spawn latency and per-task argument/result pickling.

``backend="auto"`` (the engine default) stays serial below the work
cutover, starts with threads above it, and escalates to processes when
the measured scalar-fallback ratio shows the workload is GIL-bound (see
``ScoreEngine._select_backend``).

Merging is pure bookkeeping either way: function-chunk results
concatenate in submission order; row-chunk partial counts sum and
row-chunk top-k candidates are re-scored exactly by the parent.  Because
every work unit honours the engine's exactness contract (results
bit-identical to the scalar ``top_k``/``rank_of`` path), the merged
output is bit-identical to the serial tiered path for any split and any
backend.

Determinism note: worker scheduling order never matters — futures are
collected in submission order and every merge is order-preserving.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import get_context, shared_memory

import numpy as np

__all__ = [
    "BACKENDS",
    "DEFAULT_MIN_PARALLEL_WORK",
    "DEFAULT_UNITS_PER_WORKER",
    "ParallelExecutor",
    "SharedMatrix",
    "ThreadExecutor",
    "resolve_backend",
    "resolve_n_jobs",
]

BACKENDS = ("auto", "serial", "thread", "process")

# Serial fast-path cutover: calls with fewer than this many score-matrix
# entries (n rows x m functions) stay in-process, so small problems never
# pay pool dispatch (~1 ms/task) or result pickling.  This is the
# *default profile* value (one GEMM >~10 ms on the original sandbox);
# :func:`repro.engine.autotune.calibrate_engine` derives a per-machine
# cutover from measured GEMM throughput and pool-dispatch latency.
DEFAULT_MIN_PARALLEL_WORK = 1 << 23

# Default work units per worker and parallel call: more units than
# workers gives the pool slack to balance uneven chunks (tie-heavy
# columns fall back to scalar probes and can be 10x slower than clean
# ones).  Per-engine values come from the TuningProfile.
DEFAULT_UNITS_PER_WORKER = 4


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob: None/1 -> serial, -1 -> all cores.

    Any other non-positive value is rejected rather than guessed at.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def resolve_backend(backend: str | None) -> str:
    """Normalize a ``backend`` knob; None means ``"auto"``."""
    if backend is None:
        return "auto"
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def _chunk_bounds(
    total: int, n_jobs: int, align: int = 1, units_per_worker: int = DEFAULT_UNITS_PER_WORKER
) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` work-unit slices of ``total`` items.

    ``align`` forces boundaries onto multiples of the engine's serial
    GEMM chunk so ``score_batch`` work units replay the exact serial
    matmul calls (bit-identical raw scores).
    """
    units = min(total, n_jobs * max(1, units_per_worker))
    size = -(-total // units)  # ceil
    if align > 1:
        size = -(-size // align) * align
    return [(lo, min(total, lo + size)) for lo in range(0, total, size)]


def _default_context():
    """fork where available (cheap startup, Linux), else spawn.

    Overridable through ``REPRO_MP_CONTEXT`` (``fork`` | ``spawn`` |
    ``forkserver``) without touching call sites.
    """
    name = os.environ.get("REPRO_MP_CONTEXT")
    if name:
        return get_context(name)
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context("spawn")


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without touching the resource tracker.

    Attaching registers the segment with the tracker on CPython < 3.13
    (gh-82300), so workers would try to clean up — or, under fork, send
    spurious unregisters to the parent's tracker — for a segment the
    creating engine owns.  3.13+ has ``track=False``; earlier versions
    get the standard workaround of muting ``register`` for the call.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - CPython < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedMatrix:
    """One float64 matrix in a shared-memory segment.

    The parent :meth:`create`-s it (one copy, at pool construction);
    workers :meth:`attach` by name and wrap the buffer in a read-only,
    C-contiguous ndarray — exactly the layout :class:`ScoreEngine`
    accepts without copying.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, array: np.ndarray, owner: bool
    ) -> None:
        self._shm = shm
        self.array = array
        self._owner = owner

    @classmethod
    def create(cls, matrix: np.ndarray) -> "SharedMatrix":
        from repro.engine import faults

        faults.check("shm")  # injection point: segment allocation OSError
        shm = shared_memory.SharedMemory(create=True, size=matrix.nbytes)
        array = np.ndarray(matrix.shape, dtype=np.float64, buffer=shm.buf)
        array[:] = matrix
        array.flags.writeable = False
        return cls(shm, array, owner=True)

    @property
    def spec(self) -> tuple[str, tuple[int, ...]]:
        """Picklable handle: (segment name, matrix shape)."""
        return self._shm.name, self.array.shape

    @classmethod
    def attach(cls, spec: tuple[str, tuple[int, ...]]) -> "SharedMatrix":
        name, shape = spec
        shm = _attach_untracked(name)
        array = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
        array.flags.writeable = False
        return cls(shm, array, owner=False)

    def close(self) -> None:
        try:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
        except OSError:  # pragma: no cover - double close/unlink
            pass


# ----------------------------------------------------------------------
# Worker side.  One engine per worker process, built by the initializer
# and reused across every task the pool hands this worker — orderings
# and memo state are therefore constructed once per worker, never once
# per chunk.
_WORKER: dict = {}


def _init_worker(spec: tuple[str, tuple[int, ...]], config: dict) -> None:
    from repro.engine.score_engine import ScoreEngine

    shared = SharedMatrix.attach(spec)
    _WORKER["shared"] = shared
    _WORKER["engine"] = ScoreEngine(shared.array, **config)


def _dispatch(engine, kind: str, *args):
    """Run one work unit against a (serial) engine."""
    if kind == "topk":
        weights, k = args
        return engine.topk_order_batch(weights, k)
    if kind == "rank":
        weights, members = args
        return engine.rank_of_best_batch(weights, members)
    if kind == "score":
        (weights,) = args
        return engine.score_batch(weights)
    if kind == "topk_rows":
        weights, k, lo, hi = args
        return engine.topk_candidates_slice(weights, k, lo, hi)
    if kind == "rank_rows":
        weights, members, lo, hi = args
        return engine.rank_count_slice(weights, members, lo, hi)
    raise ValueError(f"unknown work-unit kind {kind!r}")  # pragma: no cover


def _garble(result):
    """Deterministically corrupt one work-unit payload (fault injection).

    Mimics what a torn pickle / partial read actually produces: a payload
    of the right general type but impossible shape, which the supervisor's
    structural validation must catch and retry rather than merge.
    """
    if isinstance(result, np.ndarray):
        return result[:-1] if result.shape[0] > 0 else result.astype(np.float16)
    if isinstance(result, tuple):
        return result[:-1]
    if isinstance(result, list):
        return result[:-1]
    return None  # pragma: no cover - no other payload kinds exist


def _apply_fault_pre(fault) -> None:
    """Honour a crash/hang token before running the work unit."""
    if fault is None:
        return
    if fault == "crash":
        # The injected analogue of an OOM kill / segfault inside BLAS:
        # the worker dies without unwinding, so the parent sees a broken
        # pool, never an exception from user code.
        os._exit(11)
    if isinstance(fault, tuple) and fault[0] == "hang":
        time.sleep(float(fault[1]))


def _run_task(kind: str, *args, _fault=None):
    _apply_fault_pre(_fault)
    result = _dispatch(_WORKER["engine"], kind, *args)
    if _fault == "corrupt":
        return _garble(result)
    return result


def _cleanup(pool: ProcessPoolExecutor, shared: SharedMatrix) -> None:
    pool.shutdown(wait=False, cancel_futures=True)
    shared.close()


class _ChunkDispatch:
    """Shared work-unit dispatch: split, submit, collect in order.

    Subclasses provide ``n_jobs``, ``tasks_dispatched`` and ``_submit``;
    everything else — the chunk math and the submission-order collection
    — is common, so the two executors cannot drift apart.
    """

    units_per_worker: int = DEFAULT_UNITS_PER_WORKER

    def function_chunk_bounds(self, m: int, align: int = 1) -> list[tuple[int, int]]:
        """Contiguous ``[lo, hi)`` slices of an m-function batch."""
        return _chunk_bounds(m, self.n_jobs, align, self.units_per_worker)

    def row_chunk_bounds(self, n: int) -> list[tuple[int, int]]:
        return _chunk_bounds(n, self.n_jobs, units_per_worker=self.units_per_worker)

    def run_function_chunks(self, kind: str, weights, args=(), align: int = 1):
        """Ship one work unit per weight slice; results in slice order."""
        bounds = self.function_chunk_bounds(weights.shape[0], align=align)
        futures = [
            self._submit(kind, weights[lo:hi], *args) for lo, hi in bounds
        ]
        self.tasks_dispatched += len(futures)
        return [future.result() for future in futures]

    def run_row_chunks(self, kind: str, weights, n: int, args=()):
        """Ship one work unit per data-row slice; results in slice order."""
        bounds = self.row_chunk_bounds(n)
        futures = [
            self._submit(kind, weights, *args, lo, hi) for lo, hi in bounds
        ]
        self.tasks_dispatched += len(futures)
        return [future.result() for future in futures]


class ParallelExecutor(_ChunkDispatch):
    """Persistent worker pool + shared matrix for one engine.

    Owns no scoring semantics: the parent engine decides how a call is
    split and how partials merge; this class only ships work units and
    returns their results in submission order.
    """

    def __init__(
        self,
        values: np.ndarray,
        config: dict,
        n_jobs: int,
        mp_context: str | None = None,
        units_per_worker: int = DEFAULT_UNITS_PER_WORKER,
    ) -> None:
        self.n_jobs = int(n_jobs)
        self.units_per_worker = int(units_per_worker)
        self._shared = SharedMatrix.create(values)
        context = get_context(mp_context) if mp_context else _default_context()
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_jobs,
            mp_context=context,
            initializer=_init_worker,
            initargs=(self._shared.spec, config),
        )
        self.tasks_dispatched = 0
        self._finalizer = weakref.finalize(self, _cleanup, self._pool, self._shared)

    # ------------------------------------------------------------------
    def _submit(self, kind: str, *args, fault=None):
        return self._pool.submit(_run_task, kind, *args, _fault=fault)

    def workers_alive(self) -> bool:
        """Dead-PID probe: False when any spawned worker process died.

        A worker can die *between* calls (an OOM kill while idle) without
        the pool noticing until the next submit deadlocks or breaks; the
        supervision layer probes this before reusing a persistent pool
        and rebuilds proactively instead.
        """
        procs = getattr(self._pool, "_processes", None)
        if not procs:
            return True  # pool not started yet: nothing can be dead
        return all(proc.is_alive() for proc in list(procs.values()))

    def terminate(self) -> None:
        """Reap the pool: force-kill workers, then unlink the segment.

        The recovery path for hung or crashed pools — ``shutdown`` alone
        would block behind (or leak) a worker stuck in a syscall.  Safe
        on healthy and broken pools alike, and idempotent with
        :meth:`close` (the finalizer runs once).
        """
        procs = getattr(self._pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except (OSError, ValueError):  # pragma: no cover - already dead
                pass
        self._finalizer()

    def close(self) -> None:
        """Shut the pool down and release the shared segment."""
        self._finalizer()


class ThreadExecutor(_ChunkDispatch):
    """In-process thread pool over serial clones of one engine.

    Same work-unit protocol as :class:`ParallelExecutor`, none of its
    costs: no process spawn, no shared-memory segment, no pickling — a
    work unit crosses a queue as a tuple of references.  Each pool
    thread lazily builds one serial clone of the parent engine
    (:meth:`ScoreEngine._thread_clone`) sharing the matrix, orderings
    and quantized stores by reference and owning its mutable small
    state, so concurrent units never write to shared objects.  The
    parent's orderings are completed eagerly up front — clones only ever
    read them.

    The GIL note: the tiers are built from GEMMs, selections and big
    ufunc sweeps, all of which release the GIL; only the scalar
    verification tier holds it.  The engine's ``"auto"`` policy watches
    exactly that ratio and escalates to the process pool when threads
    would serialize.
    """

    # Eager attribute-ordering build cap: clones never extend the shared
    # orderings list (racy), so for matrices whose per-attribute copies
    # stay modest the executor completes them up front; larger matrices
    # keep norm-only routing until the parent's own serial calls justify
    # the build adaptively.
    _EAGER_ORDERINGS_BYTES = 1 << 26

    def __init__(
        self, engine, n_jobs: int, units_per_worker: int = DEFAULT_UNITS_PER_WORKER
    ) -> None:
        self.n_jobs = int(n_jobs)
        self.units_per_worker = int(units_per_worker)
        engine._ensure_orderings()
        if (
            not engine._attr_orderings_built
            and engine.n * engine.d * (engine.d + 1) * 8 <= self._EAGER_ORDERINGS_BYTES
        ):
            engine._build_attribute_orderings()
        self._engine = engine
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_jobs, thread_name_prefix="repro-engine"
        )
        self.tasks_dispatched = 0

    def _run(self, kind: str, *args, _fault=None):
        if _fault is not None:
            # Thread workers cannot be killed, so the crash token raises
            # the typed error the supervisor maps a dead worker to; hang
            # and corrupt behave exactly like the process shim.
            if _fault == "crash":
                from repro.exceptions import WorkerCrashError

                raise WorkerCrashError("injected worker crash (thread backend)")
            if isinstance(_fault, tuple) and _fault[0] == "hang":
                time.sleep(float(_fault[1]))
        clone = getattr(self._local, "engine", None)
        if clone is None:
            clone = self._engine._thread_clone()
            self._local.engine = clone
        before = dict(clone.stats)
        rank_columns = clone._rank_float_columns
        rank_fallbacks = clone._rank_float_fallbacks
        try:
            result = _dispatch(clone, kind, *args)
            return _garble(result) if _fault == "corrupt" else result
        finally:
            # Fold the work-unit's counter deltas back into the parent so
            # measured-work policies — the auto thread→process escalation
            # and the adaptive rank-quant engagement — keep seeing
            # fanned-out calls, not just serial ones.
            parent = self._engine
            with self._stats_lock:
                for key, value in clone.stats.items():
                    parent.stats[key] += value - before[key]
                parent._rank_float_columns += clone._rank_float_columns - rank_columns
                parent._rank_float_fallbacks += clone._rank_float_fallbacks - rank_fallbacks

    def _submit(self, kind: str, *args, fault=None):
        return self._pool.submit(self._run, kind, *args, _fault=fault)

    def close(self) -> None:
        """Shut the thread pool down (clones die with their threads)."""
        self._pool.shutdown(wait=False, cancel_futures=True)
