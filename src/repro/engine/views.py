"""Materialized representative views: maintained under churn, bit-identical.

PR 5's delta journal made the *engine* incremental — inserts and deletes
repair the orderings and quantized stores instead of rebuilding them —
but every consumer (``mdrc``, ``sample_ksets``/``md_rrr``, the
Monte-Carlo rank-regret estimator) still recomputed its representative
from scratch after each revision.  This module closes that gap with
classic incremental view maintenance, the regime of dynamic query
answering under updates (Berkholz et al.): cache the consumer's
intermediate state, subscribe to the engine's delta journal, and on each
effective compaction re-validate **only** the cells / draws / candidates
whose score bounds the mutation can actually touch.

Every view upholds the repo-wide contract: its refreshed result is
**bit-identical to a from-scratch recompute** over the engine's current
matrix.  The argument has three legs, shared by all views:

* **Per-row score stability.**  A row's score ``w · x`` is a reduction
  over ``d`` only — independent of how many other rows the matrix holds —
  so a surviving row scores bit-for-bit the same before and after a
  compaction.  (The delta journal itself already leans on this: it keeps
  survivor norms verbatim and the test suite asserts they equal a fresh
  ``argsort``.)
* **Monotone renumbering.**  Compaction renumbers survivors with an
  order-preserving ``idmap`` and appends inserted rows at the end, so
  the index tie-breaks inside any cached top-k order are preserved under
  remapping, and an inserted row can enter a top-k only by scoring
  *strictly* above the cached k-th score (on an exact tie the incumbent's
  lower index wins).
* **Banded screening.**  Whether a mutation can touch a cached result is
  decided conservatively: any comparison within the engine's ulp noise
  band (``_TIE_BAND_ULPS`` scaled by ``‖w‖ · max‖x‖``, the same bound the
  engine's own pruning paths use) counts as *touched*.  Outside the band
  the comparison outcome provably agrees with the engine's exact float64
  arithmetic; inside it, the cached entry is invalidated and repaired
  through the real algorithm — never patched.

Repair then re-executes the *real* decision logic over the surviving
cache: :class:`MDRCView` maintains the recorded MDRC decision tree in a
:class:`~repro.core.mdrc.CornerCache` — repairing the corner memo,
re-deciding only cells that reference a corner whose top-k actually
changed, and growing/pruning subtrees locally (only invalidated or newly
split corners cost a GEMM) — :class:`KSetView` re-runs
:func:`repro.geometry.ksets.sample_ksets` against its
:class:`~repro.geometry.ksets.KSetDrawState` (cached draws replay from
the recorded RNG stream, stale draws are re-resolved lazily, new draws
extend the stream exactly where a fresh run would), and
:class:`RankRegretView` patches its per-function rank counts by exact
±counting of the mutated rows, recomputing only the functions whose
threshold the mutation grazed.  Because the replay *is* the fresh
algorithm, bit-identity holds by construction — there is no second
implementation to drift.

Views are event-driven: the engine invokes :meth:`MaterializedView._apply`
synchronously at the end of every effective compaction (cheap, array-level
invalidation only); the expensive re-evaluation is deferred to
:meth:`MaterializedView.refresh`, which first settles any pending journal
so no mutation is ever missed.

Usage::

    engine = ScoreEngine(values)
    view = MDRCView(engine, k=10)
    reps = view.refresh().indices      # full compute, cache primed
    engine.delete_rows([3, 17])
    engine.insert_rows(new_rows)
    reps = view.refresh().indices      # repairs only what the churn touched

Threading follows the engine's rule: calls on one engine (and its views)
are not synchronized against each other; a service mutating while
serving must serialize externally.
"""

from __future__ import annotations

import numpy as np

from repro.engine.score_engine import (
    _TIE_BAND_ULPS,
    ScoreEngine,
    robust_row_norms,
)
from repro.exceptions import ValidationError
from repro.ranking.functions import weights_from_angles_batch
from repro.ranking.sampling import sample_functions

__all__ = [
    "MaterializedView",
    "MDRCView",
    "KSetView",
    "MDRRRView",
    "RankRegretView",
]


def _screen_band(weights: np.ndarray, max_row_norm: float) -> np.ndarray:
    """Per-function width of the provably-sufficient invalidation band.

    Floating-point dot-product error scales with ``‖w‖ · max‖x‖`` (not
    with the resulting score, which cancellation can shrink), so a
    comparison between two independently computed scores is trustworthy
    only outside a band of that scale.  The ``4×`` margin matches the
    engine's own pruning-threshold discipline: the view's screening GEMM
    and the engine's scoring GEMM may each be off by the single-band
    bound, in either direction.
    """
    eps = float(np.finfo(np.float64).eps)
    return 4.0 * _TIE_BAND_ULPS * eps * np.linalg.norm(weights, axis=1) * max_row_norm


def _event_row_norm(engine: ScoreEngine, event) -> float:
    """Max row norm over every row an event's screening can score.

    Covers the post-event matrix (inserted rows included) *and* the
    deleted rows, whose data exists only in the event payload but whose
    scores the rank-patching views still compare against cached bounds.
    """
    norm = float(engine._noise_scale(np.ones((1, 1)))[0])  # ‖w‖=1 → max‖x‖
    if event.deleted_rows.size:
        norm = max(norm, float(robust_row_norms(event.deleted_rows).max()))
    return norm


def _screen_topk_orders(
    orders: np.ndarray,
    weights: np.ndarray,
    valid: np.ndarray,
    event,
    engine: ScoreEngine,
) -> np.ndarray:
    """Invalidate cached top-k orders a committed mutation can touch.

    ``orders`` is an ``(m, k)`` array of cached top-k index rows in the
    event's *old* id space, ``weights`` the matching ``(m, d)`` functions,
    and ``valid`` the rows that are currently trustworthy (rows already
    stale from an earlier, unrepaired event are left alone).  Returns the
    boolean mask of rows invalidated by *this* event; every surviving
    valid row's order is remapped **in place** to the new id space.

    Sufficiency of the affected-set bound:

    * a cached order is certainly stale when any of its members was
      deleted (the member's slot must be re-filled);
    * deleting rows *outside* a top-k cannot change it — the survivors'
      scores are bit-identical and their relative index order (hence
      every tie-break) is preserved by the monotone ``idmap``;
    * an inserted row changes a top-k only by scoring strictly above its
      k-th score; any insert within the noise band of the k-th score
      conservatively invalidates the row.
    """
    stale = np.zeros(orders.shape[0], dtype=bool)
    if event.deleted_ids.size:
        hit = np.isin(orders, event.deleted_ids).any(axis=1)
        stale |= hit & valid
    fresh = valid & ~stale
    rows = np.flatnonzero(fresh)
    if rows.size:
        # Remap the surviving orders first: the k-th members' data lives
        # at the *new* ids in the post-event matrix.
        orders[rows] = event.idmap[orders[rows]]
        if event.inserted_rows.size:
            w = weights[rows]
            kth = np.einsum("ij,ij->i", w, engine.values[orders[rows, -1]])
            best_new = (w @ event.inserted_rows.T).max(axis=1)
            tol = _screen_band(w, _event_row_norm(engine, event))
            stale[rows[best_new >= kth - tol]] = True
    return stale


class MaterializedView:
    """Base class: delta subscription, deferred refresh, lifecycle.

    Subclasses implement :meth:`_apply` (cheap, synchronous cache
    invalidation/remapping — called from inside the engine's compaction,
    when the engine is fully settled) and :meth:`_compute` (the expensive
    re-evaluation, which replays the real algorithm against the repaired
    cache).  ``stats`` counts events, refreshes and recomputations so
    benches and tests can assert the maintenance actually short-circuits.
    """

    def __init__(self, engine: ScoreEngine) -> None:
        self._engine = engine
        self._result = None
        self._closed = False
        self.stats: dict[str, int] = {
            "events": 0,
            "refreshes": 0,
            "computes": 0,
        }
        self._callback = engine.subscribe_delta(self._on_event)

    # -- subclass hooks -------------------------------------------------
    def _apply(self, event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _compute(self):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------
    def _on_event(self, event) -> None:
        self.stats["events"] += 1
        self._result = None
        self._apply(event)

    def refresh(self):
        """The view's result for the engine's *current* matrix.

        Settles any pending journal first (which fires :meth:`_apply`
        for the outstanding mutations), then recomputes over the
        repaired cache only if a mutation actually landed since the last
        refresh — otherwise the cached result is returned verbatim.
        """
        if self._closed:
            raise ValidationError("view is closed")
        self._engine.compact()
        self.stats["refreshes"] += 1
        if self._result is None:
            self._result = self._compute()
            self.stats["computes"] += 1
        return self._result

    def close(self) -> None:
        """Unsubscribe from the engine; the view becomes inert."""
        if not self._closed:
            self._engine.unsubscribe_delta(self._callback)
            self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MDRCView(MaterializedView):
    """Maintained MDRC representative (Algorithm 5 under churn).

    Caches the full intermediate state of the MDRC recursion in a
    :class:`~repro.core.mdrc.CornerCache`: the corner top-k memo *and*
    the per-level decision tree (which cells resolved to which item,
    which split, which fell back).  On each delta event the view
    maintains that tree in place:

    1. **Corner repair.**  Every cached corner is screened (delete-hit
       membership + banded insert screening, the same provably
       sufficient bounds as :func:`_screen_topk_orders`); survivors are
       kept verbatim with remapped ids, stale corners are re-evaluated
       through the engine in one batch, and only corners whose top-k
       order *actually changed* are marked for propagation.
    2. **Cell re-decision.**  Only cells referencing a changed corner
       re-run the resolve/split/fallback decision — every untouched
       cell is kept verbatim.  A cell's decision is a pure function of
       its corner top-k sets, so an unchanged-corner cell provably
       decides identically in a fresh run.
    3. **Local structure repair.**  A cell that flips resolved→split
       grows a fresh subtree (corner evaluations go through the same
       byte-keyed memo a fresh run would hit); a split→resolved flip
       prunes its subtree.  Deletes hitting a representative therefore
       trigger exactly this local repair.  If the maintained tree could
       engage :func:`~repro.core.mdrc.mdrc`'s global ``max_cells``
       budget path — whose sequential decisions are order-dependent —
       the view bails out and recomputes from scratch (the corner memo
       stays warm).

    The decision logic (exact set intersection of corner top-k sets,
    ``"first"``/``"best-rank"`` item choice, center + corner top-1
    fallback contributions) mirrors the recursion's definitions, and the
    result is asserted bit-identical to a fresh :func:`~repro.core.mdrc.mdrc`
    by the view test-suite and the perf gate on every revision.
    ``MDRCResult.indices``, ``cells``, ``max_depth_reached`` and
    ``capped_cells`` all match a from-scratch run; ``corner_evaluations``
    reports the maintenance work actually done instead.
    """

    def __init__(
        self,
        engine: ScoreEngine,
        k: int,
        max_depth: int = 48,
        max_cells: int = 10_000,
        choice: str = "first",
    ) -> None:
        from repro.core.mdrc import CornerCache

        super().__init__(engine)
        self.k = int(k)
        self.max_depth = max_depth
        self.max_cells = max_cells
        self.choice = choice
        self._cache = CornerCache()
        self.stats.update(
            corners_kept=0,
            corners_dropped=0,
            corner_evaluations=0,
            cells_kept=0,
            cells_redecided=0,
            cells_grown=0,
            maintains=0,
            bails=0,
        )

    # -- event handling -------------------------------------------------
    def _apply(self, event) -> None:
        cache = self._cache
        if cache.levels is None or cache.count == 0:
            # No tree to maintain (cold, budget-path run, or an earlier
            # bail already spent this event's repair).  The corner memo
            # is tied to the pre-event matrix and id space; without the
            # tree there is nothing to repair it against — drop it.
            if cache.count:
                cache.reset(event.new_n, self.k, self._engine.d,
                            (self.max_depth, self.max_cells, self.choice))
            return
        if (
            cache.n != event.old_n
            or cache.k != self.k
            or event.new_n < cache.k_eval
        ):
            # The cache predates an epoch this view never saw (external
            # cache surgery), or the matrix shrank below the repair
            # buffer's width — drop it.
            cache.reset(event.new_n, self.k, self._engine.d,
                        (self.max_depth, self.max_cells, self.choice))
            return
        if self._maintain(event):
            self.stats["maintains"] += 1
            cache.prune()
            self._result = self._result_from_tree()
        else:
            # Bail-out: the corner memo is already repaired for the new
            # matrix, so the fallback recompute replays it warm.
            self.stats["bails"] += 1
            cache.levels = None

    def _compute(self):
        from repro.core.mdrc import mdrc

        result = mdrc(
            self._engine.values,
            self.k,
            max_depth=self.max_depth,
            max_cells=self.max_cells,
            choice=self.choice,
            engine=self._engine,
            corner_cache=self._cache,
        )
        self.stats["corner_evaluations"] += result.corner_evaluations
        # Prune to the corners the recorded tree references: cells that
        # resolved coarser than last revision leave orphans behind.
        self._cache.prune()
        return result

    # -- incremental maintenance ----------------------------------------
    def _maintain(self, event) -> bool:
        """Repair corners, re-decide touched cells, grow/prune subtrees.

        Returns ``False`` (leaving the corner memo repaired but the tree
        dropped) when the maintained tree cannot be proven equivalent to
        a fresh run — i.e. when any level's projected leaf count could
        engage the budget path.
        """
        import itertools

        from repro.core.mdrc import (
            CELL_FALLBACK,
            CELL_RESOLVED,
            CELL_SPLIT,
            CellLevel,
        )

        engine = self._engine
        cache = self._cache
        k = self.k
        d = engine.d
        corners_per_cell = 1 << (d - 1)

        # ---- Phase 1: corner repair (always commits). -----------------
        # Each cached corner holds an exact top-``lengths[c]`` prefix of
        # width-``k_eval`` buffer rows.  Deletions compact the prefix in
        # place (survivors below the old k_eval-th bound stay below it,
        # so the compacted row is an exact shorter prefix); insertions
        # are placed by banded comparison against the buffered members'
        # scores.  The full matrix is touched only for corners whose
        # buffer runs below k members or whose comparisons land inside
        # the noise band — everything else repairs with corner-count
        # work, no n-scale GEMM.
        count = cache.count
        K = cache.k_eval
        orders = cache.orders  # mutable views into the cache buffers
        lengths = cache.lengths
        weights = weights_from_angles_batch(np.ascontiguousarray(cache.angles))
        cols = np.arange(K)[None, :]
        changed = np.zeros(count, dtype=bool)
        reeval = lengths < k

        if event.deleted_ids.size:
            valid = cols < lengths[:, None]
            dhit = np.isin(orders, event.deleted_ids) & valid
            nhits = dhit.sum(axis=1)
            rows = np.flatnonzero(nhits)
            if rows.size:
                # A deleted member inside the first k columns changes the
                # top-k set even though a reserve member refills the slot.
                changed[rows] = dhit[rows, :k].any(axis=1)
                # Stable sort on the hit mask compacts survivors to the
                # front in cached (engine) order.
                perm = np.argsort(dhit[rows], axis=1, kind="stable")
                orders[rows] = np.take_along_axis(orders[rows], perm, axis=1)
                lengths[rows] = lengths[rows] - nhits[rows]
                reeval |= lengths < k
        # Remap the surviving prefixes into the new id space.  Slots past
        # a row's length hold stale ids from older epochs — never index
        # idmap with them.
        valid = cols < lengths[:, None]
        orders[valid] = event.idmap[orders[valid]]

        inserted = event.inserted_rows.shape[0]
        if inserted:
            tol = _screen_band(weights, _event_row_norm(engine, event))
            live = np.flatnonzero(~reeval & (lengths > 0))
            last_member = orders[live, lengths[live] - 1]
            boundary = np.einsum(
                "ij,ij->i", weights[live], engine.values[last_member]
            )
            C_CAP = min(8, inserted)
            X = np.ascontiguousarray(event.inserted_rows.T)
            # One chunked GEMM + one comparison pass finds the "hot"
            # corners — those where some insert reaches the buffer
            # boundary's band.  Almost every corner is cold at 1% churn,
            # so the expensive band/placement analysis below runs on a
            # tiny subset instead of materializing (count × inserted)
            # gap/band temporaries.
            aff_parts: list[np.ndarray] = []
            pos_parts: list[np.ndarray] = []
            score_parts: list[np.ndarray] = []
            ncand_parts: list[np.ndarray] = []
            chunk = max(1, (1 << 21) // max(1, inserted))
            for lo in range(0, live.size, chunk):
                rows = live[lo : lo + chunk]
                S = weights[rows] @ X  # (chunk, inserted)
                b_rows = boundary[lo : lo + chunk]
                t_rows = tol[rows]
                hot = S >= (b_rows - t_rows)[:, None]
                sub = np.flatnonzero(hot.any(axis=1))
                if not sub.size:
                    continue
                S_sub = S[sub]
                b_sub = b_rows[sub][:, None]
                t_sub = t_rows[sub][:, None]
                # Inside the band of the buffer's boundary the placement
                # is ambiguous — fall back to a real evaluation.
                enter = S_sub > b_sub + t_sub
                near = (hot[sub] & ~enter).any(axis=1)
                ncand = enter.sum(axis=1)
                ok = ~near & (ncand <= C_CAP)
                reeval[rows[sub[~ok]]] = True
                keep = np.flatnonzero(ok & (ncand > 0))
                if not keep.size:
                    continue
                aff_parts.append(rows[sub[keep]])
                # First-ncand candidate columns per row, in ascending
                # insert index (= ascending new id) order.
                pos_parts.append(
                    np.argsort(~enter[keep], axis=1, kind="stable")[:, :C_CAP]
                )
                score_parts.append(S_sub[keep])
                ncand_parts.append(ncand[keep])
            sel = sum(part.size for part in aff_parts)
            if sel:
                aff = np.concatenate(aff_parts)  # corners with placeable inserts
                L_aff = lengths[aff]
                cand_pos = np.concatenate(pos_parts)
                n_cand = np.concatenate(ncand_parts)
                cand_ok = np.arange(C_CAP)[None, :] < n_cand[:, None]
                cand_scores = np.take_along_axis(
                    np.concatenate(score_parts), cand_pos, axis=1
                )
                kept = int(event.new_n) - inserted
                cand_ids = kept + cand_pos
                member_ok = cols < L_aff[:, None]
                member_ids = np.where(member_ok, orders[aff], 0)
                member_scores = np.where(
                    member_ok,
                    np.einsum("acd,ad->ac", engine.values[member_ids], weights[aff]),
                    -np.inf,
                )
                tol_aff = tol[aff][:, None, None]
                # Any candidate within the band of any member (or of
                # another candidate) makes its relative order unprovable.
                pair_mc = cand_ok[:, :, None] & member_ok[:, None, :]
                ambiguous = (
                    (np.abs(member_scores[:, None, :] - cand_scores[:, :, None])
                     <= tol_aff)
                    & pair_mc
                ).any(axis=(1, 2))
                pair_cc = (
                    cand_ok[:, :, None]
                    & cand_ok[:, None, :]
                    & ~np.eye(C_CAP, dtype=bool)[None]
                )
                ambiguous |= (
                    (np.abs(cand_scores[:, :, None] - cand_scores[:, None, :])
                     <= tol_aff)
                    & pair_cc
                ).any(axis=(1, 2))
                if ambiguous.any():
                    reeval[aff[ambiguous]] = True
                    keep_rows = ~ambiguous
                    aff = aff[keep_rows]
                    L_aff = L_aff[keep_rows]
                    cand_pos = cand_pos[keep_rows]
                    n_cand = n_cand[keep_rows]
                    cand_ok = cand_ok[keep_rows]
                    cand_scores = cand_scores[keep_rows]
                    cand_ids = cand_ids[keep_rows]
                    member_ok = member_ok[keep_rows]
                    member_scores = member_scores[keep_rows]
                if aff.size:
                    # A candidate's slot is the number of members scoring
                    # above it (outside the band, this provably matches
                    # the engine's exact order; an exact tie would have
                    # bailed above, so "incumbent wins" is preserved).
                    slot = (
                        (member_scores[:, None, :] > cand_scores[:, :, None])
                        & member_ok[:, None, :]
                    ).sum(axis=2)
                    changed[aff] |= ((slot < k) & cand_ok).any(axis=1)
                    # Candidates in one row are ordered by (score desc,
                    # id asc); columns are already id-ascending, so a
                    # stable sort on -score finishes the job.
                    by_score = np.argsort(
                        np.where(cand_ok, -cand_scores, np.inf),
                        axis=1,
                        kind="stable",
                    )
                    rank = np.empty_like(by_score)
                    np.put_along_axis(
                        rank,
                        by_score,
                        np.broadcast_to(
                            np.arange(C_CAP)[None, :], by_score.shape
                        ).copy(),
                        axis=1,
                    )
                    # Merge by a composite key: members keep their slot
                    # order, each candidate lands just before the member
                    # it displaces, candidates at one slot follow their
                    # rank.  Invalid entries sort last.
                    minor_width = C_CAP + 2
                    key_members = np.where(member_ok, cols, K + 1) * minor_width + (
                        C_CAP + 1
                    )
                    key_cands = np.where(cand_ok, slot, K + 1) * minor_width + rank
                    keys = np.concatenate([key_members, key_cands], axis=1)
                    pool = np.concatenate(
                        [np.where(member_ok, orders[aff], -1),
                         np.where(cand_ok, cand_ids, -1)],
                        axis=1,
                    )
                    merge = np.argsort(keys, axis=1, kind="stable")
                    orders[aff] = np.take_along_axis(pool, merge, axis=1)[:, :K]
                    lengths[aff] = np.minimum(K, L_aff + n_cand)
                    self.stats["corners_merged"] = (
                        self.stats.get("corners_merged", 0) + int(aff.size)
                    )

        idx = np.flatnonzero(reeval)
        if idx.size:
            fresh = engine.topk_orders(np.ascontiguousarray(weights[idx]), K)
            orders[idx] = fresh
            lengths[idx] = K
            changed[idx] = True  # conservative; re-evaluations are rare
        cache.n = int(event.new_n)
        self.stats["corners_dropped"] += int(idx.size)
        self.stats["corners_kept"] += int(count - idx.size)
        self.stats["corner_evaluations"] += int(idx.size)

        # ---- Phases 2+3: level-by-level cell propagation. -------------
        patterns = np.array(
            list(itertools.product((False, True), repeat=d - 1)), dtype=bool
        )
        levels = cache.levels
        new_levels: list[CellLevel] = []
        alive = np.ones(levels[0].state.shape[0], dtype=bool)
        seeds_lo = np.empty((0, d - 1), dtype=np.float64)
        seeds_hi = np.empty((0, d - 1), dtype=np.float64)
        depth = 0
        while True:
            cached = levels[depth] if depth < len(levels) else None
            apos = (
                np.flatnonzero(alive) if cached is not None else np.empty(0, dtype=np.intp)
            )
            grown = seeds_lo.shape[0]
            if apos.size == 0 and grown == 0:
                break

            # a) surviving cached cells: re-decide only the touched ones.
            state_a = cached.state[apos].copy() if apos.size else np.empty(0, np.int8)
            item_a = cached.item[apos].copy() if apos.size else np.empty(0, np.int64)
            old_state_a = state_a.copy()
            if apos.size:
                touched = changed[cached.corners[apos]].any(axis=1)
                redo = np.flatnonzero(touched)
                # An untouched resolved cell keeps its item verbatim — but
                # the item is a row id and must follow the renumbering.
                # (It cannot have been deleted: deletion would have hit
                # the cell's corners, making the cell touched.)
                keep_resolved = ~touched & (state_a == CELL_RESOLVED)
                item_a[keep_resolved] = event.idmap[item_a[keep_resolved]]
                self.stats["cells_kept"] += int(apos.size - redo.size)
                self.stats["cells_redecided"] += int(redo.size)
                if redo.size:
                    has_common, items = self._decide(cached.corners[apos[redo]])
                    state_a[redo] = np.where(
                        has_common,
                        CELL_RESOLVED,
                        CELL_SPLIT if depth < self.max_depth else CELL_FALLBACK,
                    ).astype(np.int8)
                    item_a[redo] = items
                item_a[state_a != CELL_RESOLVED] = -1

            # b) grown cells: evaluate corners through the memo, decide.
            if grown:
                corner_rows = np.where(
                    patterns[None, :, :], seeds_hi[:, None, :], seeds_lo[:, None, :]
                )
                corner_rows = np.ascontiguousarray(
                    corner_rows.reshape(grown * corners_per_cell, d - 1)
                )
                ids_b = self._eval_corners(corner_rows).reshape(grown, corners_per_cell)
                has_common_b, item_b = self._decide(ids_b)
                state_b = np.where(
                    has_common_b,
                    CELL_RESOLVED,
                    CELL_SPLIT if depth < self.max_depth else CELL_FALLBACK,
                ).astype(np.int8)
                item_b[state_b != CELL_RESOLVED] = -1
                self.stats["cells_grown"] += grown
            else:
                ids_b = np.empty((0, corners_per_cell), dtype=np.intp)
                state_b = np.empty(0, dtype=np.int8)
                item_b = np.empty(0, dtype=np.int64)

            # c) next level's surviving cached cells: the cached children
            # of cells that were split and stayed split.
            next_cached = levels[depth + 1] if depth + 1 < len(levels) else None
            next_count = next_cached.state.shape[0] if next_cached is not None else 0
            alive_next = np.zeros(next_count, dtype=bool)
            keep_split = (
                apos[(old_state_a == CELL_SPLIT) & (state_a == CELL_SPLIT)]
                if apos.size
                else np.empty(0, dtype=np.intp)
            )
            if keep_split.size:
                base = cached.children[keep_split]
                alive_next[base] = True
                alive_next[base + 1] = True
            next_remap = np.cumsum(alive_next) - 1
            surviving_next = int(alive_next.sum())

            # d) children pointers + seeds for the next level.  Newly
            # split cells (cached flips first, grown splits second) get
            # children appended after the surviving cached cells, in
            # exactly the order their seeds are queued.
            children_a = np.full(apos.size, -1, dtype=np.int64)
            if keep_split.size:
                children_a[
                    (old_state_a == CELL_SPLIT) & (state_a == CELL_SPLIT)
                ] = next_remap[cached.children[keep_split]]
            flip_mask = (state_a == CELL_SPLIT) & (old_state_a != CELL_SPLIT)
            split_b = state_b == CELL_SPLIT
            n_new_split = int(flip_mask.sum()) + int(split_b.sum())
            children_b = np.full(grown, -1, dtype=np.int64)
            if n_new_split:
                ranks = surviving_next + 2 * np.arange(n_new_split)
                children_a[flip_mask] = ranks[: int(flip_mask.sum())]
                children_b[split_b] = ranks[int(flip_mask.sum()) :]
                parents_lo = np.concatenate(
                    [
                        cached.los[apos[flip_mask]] if apos.size else seeds_lo[:0],
                        seeds_lo[split_b],
                    ]
                )
                parents_hi = np.concatenate(
                    [
                        cached.his[apos[flip_mask]] if apos.size else seeds_hi[:0],
                        seeds_hi[split_b],
                    ]
                )
                axis = depth % (d - 1)
                mids = (parents_lo[:, axis] + parents_hi[:, axis]) / 2.0
                next_lo = np.repeat(parents_lo, 2, axis=0)
                next_hi = np.repeat(parents_hi, 2, axis=0)
                next_hi[0::2, axis] = mids  # left child: [lo, mid]
                next_lo[1::2, axis] = mids  # right child: [mid, hi]
            else:
                next_lo = np.empty((0, d - 1), dtype=np.float64)
                next_hi = np.empty((0, d - 1), dtype=np.float64)

            # e) fallback centers: remap + screen survivors, evaluate
            # the stale and the newly fallen-back in one batch.
            center_a = np.full(apos.size, -1, dtype=np.int64)
            center_b = np.full(grown, -1, dtype=np.int64)
            los_level = np.concatenate(
                [cached.los[apos] if apos.size else seeds_lo[:0], seeds_lo]
            )
            his_level = np.concatenate(
                [cached.his[apos] if apos.size else seeds_hi[:0], seeds_hi]
            )
            center_level = np.concatenate([center_a, center_b])
            state_level = np.concatenate([state_a, state_b])
            fallback = np.flatnonzero(state_level == CELL_FALLBACK)
            if fallback.size:
                need = np.ones(fallback.size, dtype=bool)
                in_a = fallback[fallback < apos.size]
                surviving_fb = (
                    in_a[old_state_a[in_a] == CELL_FALLBACK]
                    if in_a.size
                    else np.empty(0, dtype=np.intp)
                )
                if surviving_fb.size:
                    kept_item = cached.center_item[apos[surviving_fb]].copy()
                    chit = (
                        np.isin(kept_item, event.deleted_ids)
                        if event.deleted_ids.size
                        else np.zeros(kept_item.size, dtype=bool)
                    )
                    kept_item[~chit] = event.idmap[kept_item[~chit]]
                    centers = (los_level[surviving_fb] + his_level[surviving_fb]) / 2.0
                    wc = weights_from_angles_batch(centers)
                    fb_stale = chit.copy()
                    live = np.flatnonzero(~chit)
                    if event.inserted_rows.size and live.size:
                        wl = wc[live]
                        top = np.einsum(
                            "ij,ij->i", wl, engine.values[kept_item[live]]
                        )
                        best_new = (wl @ event.inserted_rows.T).max(axis=1)
                        tol = _screen_band(wl, _event_row_norm(engine, event))
                        fb_stale[live[best_new >= top - tol]] = True
                    center_level[surviving_fb] = kept_item
                    fb_pos = np.searchsorted(fallback, surviving_fb)
                    need[fb_pos] = fb_stale
                evaluate = fallback[need]
                if evaluate.size:
                    centers = (los_level[evaluate] + his_level[evaluate]) / 2.0
                    top1 = engine.topk_orders(weights_from_angles_batch(centers), 1)
                    center_level[evaluate] = top1[:, 0]
                    self.stats["corner_evaluations"] += int(evaluate.size)

            new_levels.append(
                CellLevel(
                    los=los_level,
                    his=his_level,
                    corners=np.concatenate(
                        [
                            cached.corners[apos]
                            if apos.size
                            else np.empty((0, corners_per_cell), dtype=np.intp),
                            ids_b,
                        ]
                    ),
                    state=state_level,
                    item=np.concatenate([item_a, item_b]),
                    center_item=center_level,
                    children=np.concatenate([children_a, children_b]),
                )
            )
            alive = alive_next
            seeds_lo, seeds_hi = next_lo, next_hi
            depth += 1

        # ---- Phase 4: prove the budget path stays dormant. ------------
        # A fresh run takes the order-independent vectorized path at a
        # level only while its projected worst-case leaf count stays
        # within max_cells; mirror that check exactly on the maintained
        # tree and bail if any level could engage the sequential path.
        cells_before = 0
        for level in new_levels:
            num = level.state.shape[0]
            resolved = int((level.state == CELL_RESOLVED).sum())
            fallen = int((level.state == CELL_FALLBACK).sum())
            if cells_before + resolved + 2 * (num - resolved) > self.max_cells:
                return False
            cells_before += resolved + fallen
        cache.levels = new_levels
        return True

    def _eval_corners(self, corner_rows: np.ndarray) -> np.ndarray:
        """Dense corner ids for angle rows, via the cache's byte-keyed memo.

        Mirrors the registry discipline of :func:`~repro.core.mdrc.mdrc`
        phase A: vectorized within-batch dedup, then one ``setdefault``
        per unique corner; misses are evaluated through the engine in a
        single batch and appended to the cache.
        """
        cache = self._cache
        registry = cache.registry
        d1 = corner_rows.shape[1]
        void_keys = corner_rows.view(
            np.dtype((np.void, corner_rows.dtype.itemsize * d1))
        ).ravel()
        uniq_keys, first_rows, inverse = np.unique(
            void_keys, return_index=True, return_inverse=True
        )
        uniq_ids = np.empty(len(uniq_keys), dtype=np.intp)
        next_id = cache.count
        pending: list[int] = []
        buffer = uniq_keys.tobytes()
        key_size = uniq_keys.dtype.itemsize
        for u in range(len(uniq_keys)):
            gid = registry.setdefault(
                buffer[u * key_size : (u + 1) * key_size], next_id
            )
            if gid == next_id:
                next_id += 1
                pending.append(u)
            uniq_ids[u] = gid
        if pending:
            rows = first_rows[pending]
            weights = weights_from_angles_batch(corner_rows[rows])
            fresh = self._engine.topk_orders(weights, cache.k_eval)
            cache.append(fresh, corner_rows[rows])
            self.stats["corner_evaluations"] += len(pending)
        return uniq_ids[inverse]

    def _decide(self, corner_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Resolve cells from their corners' current top-k sets.

        Returns ``(has_common, item)`` per cell.  An item is common iff
        it appears in all ``P`` corner sets, i.e. ``P`` times in the
        sorted concatenation (members are distinct within a corner) —
        detected with one sorted-window comparison.  ``"first"`` picks
        the smallest common item (what ``argmax`` over the unpacked
        intersection bitmap yields); ``"best-rank"`` replays the stored
        corner orders exactly like the recursion's ``_pick_batch``.
        """
        cache = self._cache
        num, P = corner_ids.shape
        sets = cache.orders[corner_ids][:, :, : self.k]  # (num, P, k)
        flat = np.sort(sets.reshape(num, -1), axis=1)
        window = flat[:, P - 1 :] == flat[:, : flat.shape[1] - P + 1]
        has_common = window.any(axis=1)
        item = np.full(num, -1, dtype=np.int64)
        rows = np.flatnonzero(has_common)
        if rows.size:
            first = np.argmax(window[rows], axis=1)
            item[rows] = flat[rows, first]
        if self.choice == "best-rank" and rows.size:
            for cell in rows:
                values = flat[cell]
                starts = np.flatnonzero(values[P - 1 :] == values[: values.size - P + 1])
                members = np.unique(values[starts])
                orders = cache.orders[corner_ids[cell]][:, : self.k]
                best_item = -1
                best_worst = None
                for candidate in members:
                    worst = 0
                    for ordered in orders:
                        position = int(np.flatnonzero(ordered == candidate)[0])
                        worst = max(worst, position)
                    if best_worst is None or worst < best_worst:
                        best_worst = worst
                        best_item = int(candidate)
                item[cell] = best_item
        return has_common, item

    def _result_from_tree(self):
        """Synthesize the fresh-run ``MDRCResult`` from the maintained tree."""
        from repro.core.mdrc import CELL_FALLBACK, CELL_RESOLVED, MDRCResult

        cache = self._cache
        selected: set[int] = set()
        cells = 0
        capped = 0
        for level in cache.levels:
            resolved = level.state == CELL_RESOLVED
            selected.update(int(i) for i in level.item[resolved])
            fallback = level.state == CELL_FALLBACK
            if fallback.any():
                selected.update(int(i) for i in level.center_item[fallback])
                selected.update(
                    int(i)
                    for i in cache.orders[level.corners[fallback], 0].ravel()
                )
            cells += int(resolved.sum()) + int(fallback.sum())
            capped += int(fallback.sum())
        return MDRCResult(
            indices=sorted(selected),
            cells=cells,
            max_depth_reached=len(cache.levels) - 1,
            capped_cells=capped,
            corner_evaluations=0,
        )


class KSetView(MaterializedView):
    """Maintained K-SETr collection (Algorithm 4 under churn).

    Caches every batch of drawn functions with its resolved top-k orders
    in a :class:`~repro.geometry.ksets.KSetDrawState`.  Delta events mark
    the draws whose cached top-k the mutation can touch; the next
    :meth:`refresh` replays :func:`~repro.geometry.ksets.sample_ksets`
    over the state — cached draws are served (stale ones re-resolved
    lazily, per batch, through the engine's exact top-k), and if the
    patience walk runs past the cache, fresh draws continue the recorded
    RNG stream exactly where a from-scratch run with the same seed would.

    ``rng`` must be a seed (int or ``None``), not a shared generator:
    the bit-identity contract compares against a fresh run re-seeded
    identically, which a caller-mutated generator cannot provide.
    """

    def __init__(
        self,
        engine: ScoreEngine,
        k: int,
        patience: int = 100,
        rng: int | None = None,
        max_draws: int = 1_000_000,
        batch_size: int = 1024,
    ) -> None:
        from repro.geometry.ksets import KSetDrawState

        if isinstance(rng, np.random.Generator):
            raise ValidationError(
                "maintained views need a reproducible seed (int or None), "
                "not a live Generator"
            )
        super().__init__(engine)
        self.k = int(k)
        self.patience = patience
        self._state = KSetDrawState(
            engine.d, self.k, max_draws=max_draws, batch_size=batch_size, rng=rng
        )
        self.stats.update(draws_invalidated=0, draws_kept=0)

    def _apply(self, event) -> None:
        state = self._state
        for i in range(len(state.orders)):
            valid = ~state.stale[i]
            stale = _screen_topk_orders(
                state.orders[i], state.weights[i], valid, event, self._engine
            )
            rows = np.flatnonzero(stale)
            if rows.size:
                state.mark_stale(i, rows)
            self.stats["draws_invalidated"] += int(rows.size)
            self.stats["draws_kept"] += int((valid & ~stale).sum())

    def _compute(self):
        from repro.geometry.ksets import sample_ksets

        return sample_ksets(
            self._engine.values,
            self.k,
            patience=self.patience,
            engine=self._engine,
            state=self._state,
        )


class MDRRRView(MaterializedView):
    """Maintained MDRRR representative (hitting set over maintained k-sets).

    The expensive half of MDRRR is the K-SETr collection; the hitting
    set itself is a cheap deterministic solve over the collected sets.
    This view therefore maintains a :class:`~repro.geometry.ksets.KSetDrawState`
    exactly like :class:`KSetView` and replays the *real*
    :func:`~repro.core.mdrrr.md_rrr` (sampled enumerator) against it on
    refresh — solver, optional verification panel and repair rounds all
    included, so the result is the one a fresh ``md_rrr`` call with the
    same seed would return.
    """

    def __init__(
        self,
        engine: ScoreEngine,
        k: int,
        hitting: str = "greedy",
        patience: int = 100,
        rng: int | None = None,
        max_draws: int = 1_000_000,
        batch_size: int = 1024,
        verify_functions: int = 0,
        max_repair_rounds: int = 10,
    ) -> None:
        from repro.geometry.ksets import KSetDrawState

        if isinstance(rng, np.random.Generator):
            raise ValidationError(
                "maintained views need a reproducible seed (int or None), "
                "not a live Generator"
            )
        super().__init__(engine)
        self.k = int(k)
        self.hitting = hitting
        self.patience = patience
        self.rng = rng
        self.verify_functions = verify_functions
        self.max_repair_rounds = max_repair_rounds
        self._state = KSetDrawState(
            engine.d, self.k, max_draws=max_draws, batch_size=batch_size, rng=rng
        )
        self.stats.update(draws_invalidated=0, draws_kept=0)

    def _apply(self, event) -> None:
        state = self._state
        for i in range(len(state.orders)):
            valid = ~state.stale[i]
            stale = _screen_topk_orders(
                state.orders[i], state.weights[i], valid, event, self._engine
            )
            rows = np.flatnonzero(stale)
            if rows.size:
                state.mark_stale(i, rows)
            self.stats["draws_invalidated"] += int(rows.size)
            self.stats["draws_kept"] += int((valid & ~stale).sum())

    def _compute(self):
        from repro.core.mdrrr import md_rrr

        return md_rrr(
            self._engine.values,
            self.k,
            enumerator="sample",
            hitting=self.hitting,
            patience=self.patience,
            rng=self.rng,
            verify_functions=self.verify_functions,
            max_repair_rounds=self.max_repair_rounds,
            engine=self._engine,
            kset_state=self._state,
        )


class RankRegretView(MaterializedView):
    """Maintained Monte-Carlo rank-regret estimate of a representative.

    Caches the sampled function panel ``W`` (drawn once from the seed —
    the same panel every fresh :func:`~repro.evaluation.regret.rank_regret_sampled`
    call with that seed uses), each function's best-member score
    threshold, and each function's rank count.  The estimator's rank is
    ``1 +`` the number of rows scoring *strictly above* the threshold,
    so a committed mutation patches it by exact ±counting:

    * a surviving member's row data is unchanged, so every threshold is
      stable while the subset survives;
    * a deleted row strictly above the threshold decrements the count, an
      inserted row strictly above it increments it — rows strictly below
      contribute nothing;
    * any mutated row whose score lands inside the noise band of a
      function's threshold marks that function stale; stale functions are
      re-counted through the engine's exact
      :meth:`~repro.engine.ScoreEngine.rank_of_best_batch` at refresh.

    Deleting a subset member invalidates the whole cache (the subset
    itself changed); use :meth:`set_subset` when the representative the
    view evaluates is replaced (e.g. by an upstream :class:`MDRCView`).
    """

    def __init__(
        self,
        engine: ScoreEngine,
        subset,
        num_functions: int = 10_000,
        rng: int | None = None,
    ) -> None:
        if isinstance(rng, np.random.Generator):
            raise ValidationError(
                "maintained views need a reproducible seed (int or None), "
                "not a live Generator"
            )
        if num_functions < 1:
            raise ValidationError("num_functions must be >= 1")
        super().__init__(engine)
        self.num_functions = int(num_functions)
        self._weights = sample_functions(engine.d, self.num_functions, rng)
        self._members: np.ndarray = np.empty(0, dtype=np.int64)
        self._thr: np.ndarray | None = None
        self._ranks: np.ndarray | None = None
        self._stale: np.ndarray | None = None
        self.stats.update(functions_patched=0, functions_recounted=0, subset_losses=0)
        self.set_subset(subset)

    def set_subset(self, subset) -> None:
        """Evaluate this representative from now on (drops the cache)."""
        members = np.unique(np.asarray(list(subset), dtype=np.int64))
        if members.size == 0:
            raise ValidationError("subset must be non-empty")
        if members[0] < 0 or members[-1] >= self._engine.n:
            raise ValidationError("subset indices out of range")
        if self._ranks is not None and np.array_equal(members, self._members):
            return
        self._members = members
        self._thr = None
        self._ranks = None
        self._stale = None
        self._result = None

    def _apply(self, event) -> None:
        members = self._members
        if event.deleted_ids.size and np.isin(members, event.deleted_ids).any():
            # The representative itself lost a member: the estimate is
            # now over a different subset — nothing cached applies.  The
            # surviving members stay addressable (remapped) so a refresh
            # without set_subset evaluates the surviving representative.
            self._members = event.idmap[members[~np.isin(members, event.deleted_ids)]]
            self._thr = None
            self._ranks = None
            self._stale = None
            self.stats["subset_losses"] += 1
            return
        self._members = event.idmap[members]
        if self._ranks is None:
            return
        thr = self._thr
        stale = self._stale
        tol = _screen_band(self._weights, _event_row_norm(self._engine, event))
        for rows, sign in ((event.deleted_rows, -1), (event.inserted_rows, 1)):
            if not rows.size:
                continue
            # Chunk the (mutated-rows × functions) score screen so a
            # large churn burst against a 10k-function panel stays at a
            # bounded working set.
            chunk = max(1, (1 << 22) // max(1, rows.shape[0]))
            for lo in range(0, self.num_functions, chunk):
                hi = min(self.num_functions, lo + chunk)
                scores = rows @ self._weights[lo:hi].T  # (rows, f)
                above = scores > (thr[lo:hi] + tol[lo:hi])[None, :]
                near = np.abs(scores - thr[lo:hi][None, :]) <= tol[lo:hi][None, :]
                self._ranks[lo:hi] += sign * above.sum(axis=0)
                stale[lo:hi] |= near.any(axis=0)
        self.stats["functions_patched"] += int(self.num_functions - stale.sum())

    def _compute(self) -> int:
        if self._members.size == 0:
            raise ValidationError(
                "every subset member was deleted; call set_subset first"
            )
        engine = self._engine
        if self._ranks is None:
            self._ranks = engine.rank_of_best_batch(self._weights, self._members)
            # Thresholds in the engine's own arithmetic: per-row dot
            # products, exact float64 — stable for as long as the member
            # rows survive.
            self._thr = (engine.values[self._members] @ self._weights.T).max(axis=0)
            self._stale = np.zeros(self.num_functions, dtype=bool)
        elif self._stale.any():
            rows = np.flatnonzero(self._stale)
            self._ranks[rows] = engine.rank_of_best_batch(
                self._weights[rows], self._members
            )
            self.stats["functions_recounted"] += int(rows.size)
            self._stale[:] = False
        return int(self._ranks.max())
