"""Incremental row updates for long-lived :class:`ScoreEngine` instances.

A deployed representative-serving engine lives with a matrix that
*changes*: listings appear and expire, flights land, rows are corrected.
Before this module, any change meant throwing the engine away — and with
it the pre-sorted norm/attribute orderings (one ``argsort`` per
ordering), the quantized integer stores (a full re-quantization each),
the dynamic-range probe and the accumulated adaptive-policy evidence.
Dynamic query answering under updates (Berkholz et al.) and incremental
view maintenance both rest on the same observation: point updates touch
derived structures in ways that are *linear*, not loglinear, to repair.

The public surface is :meth:`ScoreEngine.insert_rows` /
:meth:`ScoreEngine.delete_rows`; this module implements the journal they
write and the compaction that settles it:

* **Journal (merge + tombstone).**  Mutation calls defer all heavy
  structure repair: inserted rows queue in ``_pending_rows``; deletions
  tombstone entries of the sorted live-slot array ``_live`` (built
  lazily — ``None`` means "all committed rows live, nothing pending").
  A mutation call's own cost is one pass over that int64 id array —
  bookkeeping only, never the orderings/stores/matrix.
  ``engine.n`` always reflects the logical size, and delete indices are
  interpreted against the *current* view, exactly like a chain of
  ``np.delete`` / ``vstack`` calls on a plain matrix.  A delete that
  targets a row still sitting in the pending-insert buffer *cancels*
  the insert outright — the row data is dropped and the surviving
  pending slots renumbered — rather than tombstoning a slot that never
  materialized: the dead row would otherwise be carried through every
  journal pass, counted by the eager-flush trigger, and surface to
  delta subscribers as a spurious delete + insert pair.
* **Compaction.**  The first query after a mutation (or an explicit
  :meth:`ScoreEngine.compact`) settles the whole journal in one linear
  pass: the committed matrix is filtered and the surviving pending rows
  appended; each pruning ordering is repaired by *filter + merge* — the
  surviving permutation entries are re-indexed and kept in place (their
  relative, tie-stable order is already correct) and the new rows are
  merge-inserted at their ``searchsorted`` positions — never re-sorted;
  each cached quantized store reuses the survivors' integer rows
  verbatim and quantizes only the inserted rows, unless the new rows'
  dynamic range escapes the per-attribute envelope, in which case the
  level is re-scaled wholesale (stores then re-quantize lazily).  An
  insert burst therefore costs one compaction, not one per call.
* **Invalidation.**  Compaction ends with
  :meth:`ScoreEngine._invalidate_derived`: the single-probe LRU memo
  (keyed on weight bytes only — it would silently serve pre-mutation
  top-k sets), the grid-gather cache, the cached max row norm behind
  the ulp noise bands, the chunk geometry, and the worker pools (their
  clones and shared-memory segments hold the old matrix) are all
  dropped explicitly.

The contract is the engine-wide one: after any mutation sequence, every
query is **bit-identical** to a fresh engine built on the mutated
matrix.  Stability of the merge makes even the internal orderings match
a fresh ``argsort(kind="stable")``: surviving rows keep their relative
order and keep indices below every inserted row, and ``searchsorted``
with ``side="right"`` lands equal-valued new rows after their old peers
— exactly where the stable sort would put them.

**Epoch API.**  Every *effective* compaction (one that changed the
matrix) bumps ``engine.revision`` and notifies the subscribers
registered through :meth:`ScoreEngine.subscribe_delta` with one
:class:`DeltaEvent` describing the committed-state transition: which
old rows died (ids and data), how the survivors were renumbered
(``idmap``), and which rows were appended.  Inserted-then-deleted rows
never appear in any event — the journal cancelled them.  This is what
the materialized-view layer (:mod:`repro.engine.views`) subscribes to;
a journal that cancels out entirely emits nothing.

Mutations follow the engine's general threading rule: calls on one
engine are not synchronized against each other; a service mutating
while serving must serialize externally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import CorruptStateError, InvalidDataError, ValidationError

__all__ = [
    "DeltaEvent",
    "MergePlan",
    "delete_rows",
    "flush_mutations",
    "insert_rows",
    "replay_event",
]

# Compact eagerly once this many rows are queued in the journal: bounds
# journal memory and keeps the eventual compaction pass from ballooning.
_MAX_PENDING_ROWS = 65536


@dataclass(frozen=True)
class DeltaEvent:
    """One effective compaction, as seen by a delta subscriber.

    Describes the committed-state transition ``old matrix (old_n rows)
    -> new matrix (new_n rows)``: the journal's net effect, with any
    inserted-then-deleted rows already cancelled out.  Surviving rows
    keep their data bit-for-bit and are renumbered monotonically, so a
    subscriber can remap cached row ids with one ``idmap`` gather.

    Attributes
    ----------
    revision:
        The engine's revision counter *after* this compaction.
    old_n / new_n:
        Committed matrix sizes before and after.
    deleted_ids:
        Sorted old-id positions of the rows that were removed.
    deleted_rows:
        The removed rows' float64 data, aligned with ``deleted_ids``
        (captured before the matrix was rewritten — a subscriber that
        screens deletions against cached score bounds needs the data of
        rows that no longer exist anywhere else).
    idmap:
        ``(old_n,)`` int64 old-id -> new-id map; meaningful only at
        surviving (non-deleted) positions.
    inserted_rows:
        The appended rows, occupying new ids ``[new_n - m, new_n)`` in
        insertion order.
    """

    revision: int
    old_n: int
    new_n: int
    deleted_ids: np.ndarray
    deleted_rows: np.ndarray
    idmap: np.ndarray
    inserted_rows: np.ndarray


class MergePlan:
    """One ordering's filter + merge, as reusable scatter indices.

    Several parallel arrays ride along every pruning ordering (``perm``,
    ``u``, ``V``, ``V32``, ``rest``, and the quantized store's ``Q`` /
    ``absq``); all of them undergo the *same* structural edit — drop the
    positions of deleted rows, insert the new rows' values before their
    ``searchsorted`` positions.  The plan computes that edit's gather /
    scatter indices once (survivor positions, each survivor's final
    destination, each inserted row's destination) so applying it to one
    more array is just ``out[old_dest] = arr[keep_idx]; out[ins_dest] =
    new`` — two linear passes, no per-array mask rebuilds.

    ``apply`` is equivalent to ``np.insert(arr[keep_idx], pos, new,
    axis=0)`` for the plan's non-decreasing ``pos``; ties in ``pos``
    keep the inserted order, matching the stable-merge contract.

    ``rows`` carries the inserted float64 data rows (already in merge
    order) for consumers that derive per-row values — the quantized
    store quantizes exactly these.
    """

    __slots__ = ("keep_idx", "old_dest", "ins_dest", "rows", "size")

    def __init__(self, keep_mask: np.ndarray, pos: np.ndarray, rows: np.ndarray) -> None:
        self.keep_idx = np.flatnonzero(keep_mask)
        kept = self.keep_idx.size
        m = rows.shape[0]
        self.rows = rows
        self.size = kept + m
        # Survivor i shifts right by the number of insertions at <= i.
        shift = np.cumsum(np.bincount(pos, minlength=kept + 1))[:kept]
        self.old_dest = np.arange(kept, dtype=np.int64) + shift
        self.ins_dest = pos + np.arange(m, dtype=np.int64)

    def apply(self, old: np.ndarray, new: np.ndarray) -> np.ndarray:
        out = np.empty((self.size, *old.shape[1:]), dtype=old.dtype)
        out[self.old_dest] = old[self.keep_idx]
        out[self.ins_dest] = new
        return out


def _live_view(engine) -> np.ndarray:
    if engine._live is None:
        engine._live = np.arange(engine._committed_n, dtype=np.int64)
    return engine._live


def insert_rows(engine, rows: np.ndarray) -> np.ndarray:
    """Journal an append of ``rows``; returns their new row indices."""
    rows = np.array(rows, dtype=np.float64, copy=True, order="C", ndmin=2)
    if rows.ndim != 2 or rows.shape[1] != engine.d:
        raise ValidationError(
            f"inserted rows must be (m, {engine.d}), got shape {rows.shape}"
        )
    if not np.all(np.isfinite(rows)):
        raise InvalidDataError(
            "inserted rows contain NaN or Inf entries; clean the rows "
            "before inserting (NaN comparisons would corrupt every rank)"
        )
    m = rows.shape[0]
    if m == 0:
        return np.empty(0, dtype=np.int64)
    live = _live_view(engine)
    next_slot = engine._committed_n + sum(len(p) for p in engine._pending_rows)
    engine._pending_rows.append(rows)
    engine._live = np.concatenate(
        [live, next_slot + np.arange(m, dtype=np.int64)]
    )
    new_ids = np.arange(engine.n, engine.n + m, dtype=np.int64)
    engine.n += m
    engine._dirty_rows = True
    engine.stats["row_inserts"] += m
    if sum(len(p) for p in engine._pending_rows) > _MAX_PENDING_ROWS:
        flush_mutations(engine)
    return new_ids


def delete_rows(engine, indices) -> int:
    """Journal a deletion; indices refer to the current matrix view.

    Accepts integer indices or a boolean mask of length ``n`` — the two
    forms ``np.delete`` accepts — and rejects anything else rather than
    silently casting (a float array or a wrong-length mask coerced to
    int64 would delete the wrong rows).
    """
    arr = np.asarray(indices)
    if arr.dtype == bool:
        if arr.ndim != 1 or arr.size != engine.n:
            raise ValidationError(
                f"boolean delete mask must have length n={engine.n}, "
                f"got shape {arr.shape}"
            )
        arr = np.flatnonzero(arr)
    elif not (arr.dtype.kind in "iu" or arr.size == 0):
        raise ValidationError(
            f"delete indices must be integers or a boolean mask, got dtype {arr.dtype}"
        )
    idx = np.unique(arr.astype(np.int64).reshape(-1))
    if idx.size == 0:
        return 0
    if idx[0] < 0 or idx[-1] >= engine.n:
        raise ValidationError(
            f"delete indices must be in [0, n)={engine.n}, got "
            f"[{idx[0]}, {idx[-1]}]"
        )
    if idx.size >= engine.n:
        raise ValidationError("cannot delete every row (engine must stay non-empty)")
    live = _live_view(engine)
    cn = engine._committed_n
    doomed = live[idx]
    survivors = np.delete(live, idx)
    cancelled = doomed[doomed >= cn] - cn
    if cancelled.size:
        # The deletion hit rows still sitting in the pending-insert
        # buffer: cancel those inserts outright instead of tombstoning
        # slots that never materialized.  The row data is dropped from
        # the buffers and the surviving pending slots renumbered down,
        # so cancelled rows are never copied through compaction, never
        # counted by the eager-flush trigger, and never surface to
        # delta subscribers as a delete + insert pair.
        total = sum(len(block) for block in engine._pending_rows)
        keep_pending = np.ones(total, dtype=bool)
        keep_pending[cancelled] = False
        buffers: list[np.ndarray] = []
        base = 0
        for block in engine._pending_rows:
            mask = keep_pending[base : base + len(block)]
            base += len(block)
            if mask.all():
                buffers.append(block)
            elif mask.any():
                buffers.append(block[mask])
        engine._pending_rows = buffers
        pending_mask = survivors >= cn
        if pending_mask.any():
            # Each surviving pending slot shifts down by the number of
            # cancelled slots below it (cancelled is sorted: it came
            # from a slice of the sorted live array).
            shift = np.searchsorted(cancelled, survivors[pending_mask] - cn)
            survivors[pending_mask] -= shift
        engine.stats["cancelled_inserts"] += int(cancelled.size)
    engine._live = survivors
    engine.n -= idx.size
    engine._dirty_rows = True
    engine.stats["row_deletes"] += idx.size
    if not engine._pending_rows and survivors.size == cn:
        # The journal cancelled out entirely (every mutation since the
        # last compaction was an insert later deleted): the committed
        # state is untouched, so forget the journal instead of paying a
        # no-op compaction at the next query.
        _reset_journal(engine, cn)
    return int(idx.size)


def flush_mutations(engine) -> None:
    """Compact the mutation journal into every derived structure."""
    if not engine._dirty_rows:
        return
    cn = engine._committed_n
    live = _live_view(engine)
    pending = (
        np.concatenate(engine._pending_rows)
        if engine._pending_rows
        else np.empty((0, engine.d))
    )
    _check_journal(engine, live, cn, pending.shape[0])
    split = int(np.searchsorted(live, cn))
    committed_live = live[:split]
    new_rows = np.ascontiguousarray(pending[live[split:] - cn])
    keep = np.zeros(cn, dtype=bool)
    keep[committed_live] = True
    kept = committed_live.size
    m = new_rows.shape[0]

    if kept == cn and m == 0:
        # The journal cancelled out (inserted rows deleted again before
        # any query): nothing changed, nothing to invalidate.
        _reset_journal(engine, cn)
        return

    idmap = np.cumsum(keep, dtype=np.int64) - 1  # old id -> new id (kept only)
    new_n = kept + m
    new_ids = kept + np.arange(m, dtype=np.int64)

    event = None
    if engine._delta_subscribers:
        # Capture the doomed rows' data before the matrix is rewritten:
        # subscribers screening deletions against cached score bounds
        # need values that are about to exist nowhere else.
        event = DeltaEvent(
            revision=engine.revision + 1,
            old_n=cn,
            new_n=new_n,
            deleted_ids=np.flatnonzero(~keep),
            deleted_rows=np.ascontiguousarray(engine.values[~keep]),
            idmap=idmap,
            inserted_rows=new_rows,
        )

    values = np.empty((new_n, engine.d), dtype=np.float64)
    values[:kept] = engine.values[keep]
    values[kept:] = new_rows
    engine.values = values
    if engine._values32 is not None:
        v32 = np.empty((new_n, engine.d), dtype=np.float32)
        v32[:kept] = engine._values32[keep]
        v32[kept:] = new_rows.astype(np.float32)
        engine._values32 = v32

    store_edits: list[tuple[int, MergePlan]] = []
    if engine._orderings is not None:
        from repro.engine.score_engine import robust_row_norms

        new_norms = robust_row_norms(new_rows)
        for o, ordering in enumerate(engine._orderings):
            plan = _merge_ordering(
                ordering, keep, idmap, new_rows, new_norms, new_ids, new_n
            )
            store_edits.append((o, plan))

    if engine._quantizer is not None:

        def apply_stores(level) -> None:
            if engine._orderings is None:
                level.drop_stores()
                return
            for o, plan in store_edits:
                level.mutate_store(o, plan)

        engine._quantizer = engine._quantizer.apply_mutation(
            engine.values, new_rows, apply_stores
        )

    engine._invalidate_derived()
    # Restart the attribute-ordering demand accumulator: under sustained
    # churn every compaction would also have to repair the d extra
    # orderings (and their quantized stores), so the sharper orderings
    # must re-justify that recurring cost against *post-mutation* probe
    # volume.  Orderings already built stay built (and maintained).
    if not engine._attr_orderings_built:
        engine._excess_work = 0
    engine.stats["compactions"] += 1
    _reset_journal(engine, new_n)
    # Bump the epoch and notify only after the engine is fully settled:
    # a subscriber's repair may read engine.values (and even issue
    # queries — the journal is clean, so no re-entrant compaction).
    engine.revision += 1
    for callback in list(engine._delta_subscribers):
        callback(event)


def replay_event(engine, deleted_ids: np.ndarray, inserted_rows: np.ndarray) -> None:
    """Re-apply one logged :class:`DeltaEvent` through the mutation path.

    WAL recovery (:mod:`repro.engine.wal`) records each effective
    compaction as its net effect — ``deleted_ids`` in the pre-event id
    space plus the appended ``inserted_rows`` — and replays it here
    against an engine sitting at the pre-event state.  Because the
    engine's journal is clean at that point, the pre-event ids *are* the
    current view's indices, so one ``delete_rows`` + ``insert_rows`` +
    :func:`flush_mutations` reproduces exactly the original transition:
    same surviving permutation, same appended ids, same single revision
    bump.  Bit-identity of everything derived then follows from the
    compaction contract above.
    """
    deleted_ids = np.asarray(deleted_ids, dtype=np.int64).reshape(-1)
    inserted_rows = np.asarray(inserted_rows, dtype=np.float64)
    if inserted_rows.size == 0:
        inserted_rows = inserted_rows.reshape(0, engine.d)
    if engine._dirty_rows:
        raise CorruptStateError(
            "replay_event requires a settled engine (dirty journal found); "
            "recovery must replay onto the committed state only"
        )
    if deleted_ids.size:
        delete_rows(engine, deleted_ids)
    if inserted_rows.shape[0]:
        insert_rows(engine, inserted_rows)
    flush_mutations(engine)


def _check_journal(engine, live: np.ndarray, cn: int, pending_total: int) -> None:
    """Journal invariants, checked before any compaction touches state.

    The live-slot array must be a strictly increasing subset of the
    ``cn + pending_total`` journal slots and agree with the engine's
    logical size.  A violation means engine internals were corrupted
    (external mutation of ``_live``/``_pending_rows``, a partial failure
    mid-mutation) — compacting would silently build a wrong matrix, so
    fail with a typed error instead.
    """
    total = cn + pending_total
    ok = live.size == engine.n and (
        live.size == 0
        or (
            int(live[0]) >= 0
            and int(live[-1]) < total
            and bool(np.all(np.diff(live) > 0))
        )
    )
    if not ok:
        raise CorruptStateError(
            "row-mutation journal failed its invariants (live-slot array "
            f"size {live.size} vs logical n {engine.n}, slot range "
            f"[{int(live[0]) if live.size else 0}, "
            f"{int(live[-1]) if live.size else 0}] vs {total} journal "
            "slots); the engine's internal state was corrupted — rebuild "
            "it from the source matrix"
        )


def _reset_journal(engine, committed_n: int) -> None:
    engine._committed_n = int(committed_n)
    engine._live = None
    engine._pending_rows = []
    engine._dirty_rows = False


def _merge_ordering(
    ordering, keep: np.ndarray, idmap: np.ndarray, new_rows, new_norms, new_ids, new_n: int
) -> MergePlan:
    """Filter + merge one pruning ordering in place.

    Returns the :class:`MergePlan` (survivor positions and insertion
    destinations in the ordering's permuted space), which the quantized
    store repair replays verbatim on its own parallel arrays.
    """
    if ordering.attribute < 0:
        u_new = new_norms
    else:
        u_new = new_rows[:, ordering.attribute]
    order_new = np.argsort(-u_new, kind="stable")
    rows_sorted = np.ascontiguousarray(new_rows[order_new])
    keep_pos = keep[ordering.perm]
    u_f = ordering.u[keep_pos]
    pos = np.searchsorted(-u_f, -u_new[order_new], side="right")
    plan = MergePlan(keep_pos, pos, rows_sorted)
    perm = np.empty(plan.size, dtype=np.int64)
    perm[plan.old_dest] = idmap[ordering.perm[plan.keep_idx]]
    perm[plan.ins_dest] = new_ids[order_new]
    ordering.perm = perm
    u = np.empty(plan.size)
    u[plan.old_dest] = u_f
    u[plan.ins_dest] = u_new[order_new]
    ordering.u = u
    ordering.V = plan.apply(ordering.V, rows_sorted)
    if ordering.V32 is not None:
        ordering.V32 = plan.apply(ordering.V32, rows_sorted.astype(np.float32))
    if ordering.attribute < 0:
        ordering.v = np.zeros(new_n)
    else:
        # Surviving rows keep their residual norms bit-for-bit; only the
        # inserted rows' residuals are computed, and ``v`` is one cummax.
        from repro.engine.score_engine import robust_rest_norms

        if ordering.rest is None:
            ordering.rest = robust_rest_norms(ordering.V, ordering.attribute)
        else:
            rest_new = robust_rest_norms(rows_sorted, ordering.attribute)
            ordering.rest = plan.apply(ordering.rest, rest_new)
        ordering.v = np.maximum.accumulate(ordering.rest[::-1])[::-1]
    ordering.inv = None
    return plan
