"""Packed-bitset representation of tuple subsets (k-sets, top-k members).

Every set of row indices over an ``n``-row dataset is stored as a
``ceil(n / 8)``-byte ``uint8`` bitmap (``np.packbits`` layout, big-endian
bit order within each byte).  Compared to Python ``frozenset`` objects
this makes the three operations the algorithms hammer —

* *dedup* (K-SETr's "have we seen this k-set?" test, the workload-RRR
  distinct-top-k pass),
* *intersection* (MDRC's corner-set intersection per cell),
* *cardinality* (k-set graph adjacency, |A ∩ B| = k − 1),

— plain vectorized byte ops: a ``bytes`` hash, ``np.bitwise_and`` and a
popcount table, with no per-element Python object churn.

:class:`BitsetTable` is the dedup structure shared by the engine callers:
an insertion-ordered table of distinct packed sets addressed by their
byte content.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "packed_width",
    "pack_indices",
    "pack_membership",
    "unpack_indices",
    "intersect_all",
    "popcount",
    "BitsetTable",
]

# popcount of every byte value, used to take |set| without unpacking.
_POPCOUNT = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
    axis=1, dtype=np.uint8
)


def packed_width(n: int) -> int:
    """Bytes needed to store a subset of ``n`` rows."""
    return (int(n) + 7) // 8


def pack_indices(indices: np.ndarray, n: int) -> np.ndarray:
    """Pack a 1-D array of row indices into an ``(packed_width(n),)`` bitmap."""
    mask = np.zeros(n, dtype=np.uint8)
    mask[np.asarray(indices, dtype=np.intp)] = 1
    return np.packbits(mask)


# Above this dense-mask byte count, pack_membership switches to direct
# bit scatter: the dense path materializes an (m, n) mask, which at
# bench scale (thousands of k-element subsets over 10^5 rows) means
# gigabytes of zeroing + packbits traffic for a few set bits per row.
_DENSE_PACK_LIMIT = 1 << 22


def pack_membership(index_matrix: np.ndarray, n: int) -> np.ndarray:
    """Pack many subsets at once: ``(m, k)`` index rows → ``(m, w)`` bitmaps."""
    index_matrix = np.asarray(index_matrix)
    m = index_matrix.shape[0]
    if m * n <= _DENSE_PACK_LIMIT:
        mask = np.zeros((m, n), dtype=np.uint8)
        mask[np.arange(m)[:, None], index_matrix] = 1
        return np.packbits(mask, axis=1)
    # Sparse path: scatter-OR each index's bit straight into the packed
    # layout.  np.packbits is big-endian within a byte, so index ``i``
    # maps to byte ``i >> 3``, bit value ``128 >> (i & 7)`` — the output
    # is byte-identical to the dense path.
    width = packed_width(n)
    out = np.zeros((m, width), dtype=np.uint8)
    flat = index_matrix.astype(np.int64, copy=False)
    positions = np.arange(m, dtype=np.int64)[:, None] * width + (flat >> 3)
    bits = (np.uint8(128) >> (flat & 7).astype(np.uint8)).astype(np.uint8)
    np.bitwise_or.at(out.reshape(-1), positions.ravel(), bits.ravel())
    return out


def unpack_indices(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_indices`: the sorted member indices."""
    bits = np.unpackbits(np.asarray(packed, dtype=np.uint8), count=n)
    return np.flatnonzero(bits)


def intersect_all(packed_rows: np.ndarray) -> np.ndarray:
    """Intersection of many packed sets: AND-reduce over the rows."""
    return np.bitwise_and.reduce(np.asarray(packed_rows, dtype=np.uint8), axis=0)


def popcount(packed: np.ndarray) -> int | np.ndarray:
    """Cardinality of one packed set (1-D) or of each row (2-D)."""
    packed = np.asarray(packed, dtype=np.uint8)
    counts = _POPCOUNT[packed]
    if packed.ndim == 1:
        return int(counts.sum())
    return counts.sum(axis=1, dtype=np.int64)


class BitsetTable:
    """Insertion-ordered table of distinct packed sets.

    Deduplicates on raw byte content (two packed sets are equal iff their
    bitmaps are byte-identical), which is exact because packing is
    canonical.  This is the structure K-SETr and workload-RRR use instead
    of a ``set[frozenset[int]]``.
    """

    __slots__ = ("n", "_ids", "_rows")

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self._ids: dict[bytes, int] = {}
        self._rows: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, packed: np.ndarray) -> bool:
        return packed.tobytes() in self._ids

    def add(self, packed: np.ndarray) -> tuple[int, bool]:
        """Insert a packed set; return ``(id, is_new)``.

        ``id`` is the set's position in insertion order, stable across
        repeat insertions.
        """
        key = packed.tobytes()
        existing = self._ids.get(key)
        if existing is not None:
            return existing, False
        new_id = len(self._rows)
        self._ids[key] = new_id
        self._rows.append(np.array(packed, dtype=np.uint8, copy=True))
        return new_id, True

    def row(self, set_id: int) -> np.ndarray:
        """The packed bitmap stored under ``set_id``."""
        return self._rows[set_id]

    def indices(self, set_id: int) -> np.ndarray:
        """Member indices of the set stored under ``set_id``."""
        return unpack_indices(self._rows[set_id], self.n)

    def frozensets(self) -> list[frozenset[int]]:
        """All stored sets as frozensets, in insertion order."""
        return [
            frozenset(int(i) for i in unpack_indices(row, self.n))
            for row in self._rows
        ]
