"""ScoreEngine: batched top-k scoring over one owned data matrix.

Every algorithm in this reproduction — MDRC corner probes, K-SETr draws,
the Monte-Carlo rank-regret estimator, workload RRR, the regret-ratio
baselines — bottoms out in ``values @ weights`` top-k probes.  Issued one
weight vector at a time those probes pay per-call numpy overhead and run
BLAS level-2; issued as a *batch* they become a single chunked GEMM plus
one ``argpartition`` over all columns at once.  :class:`ScoreEngine` owns
the ``(n, d)`` matrix and serves that batched path to every caller:

* :meth:`topk_batch` — top-k of many functions in one call, returning
  both an ``(m, k)`` best-first index matrix and the members as packed
  bitsets (:mod:`repro.engine.bitset`) so set dedup/intersection are
  byte ops;
* :meth:`top_k` / :meth:`top_k_packed` — single-function probes behind
  an LRU memo keyed on the weight bytes (MDRC's shared cell corners,
  repeated workload functions);
* :meth:`rank_of_best_batch` — the rank-regret estimator's inner
  counting loop, batched, ulp-verified and *pruned*: each function is
  routed through the norm/attribute orderings with the subset's best
  score as a lower bound, so counting stops at a provably sufficient
  prefix instead of scanning all n rows.

With ``n_jobs > 1`` every bulk call above a calibrated work cutover is
split into function-chunk or row-chunk work units and fanned out over a
worker pool — an in-process thread pool of zero-copy engine clones, the
PR-3 shared-memory process pool, or whichever the ``backend="auto"``
policy picks from problem size and the measured scalar-fallback ratio
(:mod:`repro.engine.parallel`); the exactness contract makes any split
bit-identical to the serial path.

Exactness
---------
Tie-breaking follows the library-wide rule (score descending, row index
ascending), and the contract is *bit-identical results to the scalar*
``top_k``/``rank_of`` *path*.  Decisions climb a four-tier ladder —
``int8 → float32 → float64 → scalar`` — in which each tier resolves
only the columns it can prove and promotes the rest:

* the **quantized tier** (:mod:`repro.engine.quantize`) bounds every
  score from both sides with exact small-integer arithmetic; functions
  whose candidate set (or rank band) it isolates are finished from a
  tiny exact rescore, and functions whose decision boundary falls
  inside the quantization envelope are promoted;
* the **float batch tiers** trust the GEMM scores except where an ulp
  band at the k boundary or between adjacent ranked scores says a
  blocked-BLAS deviation could flip the decision (possible even for
  identical rows);
* contested columns fall back to the **scalar algorithm verbatim** (one
  float64 GEMV plus the seed's over-select / lexsort), so they match
  the scalar path by construction, and uncontested columns match it
  because their gaps exceed any GEMM↔GEMV deviation.

With ``float32=True`` the batch tier runs in single precision (≈2× GEMM
throughput, half the memory traffic), block ordering is recomputed in
float64, and the same fallback applies with a float32-wide band.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import NamedTuple

import numpy as np

from repro.engine.autotune import TuningProfile
from repro.engine.bitset import pack_membership, packed_width
from repro.engine.parallel import resolve_backend, resolve_n_jobs
from repro.engine.quantize import Quantizer
from repro.exceptions import InvalidDataError, ValidationError

__all__ = ["ScoreEngine", "TopKBatch"]

# Width of the ulp band (in units of eps * max|score| per column) inside
# which GEMM scores are treated as potentially tied and re-verified.
# Deliberately NOT part of the tuning profile: this constant is
# load-bearing for exactness, not performance.
_TIE_BAND_ULPS = 64.0

# Every performance constant that used to live here — chunk sizes, the
# fan-out cutover, the quantized/scalar routing caps, the adaptive
# policy thresholds — is now a field of
# :class:`repro.engine.autotune.TuningProfile` (whose defaults reproduce
# the legacy values) and is read per-engine via ``self._tuning``.


def robust_row_norms(matrix: np.ndarray) -> np.ndarray:
    """Row 2-norms immune to under/overflow of the naive squared sum.

    ``sqrt(sum(x**2))`` silently returns 0 for rows whose squared entries
    are subnormal (all |x| below ~1e-154) and inf past ~1e154.  Every
    pruning bound built on an underflowed norm claims the row scores at
    most 0, so the prefix tiers prune rows that actually belong in the
    top-k and the engine diverges from the scalar kernel it is pinned
    to.  Rows whose naive squared sum is a normal float keep the naive
    (bitwise-unchanged) value; only at-risk rows pay the rescale pass.
    """
    with np.errstate(over="ignore", under="ignore"):
        sq = (matrix * matrix).sum(axis=1)
    norms = np.sqrt(sq)
    risky = np.flatnonzero(
        (sq < np.finfo(np.float64).tiny) | ~np.isfinite(sq)
    )
    if risky.size:
        rows = matrix[risky]
        scale = np.abs(rows).max(axis=1)
        safe = np.where(scale > 0.0, scale, 1.0)
        scaled = rows / safe[:, None]
        norms[risky] = scale * np.sqrt((scaled * scaled).sum(axis=1))
    return norms


def robust_rest_norms(matrix: np.ndarray, attribute: int) -> np.ndarray:
    """Residual row norms with attribute ``attribute`` zeroed out.

    The attribute orderings bound a score by ``w_j·x_j + ‖w_{−j}‖·rest``;
    deriving ``rest`` as ``sqrt(norm² − x_j²)`` squares the norm and
    underflows for tiny rows exactly like the naive norm does, so the
    residual is normed directly from a column-masked copy instead.
    """
    masked = matrix.copy()
    masked[:, attribute] = 0.0
    return robust_row_norms(masked)


class _Ordering:
    """One pruning order over the data rows (see _build_orderings).

    ``perm`` maps prefix-local positions to global row ids; ``V`` is the
    matrix reordered accordingly; every row at position ≥ p scores at
    most ``a(w)·u[p] + b(w)·v[p]`` for the ordering's coefficients.
    ``V32`` and ``inv`` (the inverse permutation) are filled lazily by
    the consumers that need them and survive pickling with the rest.
    ``rest`` keeps the per-row residual norms behind an attribute
    ordering's ``v`` (``v`` is their suffix-max), so the incremental
    update path (:mod:`repro.engine.delta`) can filter/merge them like
    ``u`` and re-derive ``v`` with one cummax instead of re-norming the
    whole matrix.
    """

    __slots__ = ("perm", "V", "V32", "u", "v", "attribute", "inv", "rest")

    def __init__(self, perm, V, V32, u, v, attribute, inv=None, rest=None) -> None:
        self.perm = perm
        self.V = V
        self.V32 = V32
        self.u = u
        self.v = v
        self.attribute = attribute
        self.inv = inv
        self.rest = rest


def _geometric_grid(k: int, n: int) -> np.ndarray:
    """Doubling prefix sizes between ~2k and n (exclusive)."""
    sizes = []
    c = max(2 * k, 32)
    while c < n:
        sizes.append(c)
        c *= 2
    return np.asarray(sizes, dtype=np.int64)


class TopKBatch(NamedTuple):
    """Result of :meth:`ScoreEngine.topk_batch`.

    Attributes
    ----------
    members:
        ``(m, packed_width(n))`` uint8 — row ``i`` is the packed bitset of
        function ``i``'s top-k members (see :mod:`repro.engine.bitset`).
    order:
        ``(m, k)`` int64 — row ``i`` lists function ``i``'s top-k indices
        best first, ties broken by smaller row index.
    """

    members: np.ndarray
    order: np.ndarray


class ScoreEngine:
    """Vectorized batch-scoring engine over one ``(n, d)`` matrix.

    Parameters
    ----------
    values:
        The data matrix; copied to a C-contiguous float64 array once.
        Long-lived engines can mutate it afterwards through
        :meth:`insert_rows` / :meth:`delete_rows`, which maintain every
        derived structure incrementally (see :mod:`repro.engine.delta`).
    float32:
        Score in single precision with float64 tie/order verification
        (see module docstring).  Off by default.
    chunk_bytes:
        Target size of one score chunk; the weight batch is processed in
        column chunks of ``chunk_bytes / (8n)`` so peak memory stays flat
        regardless of how many functions a caller throws at one call.
        ``None`` (default) takes the value from the tuning profile.
    memo_size:
        Capacity of the single-function LRU memo (entries, not bytes).
    n_jobs:
        Workers for the fan-out layer (:mod:`repro.engine.parallel`).
        ``None``/``1`` keeps every call in-process; ``-1`` uses all
        cores.  The pool (and, for the process backend, the shared copy
        of the matrix) is created lazily on the first call whose
        ``n x m`` work exceeds ``parallel_min_work`` and persists until
        :meth:`close` (or garbage collection).
    backend:
        Execution backend for above-cutover bulk calls: ``"serial"``
        never fans out, ``"thread"`` uses an in-process pool (zero
        spawn/pickle/shared-memory cost — NumPy releases the GIL inside
        BLAS, so GEMM-bound work scales), ``"process"`` the PR-3
        shared-memory process pool.  ``"auto"`` (default) stays serial
        below the work cutover, starts with threads above it, and
        escalates permanently to processes when the measured scalar-
        fallback ratio shows the workload is GIL-bound.  Results are
        bit-identical across backends.
    quantize:
        Quantized screening tier (:mod:`repro.engine.quantize`):
        ``"auto"`` (default) picks int8/int16 from the data's dynamic
        range and adapts to the observed promote rate, ``"int8"`` /
        ``"int16"`` pin the level, ``None`` disables the tier.  Results
        are bit-identical either way.
    mp_context:
        Multiprocessing start method for the process pool (``"fork"`` |
        ``"spawn"`` | ``"forkserver"``); default picks fork where
        available.
    parallel_min_work:
        Serial fast-path cutover in score-matrix entries (``n * m``);
        calls below it never touch a pool.  ``None`` (default) takes the
        value from the tuning profile.
    tune:
        Runtime tuning (:mod:`repro.engine.autotune`): ``None`` uses the
        default :class:`TuningProfile` (the legacy hand-tuned
        constants), a profile instance adopts it as-is (e.g. one loaded
        from JSON via :meth:`TuningProfile.load`), and ``"auto"`` runs
        the calibration probe lazily before the first bulk call —
        explicit :meth:`calibrate` does the same eagerly.  Any profile
        yields bit-identical results; only the speed changes.
    resilience:
        Failure handling for the fan-out layer
        (:mod:`repro.engine.resilience`): a :class:`RetryPolicy` sets
        the per-work-unit timeout, the retry budget and the backoff
        shape; ``None`` (default) snapshots the process-wide default
        policy (see :func:`repro.engine.resilience.set_default_policy`).
        Supervision never changes results — failed units re-execute
        bit-identically, possibly on a degraded backend.
    """

    def __init__(
        self,
        values: np.ndarray,
        *,
        float32: bool = False,
        chunk_bytes: int | None = None,
        memo_size: int = 4096,
        n_jobs: int | None = None,
        backend: str = "auto",
        quantize: str | None = "auto",
        mp_context: str | None = None,
        parallel_min_work: int | None = None,
        tune: TuningProfile | str | None = None,
        resilience: "RetryPolicy | None" = None,
    ) -> None:
        try:
            matrix = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
        except (TypeError, ValueError) as exc:
            raise InvalidDataError(
                f"values are not numeric (cannot convert to float64): {exc}"
            ) from None
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise ValidationError("values must be a non-empty (n, d) matrix")
        if not np.all(np.isfinite(matrix)):
            raise InvalidDataError(
                "values contain NaN or Inf entries; comparisons against NaN "
                "are silently False and would produce garbage ranks — clean "
                "or impute the data before building a ScoreEngine"
            )
        self.values = matrix
        self.n, self.d = matrix.shape
        self.float32 = bool(float32)
        self._values32 = matrix.astype(np.float32) if self.float32 else None
        self._tune_pending = False
        if tune is None:
            self._tuning = TuningProfile()
        elif isinstance(tune, TuningProfile):
            self._tuning = tune
        elif tune == "auto":
            self._tuning = TuningProfile()
            self._tune_pending = True
        else:
            raise ValidationError(
                "tune must be None, 'auto' or a TuningProfile, "
                f"got {tune!r} (load JSON profiles with TuningProfile.load)"
            )
        # Pruning orderings: candidate row orders with per-position upper
        # bounds on any remaining row's score (see _build_orderings).
        # All of them are built lazily: the norm ordering on the first
        # top-k probe (score_batch / rank_of_best_batch callers never
        # need it), the sharper per-attribute orderings once enough
        # probe work has accumulated to amortize their construction.
        self._orderings: list[_Ordering] | None = None
        self._attr_orderings_built = False
        self._excess_work = 0
        if chunk_bytes is None:
            chunk_bytes = self._tuning.chunk_bytes
        if chunk_bytes < 8 * self.n:
            chunk_bytes = 8 * self.n
        self._chunk_bytes = int(chunk_bytes)
        self._chunk_cols = max(1, int(chunk_bytes) // (8 * self.n))
        self._memo_size = int(memo_size)
        self._memo: OrderedDict[tuple[bytes, int], TopKBatch] = OrderedDict()
        try:
            self.n_jobs = resolve_n_jobs(n_jobs)
            self.backend = resolve_backend(backend)
        except ValueError as exc:
            raise ValidationError(str(exc)) from None
        try:
            self._quantizer = (
                Quantizer(
                    matrix,
                    quantize,
                    promote_window=self._tuning.quant_promote_window,
                    promote_limit=self._tuning.quant_promote_limit,
                )
                if quantize
                else None
            )
        except ValueError as exc:
            raise ValidationError(str(exc)) from None
        self._mp_context = mp_context
        if parallel_min_work is None:
            parallel_min_work = self._tuning.parallel_min_work
        self._parallel_min_work = int(parallel_min_work)
        # Lazy executors, keyed "thread"/"process" (see repro.engine.parallel).
        self._executors: dict = {}
        self._backend_escalated = False
        # Supervision (see repro.engine.resilience): the retry/timeout/
        # degradation policy, the lazy Supervisor facade, and the sticky
        # degradation rung (None | "thread" | "serial") — the reverse of
        # the auto escalation above.
        from repro.engine.resilience import RetryPolicy, get_default_policy

        if resilience is None:
            resilience = get_default_policy()
        elif not isinstance(resilience, RetryPolicy):
            raise ValidationError(
                f"resilience must be a RetryPolicy or None, got {resilience!r}"
            )
        self._resilience_policy = resilience
        self._supervisor = None
        self._degraded: str | None = None
        # Async submission seam (see ``submit``): one lazily-created
        # dispatch thread that serializes queries and mutations so an
        # asyncio caller can await engine work without blocking its loop.
        self._submit_pool = None
        self._submit_lock = threading.Lock()
        # Adaptive rank-tier policy inputs (see _rank_functions).
        self._rank_float_columns = 0
        self._rank_float_fallbacks = 0
        # (k, ordering count) -> per-attribute-ordering grid gathers,
        # reused across batches by _prefix_needs.
        self._grid_cache: dict[tuple[int, int], list] = {}
        self._max_row_norm: float | None = None  # lazy, see _noise_scale
        # Row-mutation journal (see repro.engine.delta): pending inserted
        # rows, the sorted live-slot tombstone array (None = no pending
        # deletes since the last compaction), and the committed matrix
        # size.  ``self.n`` always reflects the *logical* size.
        self._pending_rows: list[np.ndarray] = []
        self._live: np.ndarray | None = None
        self._committed_n = self.n
        self._dirty_rows = False
        # Delta epoch API (see repro.engine.delta / repro.engine.views):
        # ``revision`` counts effective compactions (monotone, starts at
        # 0 for the construction matrix); subscribers are notified with
        # one DeltaEvent per bump.  Materialized views register here.
        self.revision = 0
        self._delta_subscribers: list = []
        # Introspection counters (read by tests and the perf gate).
        self.stats = {
            "gemm_columns": 0,
            "verified_columns": 0,
            "memo_hits": 0,
            "memo_misses": 0,
            "rank_prefix_rows": 0,
            "parallel_calls": 0,
            "quant_columns": 0,
            "quant_resolved": 0,
            "row_inserts": 0,
            "row_deletes": 0,
            "cancelled_inserts": 0,
            "compactions": 0,
        }

    # ------------------------------------------------------------------
    # validation helpers
    def _check_weights(self, weight_matrix: np.ndarray) -> np.ndarray:
        W = np.asarray(weight_matrix, dtype=np.float64)
        if W.ndim != 2:
            raise ValidationError("weight matrix must be 2-dimensional (m, d)")
        if W.shape[1] != self.d:
            raise ValidationError(
                f"weight vectors have {W.shape[1]} entries for {self.d} attributes"
            )
        return W

    def _check_k(self, k: int) -> int:
        k = int(k)
        if not 1 <= k <= self.n:
            raise ValidationError(f"k must be in [1, n]={self.n}, got {k}")
        return k

    @property
    def packed_width(self) -> int:
        """Bytes per packed member bitset row."""
        return packed_width(self.n)

    # ------------------------------------------------------------------
    # runtime tuning (see repro.engine.autotune)
    @property
    def tuning(self) -> TuningProfile:
        """The engine's current tuning profile (read-only snapshot)."""
        return self._tuning

    def calibrate(self, budget_s: float = 0.25) -> TuningProfile:
        """Run the calibration probe now and adopt the resulting profile.

        Measures GEMM throughput, per-call overhead, pool-dispatch
        latency and the scalar/quantized kernel costs on this machine
        and this matrix (:func:`repro.engine.autotune.calibrate_engine`),
        then applies the derived profile wholesale — including over any
        explicit ``chunk_bytes`` / ``parallel_min_work`` constructor
        overrides.  Returns the profile so callers can persist it
        (:meth:`TuningProfile.save`) and restart with ``tune=profile``
        instead of re-probing.  Results stay bit-identical.
        """
        from repro.engine.autotune import calibrate_engine

        self._tune_pending = False
        self.compact()  # probe the post-mutation matrix
        profile = calibrate_engine(self, budget_s=budget_s)
        self._apply_tuning(profile)
        return profile

    def _apply_tuning(self, profile: TuningProfile) -> None:
        """Adopt ``profile`` for every subsequent call."""
        self._tuning = profile
        self._tune_pending = False
        chunk_bytes = max(int(profile.chunk_bytes), 8 * self.n)
        self._chunk_bytes = chunk_bytes
        self._chunk_cols = max(1, chunk_bytes // (8 * self.n))
        self._parallel_min_work = int(profile.parallel_min_work)
        if self._quantizer is not None:
            self._quantizer.promote_window = int(profile.quant_promote_window)
            self._quantizer.promote_limit = float(profile.quant_promote_limit)
        self._grid_cache.clear()
        # Live pools were built with the old granularity; rebuild lazily.
        self.close()

    def _sync(self) -> None:
        """Settle deferred state before serving a query.

        Applies any pending row mutations (compacting the journal into
        every derived structure, see :mod:`repro.engine.delta`) and runs
        the first-call calibration when the engine was constructed with
        ``tune="auto"``.  Every public query entry point calls this, so
        mutation and tuning latency is paid at a call boundary — never
        inside the tiered kernels.
        """
        self.compact()
        if self._tune_pending:
            self.calibrate()

    # ------------------------------------------------------------------
    # incremental row updates (see repro.engine.delta)
    def insert_rows(self, rows: np.ndarray) -> np.ndarray:
        """Append data rows; returns their new indices ``[n_old, n_new)``.

        The mutation is journaled and compacted lazily at the next query
        (or :meth:`compact`): pre-sorted orderings are merge-updated,
        quantized stores are re-scaled only when the new rows escape the
        per-attribute envelope, and the memo/caches are invalidated.
        Results afterwards are bit-identical to a fresh engine built on
        ``vstack([values, rows])``.
        """
        from repro.engine.delta import insert_rows

        return insert_rows(self, rows)

    def delete_rows(self, indices) -> int:
        """Delete the given row indices; returns how many were removed.

        Indices refer to the *current* matrix view; surviving rows are
        re-indexed compactly (exactly ``np.delete(values, indices,
        axis=0)`` semantics), so results afterwards are bit-identical to
        a fresh engine on the deleted matrix.  Tombstoned via the
        journal and compacted lazily, like :meth:`insert_rows`.
        """
        from repro.engine.delta import delete_rows

        return delete_rows(self, indices)

    def compact(self) -> None:
        """Apply any journaled row mutations now instead of lazily."""
        if self._dirty_rows:
            from repro.engine.delta import flush_mutations

            flush_mutations(self)

    def subscribe_delta(self, callback):
        """Register ``callback(event)`` for every effective compaction.

        The callback receives one :class:`repro.engine.delta.DeltaEvent`
        per :attr:`revision` bump, invoked after the engine has fully
        settled the journal (so it may read ``engine.values`` and even
        issue queries).  Materialized views
        (:mod:`repro.engine.views`) register their repair hooks here.
        Returns ``callback`` so it can be kept for
        :meth:`unsubscribe_delta`.  Subscribers are engine-local state:
        they do not travel through pickling or into worker clones.
        """
        self._delta_subscribers.append(callback)
        return callback

    def unsubscribe_delta(self, callback) -> None:
        """Remove a subscriber registered by :meth:`subscribe_delta`."""
        try:
            self._delta_subscribers.remove(callback)
        except ValueError:
            pass

    def _invalidate_derived(self) -> None:
        """Drop every cache whose contents depend on the data matrix.

        The explicit invalidation point for the mutation path: the
        single-probe LRU memo (keyed on weight bytes only — a mutated
        matrix would silently serve stale top-k sets), the per-(k,
        orderings) grid gathers, the cached max row norm behind the
        ulp noise bands, the chunk geometry, and the worker pools
        (whose clones/shared segments hold the pre-mutation matrix).
        """
        self._memo.clear()
        self._grid_cache.clear()
        self._max_row_norm = None
        self._chunk_cols = max(1, self._chunk_bytes // (8 * self.n))
        self._close_pools()

    # ------------------------------------------------------------------
    # parallel execution layer (see repro.engine.parallel)
    def _worker_config(self) -> dict:
        """Constructor kwargs for the per-worker serial engine clones."""
        return {
            "float32": self.float32,
            "chunk_bytes": self._chunk_bytes,
            "memo_size": self._memo_size,
            "n_jobs": 1,
            "quantize": self._quantizer.mode if self._quantizer is not None else None,
            "tune": self._tuning,
        }

    def _parallel_plan(self, m: int) -> str | None:
        """How to split an m-function call: None (serial), "functions",
        or "rows".  Function chunks need enough columns to go around;
        row chunks cover the few-functions-huge-matrix shape."""
        if self.n_jobs <= 1 or self.backend == "serial":
            return None
        if self._degraded == "serial":
            # Every pool backend kept failing for this engine; the
            # supervisor pinned it serial (sticky for the engine's
            # lifetime — a host that killed two backends stays suspect).
            return None
        if m * self.n < self._parallel_min_work:
            return None
        if m >= 2 * self.n_jobs:
            return "functions"
        if self.n >= 16 * self.n_jobs:
            return "rows"
        return None

    def _select_backend(self) -> str:
        """The concrete pool kind for this above-cutover call.

        ``"auto"`` prefers the thread pool: workers share the matrix,
        orderings and quantized stores by reference (no spawn, no
        pickling, no shared-memory segment; each clone keeps its own
        memo and counters) and NumPy releases the GIL inside BLAS, so
        GEMM-bound work scales.  Columns that reach the
        scalar kernel run Python under the GIL, however — tie fallbacks
        and quantized-tier straggler promotes alike, which is why both
        count into ``verified_columns`` — so a measured scalar ratio
        above the profile's ``backend_escalate_ratio`` escalates — permanently, for
        this engine — to the process pool.  Thread work units fold their
        counters back into these stats, so fanned-out calls feed the
        measurement too.
        """
        if self.backend != "auto":
            return self.backend
        if not self._backend_escalated:
            decided = self.stats["gemm_columns"]
            verified = self.stats["verified_columns"]
            if (
                decided >= self._tuning.backend_min_sample
                and verified > self._tuning.backend_escalate_ratio * decided
            ):
                self._backend_escalated = True
                # The thread pool is dead weight from here on; free its
                # OS threads and per-thread clones now, not at close().
                stale = self._executors.pop("thread", None)
                if stale is not None:
                    stale.close()
        return "process" if self._backend_escalated else self._tuning.initial_backend

    def _build_executor(self, kind: str):
        """Construct (and cache) the raw pool executor for ``kind``."""
        if kind == "process":
            from repro.engine.parallel import ParallelExecutor

            executor = ParallelExecutor(
                self.values,
                self._worker_config(),
                self.n_jobs,
                self._mp_context,
                units_per_worker=self._tuning.units_per_worker,
            )
        else:
            from repro.engine.parallel import ThreadExecutor

            executor = ThreadExecutor(
                self, self.n_jobs, units_per_worker=self._tuning.units_per_worker
            )
        self._executors[kind] = executor
        return executor

    def _supervised(self):
        """The supervision facade every fan-out call site goes through.

        Same ``run_function_chunks`` / ``run_row_chunks`` API as the raw
        executors, plus crash recovery, timeouts, payload validation and
        the degradation ladder (see :mod:`repro.engine.resilience`).
        """
        if self._supervisor is None:
            from repro.engine.resilience import Supervisor

            self._supervisor = Supervisor(self, self._resilience_policy)
        return self._supervisor

    @property
    def _parallel(self):
        """The most capable live executor, if any (introspection only)."""
        return self._executors.get("process") or self._executors.get("thread")

    def submit(self, method: str, /, *args, **kwargs):
        """Run ``self.<method>(*args, **kwargs)`` (or a bare callable)
        off-thread; return a :class:`concurrent.futures.Future`.

        The async submission seam used by :mod:`repro.serve`: all
        submitted work — batched queries and row mutations alike — runs
        on ONE lazily-created dispatch thread, so submissions execute in
        submission order and never interleave.  That serialization is
        what makes coalesced serving deterministic: a query submitted
        before a mutation sees the pre-mutation revision, one submitted
        after sees the post-mutation revision, with no third outcome.
        An asyncio caller bridges the returned
        :class:`concurrent.futures.Future` with
        :func:`asyncio.wrap_future`; synchronous callers just
        ``.result()`` it.

        The dispatch thread is torn down by :meth:`close` (pending work
        is cancelled, the in-flight call finishes first) and — like the
        worker pools — rebuilt lazily if the engine is used again.
        """
        if callable(method):
            # A composite operation (e.g. a view refresh) that must
            # serialize with engine work; runs on the dispatch thread.
            fn = method
        else:
            fn = getattr(self, method, None)
            if fn is None or not callable(fn) or method.startswith("_"):
                raise ValidationError(
                    f"submit() target must be a public engine method or a "
                    f"callable, got {method!r}"
                )
        if self._submit_pool is None:
            with self._submit_lock:
                if self._submit_pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    self._submit_pool = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix="engine-submit"
                    )
        return self._submit_pool.submit(fn, *args, **kwargs)

    def _close_pools(self) -> None:
        """Tear down the worker pools only (rebuilt lazily on next use)."""
        executors, self._executors = self._executors, {}
        for executor in executors.values():
            executor.close()
        if self._supervisor is not None:
            self._supervisor.reset()

    def close(self) -> None:
        """Shut down the worker pools, shared segment and dispatch thread.

        Degradation state (``_degraded``) survives close(): pools are
        rebuilt routinely (tuning changes, row mutations), but a host
        that killed two backends stays suspect for this engine's life.
        """
        pool, self._submit_pool = self._submit_pool, None
        if pool is not None:
            # A submitted call may itself close the engine; the dispatch
            # thread cannot join itself, so skip the wait in that case.
            on_pool = threading.current_thread() in getattr(pool, "_threads", ())
            pool.shutdown(wait=not on_pool, cancel_futures=True)
        self._close_pools()

    def __enter__(self) -> "ScoreEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getstate__(self) -> dict:
        """Pickle everything except the worker pools.

        Lazily-built state — the pruning orderings, the quantized
        stores and the top-k memo — travels with the engine, so an
        unpickled copy (or a worker rebuilt from one) does not re-sort
        or re-probe what the original already paid for.  Journaled row
        mutations are compacted first, so the pickled engine is clean.
        """
        self.compact()
        state = self.__dict__.copy()
        state["_executors"] = {}
        state["_supervisor"] = None
        state["_submit_pool"] = None
        del state["_submit_lock"]  # locks don't pickle; restored in __setstate__
        # Subscribers are repair hooks of views living in THIS process;
        # a pickled copy must not invoke them (and they may be
        # unpicklable bound methods holding whole view states).
        state["_delta_subscribers"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._submit_lock = threading.Lock()

    def _ensure_orderings(self) -> list["_Ordering"]:
        if self._orderings is None:
            self._orderings = self._build_orderings()
        return self._orderings

    def _thread_clone(self) -> "ScoreEngine":
        """A serial view of this engine for one thread-pool worker.

        Shares every heavy immutable structure — the matrix, its float32
        copy, the pruning orderings and the quantizer — by reference,
        and isolates the small mutable state (stats, memo, grid cache)
        so concurrent workers never write to shared objects.  The
        orderings list must be fully built before cloning; the clone
        never extends it (``_attr_orderings_built`` is pinned), it only
        reads whatever snapshot the parent maintains between calls.
        """
        clone = object.__new__(ScoreEngine)
        clone.__dict__.update(self.__dict__)
        clone.n_jobs = 1
        clone.backend = "serial"
        clone._executors = {}
        clone._supervisor = None
        clone._submit_pool = None
        clone._submit_lock = threading.Lock()
        clone._memo = OrderedDict()
        clone._grid_cache = {}
        clone._excess_work = 0
        clone._attr_orderings_built = True
        # Clones are created inside a bulk call, i.e. after _sync():
        # the journal is settled and no clone ever mutates rows.
        clone._pending_rows = []
        clone._live = None
        clone._dirty_rows = False
        clone._delta_subscribers = []
        clone._tune_pending = False
        clone.stats = dict.fromkeys(self.stats, 0)
        # The adaptive rank-quant counters are inherited as-is: the clone
        # starts from the parent's evidence and the executor folds only
        # the per-task deltas back, so nothing double-counts.
        return clone

    # ------------------------------------------------------------------
    # scoring
    def score_batch(self, weight_matrix: np.ndarray) -> np.ndarray:
        """All scores as an ``(n, m)`` float64 matrix, computed chunkwise.

        Raw GEMM output: values may differ in the last ulp across chunk
        layouts (BLAS blocking).  Consumers needing exact rank decisions
        should use :meth:`topk_batch` / :meth:`rank_of_best_batch`, which
        verify contested columns.
        """
        self._sync()
        W = self._check_weights(weight_matrix)
        m = W.shape[0]
        # Function-chunk fan-out, aligned to the serial chunk boundaries
        # so workers replay the exact serial matmul calls (raw GEMM
        # output stays bit-identical to the serial path, not merely
        # ulp-close).  Row-chunked GEMMs would not, so "rows" plans fall
        # through to the serial loop.
        if self._parallel_plan(m) == "functions" and m > self._chunk_cols:
            parts = self._supervised().run_function_chunks(
                "score", W, align=self._chunk_cols
            )
            return np.concatenate(parts, axis=1)
        out = np.empty((self.n, m), dtype=np.float64)
        for lo in range(0, m, self._chunk_cols):
            hi = min(m, lo + self._chunk_cols)
            np.matmul(self.values, W[lo:hi].T, out=out[:, lo:hi])
            self.stats["gemm_columns"] += hi - lo
        return out

    # ------------------------------------------------------------------
    # batched top-k
    def topk_batch(self, weight_matrix: np.ndarray, k: int) -> TopKBatch:
        """Top-k of every weight row: one chunked GEMM + per-column select.

        Returns best-first index rows and packed member bitsets; see
        :class:`TopKBatch`.  Semantics match ``m`` calls to
        :func:`repro.ranking.topk.top_k` (score desc, index asc), with
        contested k boundaries resolved by float64 re-verification.
        """
        order = self.topk_orders(weight_matrix, k)
        members = pack_membership(order, self.n)
        return TopKBatch(members=members, order=order)

    def topk_orders(self, weight_matrix: np.ndarray, k: int) -> np.ndarray:
        """The ``(m, k)`` best-first index rows of :meth:`topk_batch`
        without bitset packing, fan-out plan included.

        For callers that never touch the packed members (K-SETr dedups
        on the index rows directly) this skips the ``O(m · n)`` bit
        packing entirely.
        """
        self._sync()
        W = self._check_weights(weight_matrix)
        k = self._check_k(k)
        m = W.shape[0]
        plan = self._parallel_plan(m)
        if plan == "functions":
            parts = self._supervised().run_function_chunks("topk", W, args=(k,))
            return np.concatenate(parts, axis=0)
        if plan == "rows":
            parts = self._supervised().run_row_chunks("topk_rows", W, self.n, args=(k,))
            return self._topk_merge_candidates(W, k, parts)
        return self.topk_order_batch(W, k)

    def topk_order_batch(self, weight_matrix: np.ndarray, k: int) -> np.ndarray:
        """The ``(m, k)`` best-first index rows of :meth:`topk_batch`,
        without bitset packing.

        This is the serial tiered evaluation — also the function-chunk
        work unit the parallel layer ships to workers (packing happens
        once, in the parent, over the merged order matrix).
        """
        self._sync()
        W = self._check_weights(weight_matrix)
        k = self._check_k(k)
        m = W.shape[0]
        order = np.empty((m, k), dtype=np.int64)
        for lo in range(0, m, self._chunk_cols):
            hi = min(m, lo + self._chunk_cols)
            self._topk_chunk(W[lo:hi], k, order[lo:hi])
            self.stats["gemm_columns"] += hi - lo
        return order

    def _topk_chunk(self, Wc: np.ndarray, k: int, out_order: np.ndarray) -> None:
        """Fill ``out_order`` (mc, k) with the top-k of one column chunk.

        Tiered resolution, cheapest first:

        0. int8/int16 quantized screening (when enabled): one integer
           GEMM bounds every score rigorously; functions whose candidate
           set resolves inside the envelope are finished with one tiny
           exact rescore, the rest are promoted;
        1. float32 norm-pruned batch (when ``float32=True``);
        2. float64 norm-pruned batch for the rows tier 1 left contested;
        3. the scalar float64 GEMV algorithm, verbatim, for rows with
           genuine (near-)ties at a decision boundary.

        Each tier only sees the rows the previous tier could not decide,
        so clean data runs almost entirely in the bottom tier while
        degenerate data degrades gracefully to the seed's exact
        per-probe cost.
        """
        n = self.n
        if k >= n:
            self._topk_full_rank(Wc, k, out_order)
            return
        if self._quantizer is not None and self._quantizer.active:
            promoted = self._quant_topk_chunk(Wc, k, out_order)
            if promoted.size == 0:
                return
            if promoted.size <= self._tuning.quant_scalar_promote:
                # A handful of stragglers: the scalar kernel per function
                # is cheaper than spinning up the batch-tier machinery,
                # and identical by the exactness contract.
                for j in promoted:
                    out_order[j] = self._verified_topk_column(Wc[j], k)
                    self.stats["verified_columns"] += 1
                return
            if promoted.size < Wc.shape[0]:
                sub_order = np.empty((promoted.size, k), dtype=np.int64)
                self._float_tiers(np.ascontiguousarray(Wc[promoted]), k, sub_order)
                out_order[promoted] = sub_order
                return
        self._float_tiers(Wc, k, out_order)

    def _float_tiers(self, Wc: np.ndarray, k: int, out_order: np.ndarray) -> None:
        """Tiers 1-3: the float32/float64 batch passes + scalar fallback."""
        if self.float32:
            contested = self._topk_tier(Wc, k, out_order, use_f32=True)
            if contested.size:
                sub_order = np.empty((contested.size, k), dtype=np.int64)
                Wsub = np.ascontiguousarray(Wc[contested])
                still = self._topk_tier(Wsub, k, sub_order, use_f32=False)
                for j in still:
                    sub_order[j] = self._verified_topk_column(Wsub[j], k)
                    self.stats["verified_columns"] += 1
                out_order[contested] = sub_order
        else:
            contested = self._topk_tier(Wc, k, out_order, use_f32=False)
            for j in contested:
                out_order[j] = self._verified_topk_column(Wc[j], k)
                self.stats["verified_columns"] += 1

    def _quant_topk_chunk(self, Wc: np.ndarray, k: int, out_order: np.ndarray) -> np.ndarray:
        """Tier 0: integer-envelope top-k screening; returns promoted rows.

        One integer GEMM over a routed prefix bounds every score from
        both sides (:mod:`repro.engine.quantize`).  A probe over the top
        of the norm ordering yields a rigorous lower bound ``thr`` on
        each function's k-th score; every row whose upper bound reaches
        ``thr`` is a candidate, and the candidate set provably contains
        the whole top-k *including any boundary ties*.  Functions whose
        candidate count stays within the cap are finished here: the few
        candidates are re-scored exactly in float64 and ordered with the
        usual ulp-band checks (near-ties fall to the scalar kernel
        verbatim), so the result is bit-identical to the scalar path.
        Functions whose k-boundary sits inside the quantization envelope
        — candidate counts past the cap — are promoted to the float
        tiers, and the promote rate feeds the quantizer's adaptive
        int8 → int16 → off policy.
        """
        n = self.n
        mc = Wc.shape[0]
        if 4 * k >= n:
            # The probe would cover (most of) the matrix; the float tiers
            # resolve such shapes directly from their own probe.
            return np.arange(mc)
        state = self._quantizer.state
        if state is None:
            return np.arange(mc)
        Wq, b, usum, degenerate = state.quantize_weights(Wc)
        orderings = self._ensure_orderings()
        self.stats["quant_columns"] += mc
        # Probe: each function's k-th best *exact* score over the head of
        # the norm ordering cannot exceed its true k-th score, so (minus
        # the GEMM noise band) it is a rigorous screening threshold for
        # the whole matrix — and it is tighter than a quantized probe by
        # the width of the quantization envelope.
        c0 = min(n, max(4 * k, 64))
        use_f32 = self.float32
        _, _, block_scores = self._prefix_eval(orderings[0], Wc, k, c0, use_f32)
        L = block_scores.min(axis=1).astype(np.float64)
        eps = float(np.finfo(np.float64).eps)
        eps_probe = float(np.finfo(np.float32 if use_f32 else np.float64).eps)
        noise = self._noise_scale(Wc)
        tol = _TIE_BAND_ULPS * eps * noise
        thr = L - 4.0 * _TIE_BAND_ULPS * eps_probe * noise
        self._accumulate_probe_demand(Wc, thr)
        needs = self._prefix_needs(Wc, thr, k)
        best_o = np.argmin(needs, axis=1)
        cap = int(min(n, max(3 * k, 24)))
        # Candidate ids and exact scores for the whole chunk, scattered
        # into one rectangle (-1 / -inf pads): groups only screen and
        # gather, so the expensive finish — selection, ordering, band
        # checks — runs once per chunk, not once per (ordering, group).
        padded_ids = np.full((mc, cap), -1, dtype=np.int64)
        padded_scores = np.full((mc, cap), -np.inf)
        used_cap = k
        resolved_parts: list[np.ndarray] = []
        promoted_parts = [np.flatnonzero(degenerate)]
        rest = np.flatnonzero(~degenerate)
        for o, ordering in enumerate(self._orderings):
            rows = rest[best_o[rest] == o]
            if not rows.size:
                continue
            store = state.store(o, ordering.V)
            if store is None:
                promoted_parts.append(rows)
                continue
            c = min(n, max(int(needs[rows, o].max()), k))
            S = Wq[rows] @ store.Q[:c].T  # shifted integer sums, exact
            rhs = state.upper_rhs(thr[rows], b[rows], usum[rows]).astype(S.dtype)
            flat = np.flatnonzero((S >= rhs[:, None]).ravel())
            local = flat // c
            counts = np.bincount(local, minlength=rows.size)
            # The envelope must isolate at least k and at most cap rows,
            # else the boundary sits inside quantization noise: promote.
            good = (counts >= k) & (counts <= cap)
            if not good.all():
                promoted_parts.append(rows[~good])
                keep = good[local]
                flat = flat[keep]
                local = local[keep]
                if not flat.size:
                    continue
            kept = np.where(good, counts, 0)
            used_cap = max(used_cap, int(kept.max()))
            starts = np.cumsum(kept) - kept
            pos = np.arange(flat.size, dtype=np.int64) - starts[local]
            func = rows[local]
            gids = ordering.perm[flat % c]
            padded_ids[func, pos] = gids
            # Exact per-candidate float64 dots (the scalar kernel's
            # per-row accumulation), computed flat — no padding waste.
            padded_scores[func, pos] = np.einsum(
                "ij,ij->i", self.values[gids], Wc[func]
            )
            resolved_parts.append(rows[good])
        if resolved_parts:
            resolved = np.sort(np.concatenate(resolved_parts))
            self._quant_topk_finish(
                resolved,
                padded_ids[resolved, :used_cap],
                padded_scores[resolved, :used_cap],
                Wc,
                k,
                tol,
                out_order,
            )
        promoted = np.sort(np.concatenate(promoted_parts))
        self.stats["quant_resolved"] += mc - promoted.size
        self._quantizer.observe(mc, promoted.size)
        return promoted

    def _quant_topk_finish(
        self,
        rows: np.ndarray,
        gids: np.ndarray,
        scores: np.ndarray,
        Wc: np.ndarray,
        k: int,
        tol: np.ndarray,
        out_order: np.ndarray,
    ) -> None:
        """Order the screened candidates' k-blocks and write the top-k.

        ``gids``/``scores`` hold each function's candidate row ids and
        exact float64 scores (-1 / -inf pads).  The k-block is selected
        and ordered by score alone: for an uncontested function every
        boundary-deciding gap exceeds the ulp band, so score order *is*
        the scalar (score desc, index asc) order; any (near-)tie — which
        could make block content or internal order diverge from the
        scalar tie-break — lands in the banded checks and falls back to
        the scalar algorithm verbatim, exactly like the float tiers.
        """
        cap = scores.shape[1]
        if cap > k:
            blk = np.argpartition(scores, cap - k, axis=1)[:, cap - k :]
            blk_scores = np.take_along_axis(scores, blk, axis=1)
            blk_ids = np.take_along_axis(gids, blk, axis=1)
        else:
            blk_scores = scores
            blk_ids = gids
        order_in = np.argsort(-blk_scores, axis=1, kind="stable")
        sorted_scores = np.take_along_axis(blk_scores, order_in, axis=1)
        kth = sorted_scores[:, k - 1]
        tol_rows = tol[rows]
        contested = (scores >= (kth - tol_rows)[:, None]).sum(axis=1) != k
        if k > 1:
            tight = np.diff(sorted_scores, axis=1) > -tol_rows[:, None]
            contested |= tight.any(axis=1)
        out_order[rows] = np.take_along_axis(blk_ids, order_in, axis=1)
        for j in np.flatnonzero(contested):
            out_order[rows[j]] = self._verified_topk_column(Wc[rows[j]], k)
            self.stats["verified_columns"] += 1

    def _topk_full_rank(self, Wc: np.ndarray, k: int, out_order: np.ndarray) -> None:
        """k ≥ n: full ranking per function via one batched lexsort.

        Rows with (near-)tied neighbours still fall back, because tied
        reals need not be bit-identical between GEMM and the scalar GEMV
        path we promise to match.
        """
        n = self.n
        mc = Wc.shape[0]
        S = Wc @ self.values.T  # (mc, n)
        eps = float(np.finfo(np.float64).eps)
        tol = _TIE_BAND_ULPS * eps * np.max(np.abs(S), axis=1)
        keys_idx = np.broadcast_to(np.arange(n, dtype=np.int64), (mc, n))
        full_order = np.lexsort((keys_idx, -S), axis=-1)  # (mc, n)
        sorted_scores = np.take_along_axis(S, full_order, axis=1)
        tight = (np.diff(sorted_scores, axis=1) > -tol[:, None]).any(axis=1)
        out_order[:] = full_order
        for j in np.flatnonzero(tight):
            out_order[j] = self._verified_topk_column(Wc[j], k)
            self.stats["verified_columns"] += 1

    def _build_orderings(self) -> list["_Ordering"]:
        """Candidate row orders with per-position score upper bounds.

        Ordering 0 sorts rows by Euclidean norm descending: any row at
        position ≥ p scores at most ``‖row_p‖·‖w‖`` (Cauchy–Schwarz).
        Ordering j+1 sorts by attribute j descending with the two-term
        bound ``w_j·x_j(p) + ‖w_{−j}‖·maxrest_j(p)`` (valid when
        ``w_j ≥ 0``), which prunes sharply for axis-dominant functions —
        exactly the probes MDRC's cell corners generate — where the plain
        norm bound is loose.  Per-attribute orders are skipped when the
        extra copies would be large relative to the matrix itself.
        """
        row_norms = robust_row_norms(self.values)
        perm = np.argsort(-row_norms, kind="stable")
        norm_ordering = _Ordering(
            perm=perm,
            V=np.ascontiguousarray(self.values[perm]),
            V32=None,
            u=row_norms[perm],
            v=np.zeros(self.n),
            attribute=-1,
        )
        if self.float32:
            norm_ordering.V32 = norm_ordering.V.astype(np.float32)
        return [norm_ordering]

    def _build_attribute_orderings(self) -> None:
        """Add the per-attribute orderings (lazily, once justified)."""
        self._attr_orderings_built = True
        if self.n * self.d * (self.d + 1) * 8 > (1 << 29):
            return  # the extra copies would dwarf the matrix; skip
        for j in range(self.d):
            perm = np.argsort(-self.values[:, j], kind="stable")
            rest = robust_rest_norms(self.values, j)[perm]
            ordering = _Ordering(
                perm=perm,
                V=np.ascontiguousarray(self.values[perm]),
                V32=None,
                u=self.values[perm, j],
                v=np.maximum.accumulate(rest[::-1])[::-1],
                attribute=j,
                rest=rest,
            )
            if self.float32:
                ordering.V32 = ordering.V.astype(np.float32)
            self._orderings.append(ordering)

    def _bound_coeffs(self, Wc: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per (function, ordering) bound coefficients ``a·u(p) + b·v(p)``.

        Entries are NaN for ineligible pairs (an attribute ordering's
        first term only bounds when that weight component is ≥ 0).
        """
        mc = Wc.shape[0]
        w_norms = np.linalg.norm(Wc, axis=1)
        A = np.empty((mc, len(self._orderings)))
        B = np.zeros((mc, len(self._orderings)))
        A[:, 0] = w_norms
        for o, ordering in enumerate(self._orderings[1:], start=1):
            wj = Wc[:, ordering.attribute]
            A[:, o] = np.where(wj >= 0.0, wj, np.nan)
            B[:, o] = np.sqrt(np.maximum(w_norms**2 - wj**2, 0.0))
        return A, B

    def _accumulate_probe_demand(self, Wc: np.ndarray, thr: np.ndarray) -> None:
        """Build the attribute orderings once probe volume justifies them.

        Charged with each batch's norm-ordering needs: when the
        accumulated prefix work exceeds a few full passes over the
        matrix, the sharper per-attribute orders pay for their argsorts
        and copies.
        """
        if self._attr_orderings_built:
            return
        norm_coeff = np.linalg.norm(Wc, axis=1)
        with np.errstate(divide="ignore"):
            first_need = np.searchsorted(
                -self._orderings[0].u,
                -(thr / np.where(norm_coeff > 0.0, norm_coeff, np.inf)),
                side="right",
            )
        self._excess_work += int(first_need.sum())
        if self._excess_work > 8 * self.n * (self.d + 1):
            self._build_attribute_orderings()

    def _prefix_needs(self, Wc: np.ndarray, thr: np.ndarray, k: int) -> np.ndarray:
        """Sufficient prefix sizes, one per (function, ordering).

        Every row beyond position ``needs[i, o]`` of ordering ``o``
        provably scores below ``thr[i]``.  Exact (searchsorted) under the
        norm ordering; quantized to a doubling grid under the attribute
        orderings, whose two-term bounds are only evaluated at grid
        positions.
        """
        n = self.n
        A, B = self._bound_coeffs(Wc)
        needs = np.empty((Wc.shape[0], len(self._orderings)), dtype=np.int64)
        needs[:, 0] = np.searchsorted(
            -self._orderings[0].u,
            -(thr / np.where(A[:, 0] > 0.0, A[:, 0], np.inf)),
            side="right",
        )
        grid = _geometric_grid(k, n)
        # The per-ordering grid gathers are probe-invariant; cache them
        # per (k, ordering count) so repeated batches skip the fancy
        # indexing (the cache is tiny: one grid-length pair per entry).
        cache_key = (int(k), len(self._orderings))
        cached = self._grid_cache.get(cache_key)
        if cached is None:
            cached = [
                (ordering.u[grid], ordering.v[grid])
                for ordering in self._orderings[1:]
            ]
            self._grid_cache[cache_key] = cached
        for o, (u_grid, v_grid) in enumerate(cached, start=1):
            bound = A[:, o, None] * u_grid[None, :] + B[:, o, None] * (
                v_grid[None, :]
            )
            # The bound is non-increasing along the grid, so the count of
            # still-live positions is the index of the first prunable one.
            with np.errstate(invalid="ignore"):
                first_dead = (bound >= thr[:, None]).sum(axis=1)
            needs[:, o] = np.append(grid, n)[first_dead]
            # Ineligible (negative-weight) pairs can never prune.
            needs[np.isnan(A[:, o]), o] = n
        return needs

    def _ordering_v32(self, ordering: "_Ordering") -> np.ndarray:
        """The ordering's float32 matrix copy, built once on demand."""
        if ordering.V32 is None:
            ordering.V32 = ordering.V.astype(np.float32)
        return ordering.V32

    def _ordering_inv(self, ordering: "_Ordering") -> np.ndarray:
        """The ordering's inverse permutation (row id -> prefix position)."""
        if ordering.inv is None:
            inv = np.empty(self.n, dtype=np.int64)
            inv[ordering.perm] = np.arange(self.n, dtype=np.int64)
            ordering.inv = inv
        return ordering.inv

    def _noise_scale(self, W: np.ndarray) -> np.ndarray:
        """Per-function magnitude bound for GEMM rounding noise.

        Floating-point dot-product error scales with ``sum_i |w_i x_i| <=
        ||w|| * max_row ||x||`` — NOT with the resulting score, which can
        be far smaller under cancellation (mixed-sign weights, or
        near-opposite columns).  Every ulp band in the counting paths
        must therefore be scaled by this bound rather than by ``|best|``,
        or rows can cross a threshold by more than the band and be
        miscounted without ever triggering the exact fallback.
        """
        if self._max_row_norm is None:
            self._max_row_norm = float(robust_row_norms(self.values).max())
        return np.linalg.norm(W, axis=1) * self._max_row_norm

    def _topk_tier(
        self, Wc: np.ndarray, k: int, out_order: np.ndarray, use_f32: bool
    ) -> np.ndarray:
        """One batched top-k attempt; returns the still-contested row ids.

        A small norm-ordered probe establishes each function's k-th-best
        score L; the per-ordering bounds then give a *sufficient* prefix
        size per (function, ordering) — every row outside that prefix
        provably scores below ``L − 4·tol``.  Each function is routed to
        its cheapest ordering and evaluated once at that size, so
        selection cost tracks the candidate count instead of n.
        Uncontested rows are written to ``out_order``; rows with any
        (near-)tie at the k boundary or between ranked neighbours are
        returned for the next tier.
        """
        n = self.n
        mc = Wc.shape[0]
        eps = float(np.finfo(np.float32 if use_f32 else np.float64).eps)
        if self._orderings is None:
            self._orderings = self._build_orderings()
        norm_ord = self._orderings[0]

        c0 = n if 4 * k >= n else min(n, max(4 * k, 64))
        S, blk, block_scores = self._prefix_eval(norm_ord, Wc, k, c0, use_f32)
        L = block_scores.min(axis=1)
        thr = L - 4.0 * _TIE_BAND_ULPS * eps * np.abs(L)

        contested_parts: list[np.ndarray] = []
        if c0 == n:
            # No pruning happened, so no pruning-threshold caveat applies.
            return self._finalize(
                np.arange(mc), S, blk, block_scores, norm_ord, Wc, k, use_f32,
                out_order, np.full(mc, -np.inf), eps,
            )

        # Exact need under the norm ordering, grid-quantized need under
        # the attribute orderings; route each function to the cheapest.
        # The attribute orderings are only constructed once enough probe
        # demand has accumulated to amortize their argsorts and copies.
        self._accumulate_probe_demand(Wc, thr)
        needs = self._prefix_needs(Wc, thr, k)
        best_o = np.argmin(needs, axis=1)

        # The probe already holds the full answer for functions whose
        # norm-ordering need fits inside it.
        done = np.flatnonzero(needs[:, 0] <= c0)
        if done.size:
            contested_parts.append(
                self._finalize(
                    done, S[done], blk[done], block_scores[done], norm_ord, Wc,
                    k, use_f32, out_order, thr, eps,
                )
            )
        rest = np.setdiff1d(np.arange(mc), done, assume_unique=True)
        for o, ordering in enumerate(self._orderings):
            rows = rest[best_o[rest] == o]
            if not rows.size:
                continue
            c = min(n, max(int(needs[rows, o].max()), k + 1))
            Wrows = np.ascontiguousarray(Wc[rows])
            So, blko, bso = self._prefix_eval(ordering, Wrows, k, c, use_f32)
            contested_parts.append(
                self._finalize(
                    rows, So, blko, bso, ordering, Wc, k, use_f32, out_order,
                    thr, eps,
                )
            )
        parts = [p for p in contested_parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.intp)
        return np.sort(np.concatenate(parts))

    def _prefix_eval(
        self,
        ordering: "_Ordering",
        Wc: np.ndarray,
        k: int,
        c: int,
        use_f32: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Score a prefix and select its top-k block (prefix-local ids)."""
        V = ordering.V32 if use_f32 else ordering.V
        Wgemm = Wc.astype(np.float32) if use_f32 else Wc
        S = Wgemm @ V[:c].T  # (mc, c)
        if c > k:
            blk = np.argpartition(S, c - k, axis=1)[:, c - k :]
        else:
            blk = np.broadcast_to(np.arange(c), (Wc.shape[0], c))
        return S, blk, np.take_along_axis(S, blk, axis=1)

    def _finalize(
        self,
        rows: np.ndarray,
        S: np.ndarray,
        blk: np.ndarray,
        block_scores: np.ndarray,
        ordering: "_Ordering",
        Wc: np.ndarray,
        k: int,
        use_f32: bool,
        out_order: np.ndarray,
        thr: np.ndarray,
        eps: float,
    ) -> np.ndarray:
        """Contest-check and write one evaluated group; return contested ids.

        ``rows`` are chunk-level function ids; ``S``/``blk``/``block_scores``
        are their prefix evaluation under ``ordering``.
        """
        kth = block_scores.min(axis=1)
        top = block_scores.max(axis=1)
        # Noise scale of the scores involved in boundary decisions.
        tol = _TIE_BAND_ULPS * eps * np.maximum(np.abs(top), np.abs(kth))
        # Exactly k prefix scores at-or-above the banded threshold ⇔ the
        # boundary is uncontested and the block is the unique answer —
        # provided the pruning threshold really cleared the band (it can
        # fail to when the probe's L underestimated the true k-th score
        # by more than the 4× margin; those rows go to the next tier).
        contested = ((S >= (kth - tol)[:, None]).sum(axis=1) != k) | (
            thr[rows] > kth - tol
        )

        fast = np.flatnonzero(~contested)
        if fast.size:
            fblk = ordering.perm[blk[fast]]  # global row ids
            if use_f32:
                # Order by float64 scores recomputed per row (batched
                # matvec: no einsum path search on the hot loop).
                scr = np.matmul(
                    self.values[fblk], Wc[rows[fast], :, None]
                )[:, :, 0]
            else:
                scr = block_scores[fast]
            if k > 1:
                order_in_blk = np.lexsort((fblk, -scr), axis=-1)  # (f, k)
                out_order[rows[fast]] = np.take_along_axis(
                    fblk, order_in_blk, axis=-1
                )
                # Intra-block (near-)ties are contested too: ordering by
                # batch scores could flip what the scalar kernel returns.
                sorted_scores = np.take_along_axis(scr, order_in_blk, axis=-1)
                tight = (np.diff(sorted_scores, axis=1) > -tol[fast, None]).any(axis=1)
                contested[fast[tight]] = True
            else:
                out_order[rows[fast]] = fblk
        return rows[np.flatnonzero(contested)]

    def _verified_topk_column(self, w: np.ndarray, k: int) -> np.ndarray:
        """Exact top-k of one contested column.

        Falls back to the scalar algorithm verbatim: one float64 GEMV —
        the same kernel :func:`repro.ranking.topk.top_k` uses, so the
        result is bit-identical to the scalar path by construction, and
        identical rows receive identical scores (per-row accumulation,
        unlike the blocked GEMM of the fast path) — then the seed's
        over-select / lexsort boundary handling.
        """
        n = self.n
        score = self.values @ w
        if k >= n:
            candidates = np.arange(n)
        else:
            kth = np.partition(score, n - k)[n - k]
            candidates = np.flatnonzero(score >= kth)
        ordering = np.lexsort((candidates, -score[candidates]))
        return candidates[ordering[:k]].astype(np.int64)

    # ------------------------------------------------------------------
    # memoized single probes
    def top_k_packed(self, weights: np.ndarray, k: int) -> TopKBatch:
        """Single-function top-k behind the LRU memo.

        Returns a :class:`TopKBatch` with ``m = 1``; treat the arrays as
        read-only — they are shared with the memo.
        """
        self._sync()
        w = np.ascontiguousarray(np.asarray(weights, dtype=np.float64).reshape(-1))
        if w.size != self.d:
            raise ValidationError(
                f"weight vector has {w.size} entries for {self.d} attributes"
            )
        k = self._check_k(k)
        key = (w.tobytes(), k)
        hit = self._memo.get(key)
        if hit is not None:
            self._memo.move_to_end(key)
            self.stats["memo_hits"] += 1
            return hit
        self.stats["memo_misses"] += 1
        entry = self.topk_batch(w[None, :], k)
        self._memo[key] = entry
        if len(self._memo) > self._memo_size:
            self._memo.popitem(last=False)
        return entry

    def top_k(self, weights: np.ndarray, k: int) -> np.ndarray:
        """Best-first top-k indices of one function (memoized)."""
        return self.top_k_packed(weights, k).order[0]

    # ------------------------------------------------------------------
    # batched rank counting
    def _check_subset(self, subset: np.ndarray) -> np.ndarray:
        members = np.asarray(sorted({int(i) for i in np.asarray(subset).reshape(-1)}))
        if members.size == 0:
            raise ValidationError("subset must be non-empty")
        if members[0] < 0 or members[-1] >= self.n:
            raise ValidationError("subset indices out of range")
        return members

    def rank_of_best_batch(
        self, weight_matrix: np.ndarray, subset: np.ndarray
    ) -> np.ndarray:
        """Per function, the rank of the best ``subset`` member.

        Returns ``(m,)`` int64: ``1 +`` the number of rows scoring
        *strictly* above the subset's best score under each function —
        the quantity the Monte-Carlo rank-regret estimator maximizes.

        Counting is pruned and tiered: the subset's best score (one
        small float64 GEMM over the member rows) is a lower bound no
        counted row may miss, so each function is routed to the
        norm/attribute ordering with the smallest sufficient prefix and
        counted over that prefix only, in float32, in cache-sized fused
        chunks.  Any function with a non-member row inside the float32
        ulp band around the bound is recomputed with the deterministic
        scalar float64 kernel — so GEMM noise (e.g. between identical
        rows) can never inflate a rank, and the result is bit-identical
        to the pre-pruning full-scan path for every input.
        """
        self._sync()
        W = self._check_weights(weight_matrix)
        members = self._check_subset(subset)
        m = W.shape[0]
        plan = self._parallel_plan(m)
        if plan == "functions":
            parts = self._supervised().run_function_chunks("rank", W, args=(members,))
            return np.concatenate(parts)
        if plan == "rows":
            return self._rank_row_merge(W, members)
        return self._rank_functions(W, members)

    def _rank_functions(self, W: np.ndarray, members: np.ndarray) -> np.ndarray:
        """Serial pruned rank counting (also the function-chunk work unit).

        Tiered like :meth:`_topk_chunk`, with one twist: on clean data
        the float32 banded count and the quantized screen issue the same
        GEMM, but the screen pays extra threshold passes and a band
        gather, so quantization only *wins* when the float path keeps
        dropping whole functions to the exact scalar kernel (tie-dense
        or duplicate-heavy data, where each drop costs a full ``n·d``
        rescan).  The engine therefore measures the float path's
        fallback rate and engages the quantized screen — which resolves
        the same near-ties from a small exact gather instead — once that
        rate crosses the profile's ``rank_quant_fallback_ratio``.  Either route is
        bit-identical to ``rank_of``.
        """
        m = W.shape[0]
        ranks = np.empty(m, dtype=np.int64)
        if m == 0:
            return ranks
        # The exactness anchor: each function's best member score, from a
        # dedicated float64 GEMM over the s << n member rows.
        member_values = self.values[members]
        best = np.empty(m)
        for lo in range(0, m, self._chunk_cols):
            hi = min(m, lo + self._chunk_cols)
            best[lo:hi] = (W[lo:hi] @ member_values.T).max(axis=1)
        use_quant = (
            self._quantizer is not None
            and self._rank_float_columns >= self._tuning.rank_quant_min_sample
            and self._rank_float_fallbacks
            > self._tuning.rank_quant_fallback_ratio * self._rank_float_columns
            and self._quantizer.active
        )
        if use_quant:
            promoted = self._quant_rank(W, members, best, ranks)
            if promoted.size == 0:
                return ranks
            if promoted.size < m:
                ranks[promoted] = self._rank_functions_float(
                    np.ascontiguousarray(W[promoted]), members, best[promoted]
                )
                return ranks
        ranks[:] = self._rank_functions_float(W, members, best)
        return ranks

    def _rank_functions_float(
        self, W: np.ndarray, members: np.ndarray, best: np.ndarray
    ) -> np.ndarray:
        """Pruned float32 banded counting (tiers 1-3 of the rank ladder)."""
        n = self.n
        m = W.shape[0]
        ranks = np.empty(m, dtype=np.int64)
        # The banded count is only sound while every quantity it compares
        # is *finite* in float32: an overflowed threshold or score is inf
        # (or nan via inf * 0 in the GEMM), and inf > inf is False — rows
        # scoring strictly above the bound would be silently dropped from
        # BOTH the `above` and `near` counts, so the near-band mismatch
        # check that normally forces the exact fallback never fires and
        # the rank is undercounted.  The same silent escape happens at
        # the *bottom* of the range: when the score bound is subnormal
        # in float32 the band ``_TIE_BAND_ULPS * eps32 * nscale``
        # flushes to zero, every score collapses onto ``best`` exactly,
        # and the strict two-sided band test counts nothing on either
        # side — rows genuinely above the bound (e.g. 1e-300 vs 0.0)
        # are dropped without ever being flagged contested.  Functions
        # whose magnitude bounds (||w||, max ||row||, or their product
        # — the score bound) leave the float32 range in either
        # direction therefore skip the float32 tier entirely and count
        # with the exact float64 kernel.
        f32_lim = float(np.finfo(np.float32).max) / 8.0
        f32_sub = float(np.finfo(np.float32).tiny) / float(np.finfo(np.float32).eps)
        nscale = self._noise_scale(W)
        w_norms = np.linalg.norm(W, axis=1)
        unsafe = (
            (nscale >= f32_lim)
            | (w_norms >= f32_lim)
            | ((nscale > 0.0) & (nscale <= f32_sub))
        )
        if self._max_row_norm >= f32_lim:
            unsafe[:] = True
        if unsafe.any():
            for j in np.flatnonzero(unsafe):
                exact = self.values @ W[j]
                ranks[j] = int((exact > exact[members].max()).sum()) + 1
                self.stats["verified_columns"] += 1
            self._rank_float_columns += int(unsafe.sum())
            self._rank_float_fallbacks += int(unsafe.sum())
            safe = np.flatnonzero(~unsafe)
            if safe.size:
                ranks[safe] = self._rank_functions_float(
                    np.ascontiguousarray(W[safe]), members, best[safe]
                )
            return ranks
        fallbacks_before = self.stats["verified_columns"]
        eps32 = float(np.finfo(np.float32).eps)
        # Band scaled by the rounding-noise bound ||w|| * max ||row||, not
        # by |best|: under cancellation float32 scores can be off by far
        # more than any |best|-relative band, and rows must land in the
        # contested band (-> exact fallback) rather than be miscounted.
        tol = _TIE_BAND_ULPS * eps32 * nscale
        thr = best - 4.0 * tol
        if self._orderings is None:
            self._orderings = self._build_orderings()
        self._accumulate_probe_demand(W, thr)
        needs = self._prefix_needs(W, thr, self._tuning.rank_grid_base)
        best_o = np.argmin(needs, axis=1)
        need = np.clip(needs[np.arange(m), best_o], 1, n)
        # Quantize prefix sizes to a doubling grid so one GEMM serves a
        # whole group of similarly-needy functions.
        sizes = np.append(_geometric_grid(self._tuning.rank_grid_base, n), n)
        bucket = np.searchsorted(sizes, need)
        W32 = W.astype(np.float32)
        hi_t = (best + tol).astype(np.float32)
        lo_t = (best - tol).astype(np.float32)
        group_key = best_o * (len(sizes) + 1) + bucket
        order = np.argsort(group_key, kind="stable")
        starts = np.flatnonzero(np.diff(group_key[order])) + 1
        for group in np.split(order, starts):
            ordering = self._orderings[int(best_o[group[0]])]
            c = int(sizes[bucket[group[0]]])
            prefix32 = self._ordering_v32(ordering)[:c]
            positions = self._ordering_inv(ordering)[members]
            in_prefix = positions[positions < c]
            # Fused count chunks: size the float32 score buffer to sit in
            # cache so the threshold passes run on hot data.
            cols = max(16, min(1024, self._tuning.rank_buffer_bytes // (4 * c)))
            for glo in range(0, group.size, cols):
                rows = group[glo : glo + cols]
                S = W32[rows] @ prefix32.T  # (|rows|, c)
                above = (S > hi_t[rows][:, None]).sum(axis=1)
                near = (S > lo_t[rows][:, None]).sum(axis=1)
                if in_prefix.size:
                    member_near = (
                        S[:, in_prefix] > lo_t[rows][:, None]
                    ).sum(axis=1)
                else:
                    member_near = 0
                self.stats["gemm_columns"] += rows.size
                self.stats["rank_prefix_rows"] += rows.size * c
                # Members never clear best + tol, so `above` counts
                # non-members only; a non-member inside the band means
                # the float32 decision is contestable -> exact fallback.
                for j in np.flatnonzero(near - member_near != above):
                    exact = self.values @ W[rows[j]]
                    above[j] = int((exact > exact[members].max()).sum())
                    self.stats["verified_columns"] += 1
                ranks[rows] = above + 1
        # Feed the adaptive rank-tier policy (see _rank_functions).
        self._rank_float_columns += m
        self._rank_float_fallbacks += self.stats["verified_columns"] - fallbacks_before
        return ranks

    def _quant_rank(
        self,
        W: np.ndarray,
        members: np.ndarray,
        best: np.ndarray,
        ranks: np.ndarray,
    ) -> np.ndarray:
        """Tier 0 of rank counting: integer screening; returns promoted rows.

        Per function, one integer GEMM over the routed prefix splits the
        rows three ways with rigorous bounds: *surely above* the
        subset's best score (counted without ever computing an exact
        score), *surely below* (ignored), and an *envelope band* that is
        gathered and re-scored exactly.  Band rows within the ulp band
        of ``best`` drop the whole function to the exact scalar kernel;
        a band wider than the profile's ``quant_rank_cap`` promotes the function to
        the float32 banded count instead.  Counts written into ``ranks``
        are bit-identical to the full-scan scalar path.
        """
        n = self.n
        m = W.shape[0]
        state = self._quantizer.state
        if state is None:
            return np.arange(m)
        Wq, b, usum, degenerate = state.quantize_weights(W)
        self._ensure_orderings()
        self.stats["quant_columns"] += m
        eps = float(np.finfo(np.float64).eps)
        tol = _TIE_BAND_ULPS * eps * self._noise_scale(W)
        thr = best - 4.0 * tol
        self._accumulate_probe_demand(W, thr)
        needs = self._prefix_needs(W, thr, self._tuning.rank_grid_base)
        best_o = np.argmin(needs, axis=1)
        need = np.clip(needs[np.arange(m), best_o], 1, n)
        sizes = np.append(_geometric_grid(self._tuning.rank_grid_base, n), n)
        bucket = np.searchsorted(sizes, need)
        is_member = np.zeros(n, dtype=bool)
        is_member[members] = True
        promoted_parts = [np.flatnonzero(degenerate)]
        group_key = best_o * (len(sizes) + 1) + bucket
        rest = np.flatnonzero(~degenerate)
        order = rest[np.argsort(group_key[rest], kind="stable")]
        starts = np.flatnonzero(np.diff(group_key[order])) + 1
        for group in np.split(order, starts) if order.size else []:
            ordering = self._orderings[int(best_o[group[0]])]
            store = state.store(int(best_o[group[0]]), ordering.V)
            if store is None:
                promoted_parts.append(group)
                continue
            c = int(sizes[bucket[group[0]]])
            Qc = store.Q[:c]
            absq = store.absq[:c]
            itemsize = Qc.dtype.itemsize
            cols = max(16, min(1024, self._tuning.rank_buffer_bytes // (itemsize * c)))
            for glo in range(0, group.size, cols):
                rows = group[glo : glo + cols]
                S = Wq[rows] @ Qc.T  # shifted integer sums, exact in carrier
                rhs_hi = state.lower_rhs(
                    best[rows] + tol[rows], b[rows], usum[rows]
                ).astype(S.dtype)
                rhs_lo = state.upper_rhs(
                    best[rows] - tol[rows], b[rows], usum[rows]
                ).astype(S.dtype)
                sure_mask = (S - absq[None, :]) > rhs_hi[:, None]
                band_mask = (S >= rhs_lo[:, None]) & ~sure_mask
                sure = sure_mask.sum(axis=1, dtype=np.int64)
                band = band_mask.sum(axis=1, dtype=np.int64)
                self.stats["gemm_columns"] += rows.size
                self.stats["rank_prefix_rows"] += rows.size * c
                ok = band <= self._tuning.quant_rank_cap
                if not ok.all():
                    promoted_parts.append(rows[~ok])
                    rows = rows[ok]
                    if not rows.size:
                        continue
                    sure = sure[ok]
                    band_mask = band_mask[ok]
                    band = band[ok]
                ranks[rows] = sure + 1
                if not band.any():
                    continue
                # Gather and exactly re-score the envelope-band rows.
                flat = np.flatnonzero(band_mask.ravel())
                starts_b = np.cumsum(band) - band
                pos = np.arange(flat.size, dtype=np.int64) - np.repeat(starts_b, band)
                row_rep = np.repeat(np.arange(rows.size, dtype=np.int64), band)
                padded = np.full((rows.size, int(band.max())), -1, dtype=np.int64)
                padded[row_rep, pos] = flat % c
                pad = padded < 0
                gids = ordering.perm[np.where(pad, 0, padded)]
                # Members sit inside the band by construction (their
                # scores ARE near best); they are never counted, and must
                # not trigger the near-tie fallback either.
                drop = pad | is_member[gids]
                scores = np.matmul(self.values[gids], W[rows][:, :, None])[:, :, 0]
                scores[drop] = -np.inf
                best_r = best[rows][:, None]
                tol_r = tol[rows][:, None]
                ranks[rows] += (scores > best_r).sum(axis=1)
                near = np.abs(scores - best_r) <= tol_r
                for j in np.flatnonzero(near.any(axis=1)):
                    exact = self.values @ W[rows[j]]
                    ranks[rows[j]] = int((exact > exact[members].max()).sum()) + 1
                    self.stats["verified_columns"] += 1
        promoted = np.sort(np.concatenate(promoted_parts))
        self.stats["quant_resolved"] += m - promoted.size
        self._quantizer.observe(m, promoted.size)
        return promoted

    def rank_count_slice(
        self, weight_matrix: np.ndarray, subset: np.ndarray, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-chunk work unit: strictly-above counts over rows [lo, hi).

        Returns ``(above, contested)``: per function, the number of rows
        in the slice scoring above the subset's best + tolerance, and
        whether any non-member slice row landed inside the ulp band (the
        parent then resolves that function with the exact scalar
        kernel).  Summing ``above`` over a partition of the rows equals
        the full-scan count because every uncontested decision is exact.
        """
        self._sync()
        W = self._check_weights(weight_matrix)
        members = self._check_subset(subset)
        best = (W @ self.values[members].T).max(axis=1)
        eps = float(np.finfo(np.float64).eps)
        tol = _TIE_BAND_ULPS * eps * self._noise_scale(W)
        S = W @ self.values[lo:hi].T
        self.stats["gemm_columns"] += W.shape[0]
        above = (S > (best + tol)[:, None]).sum(axis=1)
        near = (S > (best - tol)[:, None]).sum(axis=1)
        inside = members[(members >= lo) & (members < hi)]
        if inside.size:
            member_near = (S[:, inside - lo] > (best - tol)[:, None]).sum(axis=1)
        else:
            member_near = np.zeros(W.shape[0], dtype=np.int64)
        return above.astype(np.int64), near - member_near != above

    def _rank_row_merge(self, W: np.ndarray, members: np.ndarray) -> np.ndarray:
        """Fan a small batch out over row chunks and merge the counts.

        Row chunks scan the full matrix, so they only pay off when the
        pruned serial path could not already cut the work: a cheap
        norm-ordering probe routes strongly-prunable calls back to
        :meth:`_rank_functions` instead of inflating total work across
        the pool.
        """
        if self._orderings is None:
            self._orderings = self._build_orderings()
        best = (W @ self.values[members].T).max(axis=1)
        eps32 = float(np.finfo(np.float32).eps)
        thr = best - 4.0 * _TIE_BAND_ULPS * eps32 * self._noise_scale(W)
        norms = np.linalg.norm(W, axis=1)
        need = np.searchsorted(
            -self._orderings[0].u,
            -(thr / np.where(norms > 0.0, norms, np.inf)),
            side="right",
        )
        if int(need.max(initial=0)) < self.n // 2:
            return self._rank_functions(W, members)
        parts = self._supervised().run_row_chunks(
            "rank_rows", W, self.n, args=(members,)
        )
        above = np.zeros(W.shape[0], dtype=np.int64)
        contested = np.zeros(W.shape[0], dtype=bool)
        for part_above, part_contested in parts:
            above += part_above
            contested |= part_contested
        for j in np.flatnonzero(contested):
            exact = self.values @ W[j]
            above[j] = int((exact > exact[members].max()).sum())
            self.stats["verified_columns"] += 1
        return above + 1

    # ------------------------------------------------------------------
    # row-chunked top-k (work unit + merge)
    def topk_candidates_slice(
        self, weight_matrix: np.ndarray, k: int, lo: int, hi: int
    ) -> list[np.ndarray]:
        """Row-chunk work unit: top-k *candidates* within rows [lo, hi).

        Per function, every slice row whose GEMM score reaches the
        slice's k-th best minus the ulp band — a superset of the rows
        that can appear in the global top-k, since a true top-k row
        ranks in the top-k of its own slice by exact scores and GEMM
        deviations are far smaller than the band.
        """
        self._sync()
        W = self._check_weights(weight_matrix)
        k = self._check_k(k)
        height = hi - lo
        S = W @ self.values[lo:hi].T  # (m, height)
        self.stats["gemm_columns"] += W.shape[0]
        if k >= height:
            full = np.arange(lo, hi, dtype=np.int64)
            return [full] * W.shape[0]
        eps = float(np.finfo(np.float64).eps)
        tol = _TIE_BAND_ULPS * eps * self._noise_scale(W)
        blk = np.argpartition(S, height - k, axis=1)[:, height - k :]
        kth = np.take_along_axis(S, blk, axis=1).min(axis=1)
        return [
            (lo + np.flatnonzero(S[i] >= kth[i] - tol[i])).astype(np.int64)
            for i in range(W.shape[0])
        ]

    def _topk_merge_candidates(
        self, W: np.ndarray, k: int, parts: list[list[np.ndarray]]
    ) -> np.ndarray:
        """Merge per-slice candidate lists into exact top-k rows.

        Candidates are re-scored with per-row float64 dots (the scalar
        kernel's accumulation) and ordered by (score desc, index asc);
        any (near-)tie within the band among the boundary-deciding
        scores falls back to the scalar algorithm verbatim, exactly like
        the tiered serial path.
        """
        m = W.shape[0]
        out = np.empty((m, k), dtype=np.int64)
        eps = float(np.finfo(np.float64).eps)
        scales = self._noise_scale(W)
        for i in range(m):
            cand = np.concatenate([part[i] for part in parts])
            scores = self.values[cand] @ W[i]
            order = np.lexsort((cand, -scores))
            boundary = scores[order[: min(cand.size, k + 1)]]
            tol = _TIE_BAND_ULPS * eps * scales[i]
            if (np.diff(boundary) > -tol).any():
                out[i] = self._verified_topk_column(W[i], k)
                self.stats["verified_columns"] += 1
            else:
                out[i] = cand[order[:k]]
        return out
