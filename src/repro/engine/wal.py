"""Durable serving state: write-ahead mutation log + atomic snapshots.

A long-lived serving engine (:mod:`repro.serve`) absorbs row churn
through the delta journal (:mod:`repro.engine.delta`) — but before this
module every committed mutation lived only in memory.  A crash or
OOM-kill lost the entire revision history, and a client whose mutation
response was lost in flight could not safely retry: resending an insert
might apply it twice.  This module makes the serving tier *restartable
into the exact state it died in*:

* **Write-ahead log** (:class:`WriteAheadLog`).  Every acknowledged
  mutation is appended as one CRC-framed record before the response is
  released: the committed-state transition (the engine's
  :class:`~repro.engine.delta.DeltaEvent` stream — net deletes by old
  id plus appended rows, float64 bits preserved exactly via raw-byte
  encoding), the resulting monotone revision id, and — when the client
  supplied one — the idempotency key with the full response body.  The
  frame makes each record atomic: a crash mid-append leaves a torn tail
  that is detected (length/CRC) and truncated on the next open, so a
  record is either completely durable or never happened.  A CRC failure
  *inside* the log (a flipped bit in an already-synced record, not a
  torn tail) raises :class:`~repro.exceptions.CorruptStateError` — the
  suffix after it is acknowledged state that can no longer be trusted,
  and serving a silently wrong matrix is the one unacceptable outcome.
* **Atomic snapshots** (:func:`write_snapshot` / :func:`load_snapshot`).
  The committed matrix, its revision (the WAL watermark), the
  idempotency table and the engine's tuning profile, written with the
  same mkstemp + fsync + ``os.replace`` discipline as the checksummed
  tuning profile (PR 6): readers see either the previous snapshot or
  the complete new one, never a torn file.  The header is CRC-framed
  and the matrix bytes carry a sha256, so a corrupted snapshot is
  detected and *skipped* (recovery falls back to the previous one plus
  a longer WAL suffix).
* **Recovery** (:meth:`DurableStore.load` + :func:`replay_commits`).
  Boot loads the newest valid snapshot, replays the WAL records beyond
  its watermark through the ordinary mutation path
  (:func:`repro.engine.delta.replay_event`), and lands — by the delta
  layer's bit-identity contract — in a state where every query answers
  bit-identically to an engine that never crashed, including the
  revision counter itself (restored from the snapshot watermark so
  response ``revision`` fields line up across restarts).

The unit of logging is the **commit record**, not the individual
journal call: one record carries every delta event a mutation barrier
produced *plus* its idempotency key and response.  That single-frame
atomicity is what makes exactly-once work: if the record is durable the
retry finds the key and replays the stored response; if it is torn away
the mutation never happened and the retry applies it fresh.  There is
no window where the state change survived but the key did not.

:class:`DurableStore` ties the pieces to one ``data-dir``::

    data-dir/
      LOCK                    # flock-held lock (pid inside is diagnostic only)
      wal.log                 # CRC-framed commit records since the last snapshot
      snapshot-<revision>.snap  # atomic snapshots, newest + previous kept

The LOCK file is held via ``fcntl.flock``: the kernel releases the lock
the instant the holding process dies, so crash recovery needs no stale-
pid probing and two concurrent reclaimers can never both win (the pid
written inside is kept purely for operator diagnostics).  On platforms
without ``fcntl`` a legacy pid-file protocol is used instead.

Snapshots are taken on a size/age policy (``snapshot_wal_bytes`` /
``snapshot_interval_s``) and on graceful drain; each successful
snapshot truncates the WAL (its records are covered by the watermark)
and prunes all but the newest ``keep_snapshots`` files.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import struct
import tempfile
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

try:  # POSIX; the legacy pid-file protocol covers platforms without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro.exceptions import CorruptStateError, DataDirLockedError, ValidationError

__all__ = [
    "Commit",
    "DurableStore",
    "Snapshot",
    "WriteAheadLog",
    "load_snapshot",
    "replay_commits",
    "write_snapshot",
]

_WAL_MAGIC = b"RWAL1\r\n\x00"  # 8 bytes; \r\n catches text-mode mangling
_SNAP_MAGIC = b"RSNAP1\n\x00"
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
# Sanity bound on one record's declared payload length: anything larger
# is treated as corruption, not an allocation request.
_MAX_RECORD_BYTES = 1 << 30

# Legacy pid-file protocol only (no-fcntl platforms): lock paths held by
# live DurableStore instances in THIS process.  A lock file naming our
# own pid is a genuine conflict only while its store is open here;
# otherwise it is a leftover of an earlier incarnation (the in-process
# crash-simulation path) and is stale.  The flock protocol needs none of
# this: each open() takes its own file description, so a second store in
# the same process conflicts naturally and a closed fd releases the lock
# exactly the way a dead process would.
_HELD_LOCKS: set[str] = set()


def _pack_array(arr: np.ndarray) -> dict:
    """JSON-safe exact encoding of an ndarray (raw bytes, not decimal).

    Mutation rows include ties, duplicates and denormals whose bits must
    survive the log verbatim; base64 of the C-contiguous buffer is
    exact by construction, with no float-repr round-trip to audit.
    """
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _unpack_array(payload: dict) -> np.ndarray:
    try:
        raw = base64.b64decode(payload["data"], validate=True)
        arr = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        return arr.reshape(payload["shape"]).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptStateError(f"WAL record carries an undecodable array: {exc}") from None


def _fsync_dir(directory: str) -> None:
    """Make a rename/create in ``directory`` durable (best-effort off-POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# commit records


@dataclass(frozen=True)
class Commit:
    """One acknowledged mutation: its delta events, key and response.

    ``events`` is a list of ``(deleted_ids, inserted_rows)`` pairs in
    the order the engine committed them (a single barrier normally
    produces exactly one); ``revision`` is the engine revision after the
    last of them.  ``key``/``response`` carry the exactly-once contract:
    a retry bearing ``key`` is answered with ``response`` verbatim,
    without touching the engine.
    """

    revision: int
    events: tuple
    key: str | None = None
    response: dict | None = None
    # Optional JSON-safe dict for layers that log routing/coordination
    # state alongside the mutation (the sharded router's fleet intent /
    # commit frames); plain engine commits leave it None and their
    # on-disk bytes are unchanged from earlier versions.
    meta: dict | None = None

    def to_payload(self) -> bytes:
        body = {
            "revision": int(self.revision),
            "events": [
                {"deleted_ids": _pack_array(d), "inserted_rows": _pack_array(r)}
                for d, r in self.events
            ],
            "key": self.key,
            "response": self.response,
        }
        if self.meta is not None:
            body["meta"] = self.meta
        return json.dumps(body, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "Commit":
        try:
            body = json.loads(payload.decode("utf-8"))
            events = tuple(
                (_unpack_array(ev["deleted_ids"]), _unpack_array(ev["inserted_rows"]))
                for ev in body["events"]
            )
            return cls(
                revision=int(body["revision"]),
                events=events,
                key=body.get("key"),
                response=body.get("response"),
                meta=body.get("meta"),
            )
        except CorruptStateError:
            raise
        except (KeyError, TypeError, ValueError, UnicodeDecodeError) as exc:
            raise CorruptStateError(
                f"WAL record payload is not a valid commit: {exc}"
            ) from None


def _scan_frames(raw: bytes, *, source: str) -> tuple[list[bytes], int]:
    """Parse CRC frames out of ``raw``; returns (payloads, clean_length).

    Torn tails — a header or payload cut short by a crash mid-append —
    are expected and reported via ``clean_length`` (the caller truncates
    there).  A CRC mismatch on a frame whose bytes are *fully present*
    is a flipped bit inside acknowledged history and raises
    :class:`CorruptStateError` instead: truncating would silently erase
    durable state.
    """
    payloads: list[bytes] = []
    offset = len(_WAL_MAGIC)
    while True:
        header = raw[offset : offset + _FRAME.size]
        if len(header) < _FRAME.size:
            return payloads, offset  # torn (or clean) tail: no full header
        length, crc = _FRAME.unpack(header)
        if length > _MAX_RECORD_BYTES:
            raise CorruptStateError(
                f"{source}: record at byte {offset} declares an implausible "
                f"length ({length} bytes); the log is corrupted"
            )
        start = offset + _FRAME.size
        payload = raw[start : start + length]
        if len(payload) < length:
            return payloads, offset  # torn tail: payload cut short
        if zlib.crc32(payload) != crc:
            raise CorruptStateError(
                f"{source}: record at byte {offset} failed its CRC with the "
                "full record present — a bit flip inside acknowledged "
                "history, not a torn tail; refusing to serve a silently "
                "wrong state (restore from a snapshot/backup)"
            )
        payloads.append(payload)
        offset = start + length
        if offset == len(raw):
            return payloads, offset


class WriteAheadLog:
    """Append-only CRC-framed record log with torn-tail recovery.

    Opening scans the whole file: a valid prefix is kept (and the torn
    tail, if any, truncated in place); the handle then appends with an
    ``fsync`` per :meth:`append` so an acknowledged record survives
    power loss.  Revisions must arrive strictly increasing — a
    regression means two writers or a replayed handle, both fatal.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self.commits: list[Commit] = []  # recovered at open, then not grown
        fresh = not os.path.exists(self.path)
        self._fh = open(self.path, "a+b")
        try:
            if fresh:
                self._fh.write(_WAL_MAGIC)
                self._fh.flush()
                os.fsync(self._fh.fileno())
                _fsync_dir(os.path.dirname(self.path) or ".")
            else:
                self._recover()
        except BaseException:
            self._fh.close()
            raise
        self.last_revision = self.commits[-1].revision if self.commits else 0

    def _recover(self) -> None:
        self._fh.seek(0)
        raw = self._fh.read()
        if raw[: len(_WAL_MAGIC)] != _WAL_MAGIC:
            raise CorruptStateError(
                f"{self.path} does not start with the WAL magic; it is not a "
                "repro write-ahead log (or its head was overwritten)"
            )
        payloads, clean = _scan_frames(raw, source=self.path)
        self.commits = [Commit.from_payload(p) for p in payloads]
        revisions = [c.revision for c in self.commits]
        if any(b <= a for a, b in zip(revisions, revisions[1:])):
            raise CorruptStateError(
                f"{self.path}: commit revisions are not strictly increasing "
                f"({revisions}); the log was written by overlapping servers"
            )
        if clean < len(raw):
            # Torn tail from a crash mid-append: the record was never
            # acknowledged (the fsync+reply happens after the write), so
            # dropping it is correct — and mandatory, or the next append
            # would interleave with garbage.
            self._fh.truncate(clean)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self._fh.seek(0, os.SEEK_END)

    @property
    def size_bytes(self) -> int:
        return self._fh.tell()

    def append(self, commit: Commit) -> None:
        """Frame, append and fsync one commit record."""
        if commit.revision <= self.last_revision:
            raise ValidationError(
                f"WAL revisions must be strictly increasing: got "
                f"{commit.revision} after {self.last_revision}"
            )
        payload = commit.to_payload()
        self._fh.write(_FRAME.pack(len(payload), zlib.crc32(payload)) + payload)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.last_revision = commit.revision

    def reset(self) -> None:
        """Empty the log (its records are covered by a durable snapshot)."""
        self._fh.seek(0)
        self._fh.truncate(0)
        self._fh.write(_WAL_MAGIC)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.commits = []

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


# ----------------------------------------------------------------------
# snapshots


@dataclass(frozen=True)
class Snapshot:
    """One recovered snapshot: matrix + watermark + server-side tables."""

    values: np.ndarray
    revision: int
    idempotency: dict[str, dict] = field(default_factory=dict)
    profile: dict | None = None  # TuningProfile JSON payload, if captured
    extra: dict | None = None  # layer-specific JSON state (sharded router map)


def write_snapshot(
    path,
    values: np.ndarray,
    revision: int,
    *,
    idempotency: dict[str, dict] | None = None,
    profile: dict | None = None,
    extra: dict | None = None,
) -> None:
    """Atomically persist a snapshot (mkstemp + fsync + ``os.replace``).

    Layout: 8-byte magic, CRC-framed JSON header (shape/dtype, the
    revision watermark, the idempotency table, the tuning profile and
    the matrix sha256), then the raw C-contiguous float64 matrix bytes.
    A crash mid-write leaves only the temp file; readers never see a
    torn snapshot.
    """
    path = os.fspath(path)
    matrix = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    body = matrix.tobytes()
    header = json.dumps(
        {
            "schema": 1,
            "revision": int(revision),
            "shape": list(matrix.shape),
            "dtype": matrix.dtype.str,
            "matrix_sha256": hashlib.sha256(body).hexdigest(),
            "idempotency": idempotency or {},
            "profile": profile,
            "extra": extra,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".snapshot-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(_SNAP_MAGIC)
            handle.write(_FRAME.pack(len(header), zlib.crc32(header)))
            handle.write(header)
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already replaced/removed
            pass
        raise


def load_snapshot(path) -> Snapshot:
    """Load and integrity-check one snapshot file.

    Raises :class:`CorruptStateError` on any mismatch (magic, header
    CRC, matrix checksum, truncated body) — the caller falls back to an
    older snapshot rather than serving doubtful state.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        raw = handle.read()
    if raw[: len(_SNAP_MAGIC)] != _SNAP_MAGIC:
        raise CorruptStateError(f"{path}: bad snapshot magic")
    offset = len(_SNAP_MAGIC)
    frame = raw[offset : offset + _FRAME.size]
    if len(frame) < _FRAME.size:
        raise CorruptStateError(f"{path}: snapshot header truncated")
    length, crc = _FRAME.unpack(frame)
    header_raw = raw[offset + _FRAME.size : offset + _FRAME.size + length]
    if len(header_raw) < length or zlib.crc32(header_raw) != crc:
        raise CorruptStateError(f"{path}: snapshot header failed its CRC")
    try:
        header = json.loads(header_raw.decode("utf-8"))
        shape = tuple(int(s) for s in header["shape"])
        dtype = np.dtype(header["dtype"])
        revision = int(header["revision"])
        idempotency = dict(header.get("idempotency") or {})
        profile = header.get("profile")
        extra = header.get("extra")
    except (KeyError, TypeError, ValueError, UnicodeDecodeError) as exc:
        raise CorruptStateError(f"{path}: snapshot header is malformed: {exc}") from None
    body = raw[offset + _FRAME.size + length :]
    expected = int(np.prod(shape)) * dtype.itemsize
    if len(body) != expected:
        raise CorruptStateError(
            f"{path}: snapshot body is {len(body)} bytes, header promises {expected}"
        )
    if hashlib.sha256(body).hexdigest() != header.get("matrix_sha256"):
        raise CorruptStateError(f"{path}: snapshot matrix failed its sha256")
    values = np.frombuffer(body, dtype=dtype).reshape(shape).copy()
    return Snapshot(
        values=values,
        revision=revision,
        idempotency=idempotency,
        profile=profile,
        extra=extra,
    )


# ----------------------------------------------------------------------
# recovery replay


def replay_commits(engine, commits, *, idempotency: dict | None = None) -> int:
    """Replay WAL commits beyond the engine's current revision.

    Each commit's delta events run through the ordinary mutation path
    (:func:`repro.engine.delta.replay_event`), so the recovered engine
    is bit-identical — matrix, orderings, quantized stores, every query
    answer — to an engine that lived through the original mutations
    (the delta layer's contract, pinned by the WAL hypothesis suite).
    The revision after each commit is cross-checked against the record;
    a mismatch means the snapshot and log disagree about history.
    Returns the number of commits applied.
    """
    from repro.engine.delta import replay_event

    applied = 0
    for commit in commits:
        if commit.revision <= engine.revision:
            continue  # covered by the snapshot watermark
        if commit.revision != engine.revision + len(commit.events):
            raise CorruptStateError(
                f"WAL replay found a revision gap: commit {commit.revision} "
                f"cannot follow engine revision {engine.revision} with "
                f"{len(commit.events)} events (snapshot and log disagree)"
            )
        for deleted_ids, inserted_rows in commit.events:
            replay_event(engine, deleted_ids, inserted_rows)
        if engine.revision != commit.revision:
            raise CorruptStateError(
                f"WAL replay landed on revision {engine.revision} where the "
                f"log recorded {commit.revision}; refusing to serve"
            )
        if idempotency is not None and commit.key is not None:
            idempotency[commit.key] = commit.response
        applied += 1
    return applied


# ----------------------------------------------------------------------
# the data-dir manager


class DurableStore:
    """One serving data directory: lock, WAL handle, snapshot policy.

    Open it, :meth:`load` the recovered state, replay, then
    :meth:`attach` the engine so every committed mutation's delta events
    are buffered for the next :meth:`commit` (one fsync'd record per
    acknowledged mutation).  :meth:`snapshot` persists the settled state
    and truncates the log.  Everything is single-threaded by contract:
    the serving layer calls commit/snapshot on the engine dispatch
    thread only.
    """

    WAL_NAME = "wal.log"
    LOCK_NAME = "LOCK"
    SNAPSHOT_PREFIX = "snapshot-"
    SNAPSHOT_SUFFIX = ".snap"

    def __init__(
        self,
        data_dir,
        *,
        snapshot_wal_bytes: int = 4 * 2**20,
        snapshot_interval_s: float | None = None,
        keep_snapshots: int = 2,
        max_idempotency_keys: int = 65536,
    ) -> None:
        self.data_dir = os.fspath(data_dir)
        if snapshot_wal_bytes < 1:
            raise ValidationError("snapshot_wal_bytes must be positive")
        if keep_snapshots < 1:
            raise ValidationError("keep_snapshots must be at least 1")
        self.snapshot_wal_bytes = int(snapshot_wal_bytes)
        self.snapshot_interval_s = snapshot_interval_s
        self.keep_snapshots = int(keep_snapshots)
        self.max_idempotency_keys = int(max_idempotency_keys)
        self._wal: WriteAheadLog | None = None
        self._locked = False
        self._lock_fd: int | None = None  # flock protocol; None under legacy
        self._engine = None
        self._subscriber = None
        self._pending_events: list = []
        self._last_snapshot_t = time.monotonic()
        self.stats = {
            "commits": 0,
            "snapshots": 0,
            "recovered_revision": 0,
            "replayed_commits": 0,
            "idempotent_replays": 0,
        }

    # -- lifecycle ------------------------------------------------------
    def open(self) -> "DurableStore":
        """Create the directory, take the flock, open the WAL."""
        os.makedirs(self.data_dir, exist_ok=True)
        self._acquire_lock()
        try:
            self._wal = WriteAheadLog(os.path.join(self.data_dir, self.WAL_NAME))
        except BaseException:
            self._release_lock()
            raise
        return self

    def close(self) -> None:
        """Release handles and the lock (no snapshot — callers decide)."""
        self.detach()
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        self._release_lock()

    def abandon(self) -> None:
        """Drop in-process handles but leave the disk exactly as a crash
        would: WAL untruncated, lock file still present.  Test harnesses
        use this to simulate SIGKILL without leaking file descriptors.
        Closing the lock fd releases the flock exactly the way process
        death would, so the next :meth:`open` acquires it cleanly while
        the stale pid file stays behind as the crash left it.
        """
        self.detach()
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        if self._lock_fd is not None:
            os.close(self._lock_fd)  # kernel drops the flock, as death would
            self._lock_fd = None
        self._locked = False  # the file stays; forget we own it
        _HELD_LOCKS.discard(os.path.realpath(self._lock_path()))

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _lock_path(self) -> str:
        return os.path.join(self.data_dir, self.LOCK_NAME)

    def _acquire_lock(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            self._acquire_lock_pidfile()
            return
        path = self._lock_path()
        payload = f"{os.getpid()}\n".encode("ascii")
        while True:
            fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                holder = self._lock_pid_hint(fd)
                os.close(fd)
                raise DataDirLockedError(
                    f"data dir {self.data_dir!r} is locked"
                    + (f" by pid {holder}" if holder is not None else "")
                    + "; two servers must not share a WAL"
                ) from None
            # The flock binds to the inode we opened; if a releasing
            # owner unlinked the file between our open and our flock, we
            # hold a lock on a dead inode while a rival may hold one on
            # the live path.  Re-check identity and retry — at most once
            # per release, so this terminates.
            try:
                same_inode = os.fstat(fd).st_ino == os.stat(path).st_ino
            except FileNotFoundError:
                same_inode = False
            if not same_inode:
                os.close(fd)
                continue
            # Lock held.  The pid inside is diagnostic only: liveness is
            # the flock itself (released by the kernel on process death),
            # never a pid probe — so two concurrent reclaimers of a dead
            # holder's LOCK can't both win, they serialize on the flock.
            os.ftruncate(fd, 0)
            os.write(fd, payload)
            os.fsync(fd)
            self._lock_fd = fd
            self._locked = True
            return

    @staticmethod
    def _lock_pid_hint(fd: int) -> int | None:
        """Best-effort pid recorded in the LOCK file (diagnostics only)."""
        try:
            data = os.pread(fd, 64, 0)
            return int(data.split()[0])
        except (OSError, ValueError, IndexError):
            return None

    def _acquire_lock_pidfile(self) -> None:  # pragma: no cover - non-POSIX
        """Legacy pid-file protocol for platforms without ``fcntl``.

        Subject to the inherent probe-then-unlink race between two
        concurrent stale-lock reclaimers; POSIX builds use the flock
        protocol above, which closes it.
        """
        path = self._lock_path()
        payload = f"{os.getpid()}\n".encode("ascii")
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                holder = self._lock_holder(path)
                if holder is not None:
                    raise DataDirLockedError(
                        f"data dir {self.data_dir!r} is locked by live pid "
                        f"{holder}; two servers must not share a WAL"
                    ) from None
                # Stale lock: the holder died (e.g. SIGKILL) without
                # releasing.  Reclaim it — this is the normal crash-
                # recovery path, not an error.
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
                continue
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            self._locked = True
            _HELD_LOCKS.add(os.path.realpath(path))
            return

    @staticmethod
    def _lock_holder(path: str) -> int | None:  # pragma: no cover - non-POSIX
        """Legacy protocol: live pid holding ``path``, or None if stale."""
        try:
            with open(path, "rb") as handle:
                pid = int(handle.read().split()[0])
        except (OSError, ValueError, IndexError):
            return None  # unreadable lock = stale
        if pid == os.getpid():
            # Our own pid: live only while a store in this process holds
            # it; an unregistered leftover (abandoned incarnation) is
            # stale.
            return pid if os.path.realpath(path) in _HELD_LOCKS else None
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return None
        except PermissionError:  # pragma: no cover - pid exists, other user
            return pid
        return pid

    def _release_lock(self) -> None:
        if not self._locked:
            return
        # Unlink while still holding the flock: a racer that opened the
        # doomed inode before the unlink will flock it successfully only
        # after our close, then detect the path/inode mismatch and retry
        # against the live path.
        try:
            os.unlink(self._lock_path())
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        if self._lock_fd is not None:
            os.close(self._lock_fd)
            self._lock_fd = None
        self._locked = False
        _HELD_LOCKS.discard(os.path.realpath(self._lock_path()))

    # -- recovery -------------------------------------------------------
    def _snapshot_files(self) -> list[tuple[int, str]]:
        """(revision, path) of every snapshot file, newest first."""
        found = []
        for name in os.listdir(self.data_dir):
            if not (
                name.startswith(self.SNAPSHOT_PREFIX)
                and name.endswith(self.SNAPSHOT_SUFFIX)
            ):
                continue
            stem = name[len(self.SNAPSHOT_PREFIX) : -len(self.SNAPSHOT_SUFFIX)]
            try:
                revision = int(stem)
            except ValueError:
                continue
            found.append((revision, os.path.join(self.data_dir, name)))
        found.sort(reverse=True)
        return found

    def load(self) -> tuple[Snapshot | None, list[Commit]]:
        """Newest valid snapshot + the WAL commits beyond its watermark.

        A snapshot that fails its integrity check is skipped in favor of
        the next-older one (whose longer WAL suffix is still in the
        log).  With no usable snapshot but a non-empty WAL, recovery
        refuses to guess the base state and raises — except when the
        log's history is complete from revision zero, which the caller
        can replay onto the boot matrix.
        """
        if self._wal is None:
            raise ValidationError("DurableStore.load() requires open() first")
        snapshot = None
        skipped: list[str] = []
        for _revision, path in self._snapshot_files():
            try:
                snapshot = load_snapshot(path)
                break
            except CorruptStateError:
                skipped.append(path)
        if snapshot is None and skipped:
            # Snapshot files exist but none passes its integrity check:
            # durable state provably existed and cannot be reconstructed
            # (the WAL was truncated when the newest snapshot was cut).
            # Booting "fresh" here would silently serve pre-snapshot
            # state — refuse instead.
            raise CorruptStateError(
                f"every snapshot under {self.data_dir!r} failed its "
                f"integrity check ({len(skipped)} corrupt); the durable "
                "state cannot be recovered — restore from a backup or "
                "delete the directory to deliberately start over"
            )
        watermark = snapshot.revision if snapshot is not None else 0
        commits = [c for c in self._wal.commits if c.revision > watermark]
        if commits and snapshot is None and commits[0].revision != 1:
            raise CorruptStateError(
                f"no usable snapshot under {self.data_dir!r} and the WAL "
                f"starts at revision {commits[0].revision}: the base "
                "state is unrecoverable"
            )
        self.stats["recovered_revision"] = (
            commits[-1].revision if commits else watermark
        )
        self.stats["replayed_commits"] = len(commits)
        return snapshot, commits

    # -- logging --------------------------------------------------------
    def attach(self, engine) -> None:
        """Subscribe to the engine's delta stream (post-recovery only).

        Every effective compaction buffers one ``(deleted_ids,
        inserted_rows)`` pair; the next :meth:`commit` drains the buffer
        into a single durable record.  Attach *after* replay, or the
        replayed events would be re-logged.
        """
        if self._engine is not None:
            raise ValidationError("DurableStore is already attached to an engine")
        self._engine = engine
        self._subscriber = engine.subscribe_delta(self._on_delta)

    def detach(self) -> None:
        if self._engine is not None and self._subscriber is not None:
            self._engine.unsubscribe_delta(self._subscriber)
        self._engine = None
        self._subscriber = None
        self._pending_events = []

    def _on_delta(self, event) -> None:
        self._pending_events.append(
            (
                np.asarray(event.deleted_ids, dtype=np.int64),
                np.asarray(event.inserted_rows, dtype=np.float64),
            )
        )

    def commit(
        self,
        key: str | None,
        response: dict | None,
        revision: int,
        *,
        events=None,
        meta: dict | None = None,
    ) -> None:
        """Durably record one acknowledged mutation (events + key + response).

        Must run on the engine dispatch thread, after the mutation
        compacted and before its response is released: the fsync here is
        the moment the mutation becomes guaranteed-replayable, which is
        the moment an acknowledgment becomes safe to send.

        By default the record carries the delta events buffered since
        the last commit (the :meth:`attach` subscription).  Callers that
        manage their own events — the sharded router's intent/commit
        frames, shard workers committing explicit per-mutation deltas —
        pass ``events`` directly; the pending buffer is left untouched.
        ``meta`` rides along in the record for caller-defined framing.
        """
        if self._wal is None:
            raise ValidationError("DurableStore.commit() requires open() first")
        if events is None:
            events, self._pending_events = self._pending_events, []
        self._wal.append(
            Commit(
                revision=int(revision),
                events=tuple(events),
                key=key,
                response=response,
                meta=meta,
            )
        )
        self.stats["commits"] += 1

    def should_snapshot(self) -> bool:
        """Size/age policy: is a snapshot due?"""
        if self._wal is None:
            return False
        if self._wal.size_bytes >= self.snapshot_wal_bytes:
            return True
        return (
            self.snapshot_interval_s is not None
            and self._wal.size_bytes > len(_WAL_MAGIC)
            and time.monotonic() - self._last_snapshot_t >= self.snapshot_interval_s
        )

    def snapshot(
        self,
        values: np.ndarray,
        revision: int,
        *,
        idempotency: dict[str, dict] | None = None,
        profile: dict | None = None,
        extra: dict | None = None,
    ) -> str:
        """Write a snapshot at ``revision``, truncate the WAL, prune old files."""
        if self._wal is None:
            raise ValidationError("DurableStore.snapshot() requires open() first")
        path = os.path.join(
            self.data_dir,
            f"{self.SNAPSHOT_PREFIX}{int(revision):016d}{self.SNAPSHOT_SUFFIX}",
        )
        write_snapshot(
            path, values, revision, idempotency=idempotency, profile=profile,
            extra=extra,
        )
        # Only after the snapshot is durable may the WAL records it
        # covers be dropped; a crash in between replays them harmlessly
        # (their revisions sit at or below the new watermark).
        self._wal.reset()
        pruned = False
        for _rev, old in self._snapshot_files()[self.keep_snapshots :]:
            try:
                os.unlink(old)
                pruned = True
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        if pruned:
            # Make the unlinks durable: without a directory fsync a
            # machine-level crash can resurrect pruned snapshot files,
            # and a resurrected *newer-named* file from an earlier
            # incarnation would shadow real state on the next boot.
            _fsync_dir(self.data_dir)
        self._last_snapshot_t = time.monotonic()
        self.stats["snapshots"] += 1
        return path

    @property
    def wal_bytes(self) -> int:
        return self._wal.size_bytes if self._wal is not None else 0

    @property
    def last_snapshot_age_s(self) -> float:
        """Seconds since the last snapshot (or since open, before one)."""
        return time.monotonic() - self._last_snapshot_t

    @property
    def wal_dirty(self) -> bool:
        """True when the WAL holds records not yet covered by a snapshot."""
        return self._wal is not None and self._wal.size_bytes > len(_WAL_MAGIC)
