"""Deterministic, seedable fault injection for the execution layer.

Testing a supervision layer against *real* OOM kills and segfaults is
hopeless — they are timing-dependent and unreproducible.  This module
makes the failures a long-lived service sees into scheduled, replayable
events: a :class:`FaultInjector` decides — as a pure function of its
seed and a monotone draw counter — whether each submitted work unit
should crash its worker, hang past the timeout, or return a corrupted
payload, and whether a shared-memory allocation should fail with
``OSError``.  The same seed and the same call sequence inject the same
faults, so the chaos suite (``tests/engine/test_resilience.py``) and the
``perf_gate.py --faults`` smoke can assert *bit-identical recovery*
rather than "it usually works".

Injection points
----------------
``unit``
    Drawn once per work-unit submission by the supervision layer
    (:mod:`repro.engine.resilience`); yields a fault token shipped with
    the task.  ``"crash"`` makes a process worker ``os._exit`` (a thread
    worker raises :class:`~repro.exceptions.WorkerCrashError` — threads
    cannot be killed), ``("hang", s)`` sleeps ``s`` seconds before
    computing, ``"corrupt"`` garbles the returned payload.
``shm``
    Checked at :meth:`SharedMatrix.create <repro.engine.parallel.SharedMatrix>`;
    raises ``OSError`` for the first ``shm_errors`` allocations.

Faults are only drawn for *pool* submissions: the serial rung of the
degradation ladder is the trusted bottom and never injected, which is
what guarantees every chaos run terminates with a correct answer.

Usage::

    with injected(FaultInjector(seed=0, crash=0.2, max_faults=3)):
        engine.topk_batch(weights, k)   # survives 3 injected crashes

The active injector is process-global (installed via :func:`install` /
the :func:`injected` context manager) so it reaches every engine built
inside the scope without plumbing.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager

__all__ = ["FaultInjector", "active", "check", "injected", "install", "uninstall"]


class FaultInjector:
    """A seeded, deterministic schedule of injected execution faults.

    Parameters
    ----------
    seed:
        Seeds the draw stream; identical seeds + identical call
        sequences inject identical faults.
    crash / hang / corrupt:
        Per-work-unit probabilities of each fault kind (at most one
        fires per unit; they are drawn from a single uniform sample in
        that priority order).
    plan:
        Explicit schedule overriding the probabilistic draw: maps the
        global submission counter (0-based, across retries) to a fault
        kind (``"crash"`` | ``"hang"`` | ``"corrupt"``).  Lets tests
        target exactly the Nth submitted unit.
    shm_errors:
        Fail this many shared-memory segment allocations with
        ``OSError`` before allowing them to succeed.
    max_faults:
        Cap on probabilistically injected faults (plan entries are
        exempt: they are finite by construction).  ``None`` = unlimited;
        every recovery test should set it so bounded retry converges.
    hang_s:
        Sleep duration carried by hang tokens; pick it comfortably above
        the supervisor's timeout under test.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        crash: float = 0.0,
        hang: float = 0.0,
        corrupt: float = 0.0,
        plan: dict[int, str] | None = None,
        shm_errors: int = 0,
        max_faults: int | None = None,
        hang_s: float = 0.25,
    ) -> None:
        for name, rate in (("crash", crash), ("hang", hang), ("corrupt", corrupt)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        if crash + hang + corrupt > 1.0:
            raise ValueError("crash + hang + corrupt rates must not exceed 1")
        if plan is not None:
            bad = {v for v in plan.values()} - {"crash", "hang", "corrupt"}
            if bad:
                raise ValueError(f"unknown fault kinds in plan: {sorted(bad)}")
        self._rates = (crash, hang, corrupt)
        self._plan = dict(plan or {})
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._shm_errors = int(shm_errors)
        self._max_faults = max_faults
        self.hang_s = float(hang_s)
        self.draws = 0
        # What actually fired, for assertions: every chaos test checks
        # the schedule it asked for really exercised the recovery path.
        self.injected = {"crash": 0, "hang": 0, "corrupt": 0, "shm": 0}

    def _token(self, kind: str):
        self.injected[kind] += 1
        return ("hang", self.hang_s) if kind == "hang" else kind

    def draw_unit(self):
        """The fault token (or None) for the next submitted work unit."""
        with self._lock:
            index = self.draws
            self.draws += 1
            planned = self._plan.pop(index, None)
            if planned is not None:
                return self._token(planned)
            crash, hang, corrupt = self._rates
            if crash + hang + corrupt == 0.0:
                return None
            budget_left = (
                self._max_faults is None
                or sum(self.injected.values()) < self._max_faults
            )
            sample = self._rng.random()  # always consumed: keeps draws aligned
            if not budget_left:
                return None
            if sample < crash:
                return self._token("crash")
            if sample < crash + hang:
                return self._token("hang")
            if sample < crash + hang + corrupt:
                return self._token("corrupt")
            return None

    def check_shm(self) -> None:
        """Raise ``OSError`` while scheduled segment failures remain."""
        with self._lock:
            if self._shm_errors > 0:
                self._shm_errors -= 1
                self.injected["shm"] += 1
                raise OSError("injected shared-memory allocation failure")

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


# ----------------------------------------------------------------------
# Process-global installation.  One injector at a time; install/uninstall
# are explicit so a leaked injector cannot silently chaos an unrelated
# computation.
_ACTIVE: FaultInjector | None = None


def install(injector: FaultInjector) -> None:
    global _ACTIVE
    _ACTIVE = injector


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    return _ACTIVE


def check(point: str) -> None:
    """Hook for non-unit injection points (currently only ``"shm"``)."""
    if _ACTIVE is not None and point == "shm":
        _ACTIVE.check_shm()


@contextmanager
def injected(injector: FaultInjector):
    """Install ``injector`` for the scope of the ``with`` block."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()
