"""Quantized integer screening tier for :class:`~repro.engine.ScoreEngine`.

The engine's exactness ladder resolves every top-k / rank decision with
the cheapest arithmetic that can *prove* its answer.  This module adds
the bottom rung: scores are screened with small-integer arithmetic —
int8 by default, int16 when the data's dynamic range demands it — whose
error envelope is rigorous, so a candidate set provably containing every
row that can matter drops out of one integer GEMM plus one vectorized
threshold pass.  Only the candidates are re-scored exactly; only
functions whose decision boundary falls *inside* the quantization
envelope are promoted to the float32 / float64 / scalar tiers above.
Results therefore stay bit-identical to the scalar ``top_k``/``rank_of``
path — quantization changes who does the work, never the answer.

Representation
--------------
Per attribute ``j`` a scale ``a_j = max_i |x_ij| / qmax`` maps data to
integers ``q_ij = rint(x_ij / a_j)`` with ``|x_ij − a_j q_ij| ≤ a_j/2``.
Per weight vector ``w`` the *scaled* weights ``u_j = w_j a_j`` are
quantized as ``u_j = b (U_j + δ_j)``, ``|δ_j| ≤ 1/2``, with one scale
``b = max_j |u_j| / qmax`` per function.  Writing ``A_i = Σ_j |q_ij|``,
the exact score decomposes as::

    w · x_i  =  b Σ_j U_j q_ij  +  b Σ_j δ_j q_ij  +  Σ_j w_j (x_ij − a_j q_ij)
             ∈  b S_i  ±  ( b A_i / 2  +  Σ_j |u_j| / 2 )

The integer GEMM actually computes the *shifted* sum ``S'_i = S_i +
A_i/2`` (the half-``A`` column rides along as a ``d+1``-th attribute
against a constant weight of 1), so the two bounds are single
broadcasts::

    upper_i = b S'_i + usum/2          lower_i = b (S'_i − A_i) − usum/2

with ``usum = Σ_j |u_j|``.  Everything above is *exact* in the carrier
dtype: products and partial sums are multiples of 1/2 and stay below
2**23 (float32 carrier) resp. 2**52 (float64 carrier) — the ranges where
the carrier still represents half-integers exactly — both checked at
construction, so the GEMM result is the true value, not an
approximation of it.
The only inexactness is the float64 arithmetic *forming* the thresholds
the carriers are compared against; every comparison therefore concedes
``_QUANT_SLACK`` integer quanta — orders of magnitude more than any such
rounding — on top of the envelope, and the engine's usual ulp-band
margins sit above that again.

Level selection
---------------
``mode="auto"`` starts at int8 and adapts to the data twice over:

* a one-off *dynamic-range probe* at first use counts how many distinct
  rows collapse onto the same int8 vector; when quantization destroys
  most of the data's resolution, int8 envelopes would pass everything
  and the tier starts at int16 directly;
* at runtime the engine reports how many screened columns had to be
  promoted; a sustained promote rate above ``_PROMOTE_LIMIT`` upgrades
  int8 → int16, and int16 → disabled, each at most once per engine.

Explicit ``mode="int8"``/``"int16"`` pins the level; ``mode=None``
disables the tier.

Each level is one immutable :class:`QuantLevel` — scales, carrier dtype
and per-ordering stores live together, so a reader (the engine itself,
or a thread-backend clone sharing the quantizer) grabs one
:meth:`Quantizer.state` snapshot per call and can never pair old stores
with new scales; level changes swap the snapshot wholesale under a
lock.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["QuantLevel", "QuantStore", "Quantizer"]

_LEVELS = {"int8": 127, "int16": 32767}

# Integer quanta conceded per comparison, covering float64 threshold
# rounding and the float32 cast of a float64 right-hand side.
_QUANT_SLACK = 2.0

# Adaptive upgrade defaults: once this many columns have been screened,
# a promote rate above the limit means the envelope is too wide for the
# data.  Per-engine values come from the TuningProfile
# (:mod:`repro.engine.autotune`).
_PROMOTE_WINDOW = 512
_PROMOTE_LIMIT = 0.25

# Scales outside this (normal, comfortably bounded) range put products or
# divisions at risk of subnormal rounding, where the ±1/2 quantum bound
# stops being airtight; such data is left to the exact tiers.
_SCALE_MIN = 2.0**-950
_SCALE_MAX = 2.0**950

# Dynamic-range probe: fraction of distinct rows that must survive int8
# quantization as distinct vectors, else start at int16.
_COLLAPSE_LIMIT = 0.5


class QuantStore:
    """Immutable quantized copy of one (permuted) data matrix.

    ``Q`` is ``(n, d + 1)`` in the carrier dtype: columns ``0..d-1`` hold
    the integer rows ``q_ij``, column ``d`` holds ``A_i / 2`` so the GEMM
    against a weight row padded with 1.0 yields the shifted sum ``S'``
    directly.  ``absq`` keeps ``A_i`` for the lower-bound broadcast.
    """

    __slots__ = ("Q", "absq", "qmax")

    def __init__(self, Q: np.ndarray, absq: np.ndarray, qmax: int) -> None:
        self.Q = Q
        self.absq = absq
        self.qmax = qmax


class QuantLevel:
    """One quantization level: scales, carrier, and its ordering stores.

    Immutable except for the internally-locked store cache, so any
    reference to a level is self-consistent forever — weight scales and
    data stores always belong to the same level.
    """

    def __init__(self, name: str, maxabs: np.ndarray) -> None:
        self.name = name
        self.qmax = _LEVELS[name]
        self.scales = np.where(maxabs > 0.0, maxabs / self.qmax, 1.0)
        d = maxabs.size
        # Worst-case |S'| with every partial sum below it.  S' and its
        # partial sums are multiples of 1/2 (the A/2 column), and the
        # carrier represents half-integers exactly only while ulp <= 1/2
        # — below 2**23 for float32, 2**52 for float64 — so exactness of
        # the carrier GEMM requires the peak to fit THOSE ranges, not
        # the integer ones.
        peak = (self.qmax * self.qmax + self.qmax) * d
        if peak <= 2**23:
            self.carrier: type | None = np.float32
        elif peak <= 2**52:
            self.carrier = np.float64
        else:  # pragma: no cover - needs d > ~4e6
            self.carrier = None
        self._stores: dict[int, QuantStore | None] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def store(self, ordering_index: int, matrix: np.ndarray) -> QuantStore | None:
        """The quantized copy of ``matrix`` for one pruning ordering.

        ``matrix`` must be the ordering's permuted float64 view; stores
        are cached per ordering index for the level's lifetime.
        """
        store = self._stores.get(ordering_index, self)  # self = "absent"
        if store is not self:
            return store
        with self._lock:
            store = self._stores.get(ordering_index, self)
            if store is not self:
                return store
            q = np.rint(matrix / self.scales)
            if np.abs(q).max(initial=0.0) > self.qmax:  # pragma: no cover
                store = None  # guard: scale arithmetic went subnormal
            else:
                n, d = matrix.shape
                absq = np.abs(q).sum(axis=1)
                Q = np.empty((n, d + 1), dtype=self.carrier)
                Q[:, :d] = q
                Q[:, d] = 0.5 * absq
                store = QuantStore(Q, absq.astype(self.carrier), self.qmax)
            self._stores[ordering_index] = store
            return store

    def in_envelope(self, rows: np.ndarray) -> bool:
        """Whether every entry of ``rows`` fits this level's scales.

        The error decomposition is valid for *any* positive scale; the
        only hard requirement is ``|rint(x/a)| <= qmax``, i.e. the data
        stays inside the representable integer range.  New rows within
        the existing per-attribute envelope can therefore be quantized
        against the old scales with full rigor — no re-scaling needed.
        """
        if rows.size == 0:
            return True
        return bool(np.all(np.abs(rows).max(axis=0) <= self.scales * self.qmax))

    def mutate_store(self, ordering_index: int, plan) -> None:
        """Maintain one cached store across a row mutation.

        ``plan`` is the owning ordering's
        :class:`~repro.engine.delta.MergePlan`: the store's parallel
        arrays undergo the exact structural edit the ordering did.  The
        surviving rows' carrier integers are reused verbatim and the
        inserted rows (``plan.rows``) are quantized with the level's
        (unchanged) scales, so the result is bit-identical to a
        from-scratch quantization of the mutated, re-permuted matrix.
        Absent (or disabled) stores are dropped and rebuild lazily.
        """
        with self._lock:
            store = self._stores.get(ordering_index, self)
            if store is self or store is None:
                self._stores.pop(ordering_index, None)
                return
            new_rows = plan.rows
            q_new = np.rint(new_rows / self.scales) if new_rows.size else np.empty(
                (0, self.scales.size)
            )
            if q_new.size and np.abs(q_new).max(initial=0.0) > self.qmax:
                # Defensive: the caller's envelope check should prevent
                # this; rebuild from scratch rather than store bad bits.
                self._stores.pop(ordering_index, None)
                return
            absq_new = np.abs(q_new).sum(axis=1)
            inserted = np.empty((q_new.shape[0], store.Q.shape[1]), dtype=store.Q.dtype)
            inserted[:, :-1] = q_new
            inserted[:, -1] = 0.5 * absq_new
            Q = plan.apply(store.Q, inserted)
            absq = plan.apply(store.absq, absq_new.astype(store.absq.dtype))
            self._stores[ordering_index] = QuantStore(Q, absq, self.qmax)

    def drop_stores(self) -> None:
        """Forget every cached store (they rebuild lazily)."""
        with self._lock:
            self._stores.clear()

    def quantize_weights(
        self, W: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Quantize a weight batch against this level.

        Returns ``(Wq, b, usum, degenerate)``: the padded carrier weight
        matrix (ones in the last column, so ``Wq @ Q.T`` is the shifted
        integer sum ``S'``), the per-function scale, ``Σ_j |u_j|``, and a
        mask of functions whose scale left the safe range (their rows in
        ``Wq`` are zeroed; the caller must promote them past this tier).
        """
        U = W * self.scales
        usum = np.abs(U).sum(axis=1)
        b = np.abs(U).max(axis=1) / self.qmax
        degenerate = ~((b > _SCALE_MIN) & (b < _SCALE_MAX))
        safe_b = np.where(degenerate, 1.0, b)
        Wq = np.empty((W.shape[0], W.shape[1] + 1), dtype=self.carrier)
        Wq[:, :-1] = np.rint(U / safe_b[:, None])
        Wq[:, -1] = 1.0
        if degenerate.any():
            Wq[degenerate, :-1] = 0.0
        return Wq, safe_b, usum, degenerate

    # ------------------------------------------------------------------
    # Threshold helpers (all conceding _QUANT_SLACK quanta, see module
    # docstring).  Each returns a per-function value the carrier-dtype
    # shifted sums are compared against directly.
    @staticmethod
    def upper_rhs(thr: np.ndarray, b: np.ndarray, usum: np.ndarray) -> np.ndarray:
        """``S' >= rhs``  ⇔  upper bound can reach ``thr``."""
        return (thr - 0.5 * usum) / b - _QUANT_SLACK

    @staticmethod
    def lower_rhs(thr: np.ndarray, b: np.ndarray, usum: np.ndarray) -> np.ndarray:
        """``S' − A > rhs``  ⇔  lower bound provably exceeds ``thr``."""
        return (thr + 0.5 * usum) / b + _QUANT_SLACK


class Quantizer:
    """Per-matrix quantization state shared by an engine and its clones.

    Holds the adaptive level policy; all screening arithmetic lives on
    the immutable :class:`QuantLevel` snapshots it hands out.
    """

    def __init__(
        self,
        values: np.ndarray,
        mode: str | None = "auto",
        promote_window: int = _PROMOTE_WINDOW,
        promote_limit: float = _PROMOTE_LIMIT,
    ) -> None:
        if mode is not None and mode not in ("auto", "int8", "int16"):
            raise ValueError(f"quantize must be 'auto', 'int8', 'int16' or None, got {mode!r}")
        self.mode = mode
        self.promote_window = int(promote_window)
        self.promote_limit = float(promote_limit)
        self._maxabs = np.abs(values).max(axis=0) if mode is not None else None
        self._probed = mode is None
        self._state: QuantLevel | None = None
        self._screened = 0
        self._promoted = 0
        self._lock = threading.Lock()
        self._probe_values = values if mode == "auto" else None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def state(self) -> QuantLevel | None:
        """The current level snapshot (``None`` = tier disabled).

        Callers must grab this once per bulk call and use it for both
        weight quantization and store lookups, so a concurrent level
        change can never mix scales and stores.
        """
        if not self._probed:
            with self._lock:
                if not self._probed:
                    self._set_level(self._initial_level())
                    self._probed = True
        return self._state

    @property
    def active(self) -> bool:
        """Whether the quantized tier should be attempted at all."""
        return self.state is not None

    @property
    def level(self) -> str | None:
        """The current level name (``None`` when disabled)."""
        state = self.state
        return state.name if state is not None else None

    def _initial_level(self) -> str | None:
        """Pick the starting level from the data's dynamic range."""
        maxabs = self._maxabs
        if not np.all(np.isfinite(maxabs)):
            return None
        nonzero = maxabs[maxabs > 0.0]
        if nonzero.size and (nonzero.min() < _SCALE_MIN or nonzero.max() > _SCALE_MAX):
            return None
        if self.mode in ("int8", "int16"):
            return self.mode
        values = self._probe_values
        if values is not None and values.shape[0] > 1:
            distinct = self._distinct_rows(values)
            scales = np.where(maxabs > 0.0, maxabs / _LEVELS["int8"], 1.0)
            q = np.rint(values / scales)
            if self._distinct_rows(q.astype(np.int16)) < _COLLAPSE_LIMIT * distinct:
                return "int16"
        return "int8"

    @staticmethod
    def _distinct_rows(matrix: np.ndarray) -> int:
        contiguous = np.ascontiguousarray(matrix)
        as_bytes = contiguous.view([("", contiguous.dtype)] * contiguous.shape[1])
        return int(np.unique(as_bytes).size)

    def _set_level(self, name: str | None) -> None:
        """Swap to level ``name`` (caller holds the lock)."""
        self._probe_values = None
        if name is None:
            self._state = None
            return
        level = QuantLevel(name, self._maxabs)
        self._state = level if level.carrier is not None else None

    # ------------------------------------------------------------------
    def apply_mutation(self, values: np.ndarray, new_rows: np.ndarray, store_updates):
        """Maintain quantization state across an engine row mutation.

        ``values`` is the post-mutation matrix, ``new_rows`` the inserted
        rows (possibly empty), and ``store_updates`` a callable invoked
        with the current :class:`QuantLevel` to apply the per-ordering
        store edits.  Returns the quantizer to use afterwards — usually
        ``self``, or a fresh replacement when no derived state exists yet
        (nothing to maintain, so restarting the probe is cheapest).

        The re-scale rule: a level's stores survive as long as the new
        rows' dynamic range stays inside the existing per-attribute
        envelope (``|x| <= scale * qmax`` — rigorous for any scale).  An
        escape swaps in a fresh level at the same name with widened
        scales; its stores requantize lazily on next use.  Deletions
        never escape — the old (now possibly wider-than-necessary)
        scales remain valid, and the exactness contract makes the
        difference unobservable.
        """
        if self.mode is None:
            return self
        with self._lock:
            if not self._probed:
                # Level never chosen: no scales, no stores — restart over
                # the mutated matrix; the probe runs at first use.
                return Quantizer(
                    values, self.mode, self.promote_window, self.promote_limit
                )
            if new_rows.size:
                self._maxabs = np.maximum(
                    self._maxabs, np.abs(new_rows).max(axis=0)
                )
            level = self._state
            if level is None:
                return self  # tier disabled (adaptively or by range); stays off
            if not level.in_envelope(new_rows):
                nonzero = self._maxabs[self._maxabs > 0.0]
                if nonzero.size and (
                    nonzero.min() < _SCALE_MIN or nonzero.max() > _SCALE_MAX
                ):
                    self._state = None  # widened range left the safe zone
                    return self
                fresh = QuantLevel(level.name, self._maxabs)
                self._state = fresh if fresh.carrier is not None else None
                return self
            store_updates(level)
            return self

    def observe(self, screened: int, promoted: int) -> None:
        """Feed the adaptive level policy one call's screen/promote counts."""
        if self.mode != "auto":
            return
        with self._lock:
            self._screened += screened
            self._promoted += promoted
            if self._screened < self.promote_window:
                return
            if self._promoted > self.promote_limit * self._screened:
                current = self._state.name if self._state is not None else None
                self._set_level("int16" if current == "int8" else None)
            self._screened = 0
            self._promoted = 0
