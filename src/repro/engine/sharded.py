"""Fault-isolated sharded engine: row partitions, supervision, exactly-once.

:class:`ShardedScoreEngine` is a router over N **shards**, each a full
:class:`~repro.engine.ScoreEngine` owning a contiguous-at-boot slice of
the rows, optionally running in its own worker process with its own
:class:`~repro.engine.wal.DurableStore` (shard-local WAL + snapshot
cycle).  The router merges per-shard query results under the repo's
exactness contract and routes each mutation to the one shard that owns
the affected rows — a 1% churn burst journals and repairs on one shard,
not the fleet.

Why the router keeps a full **reference engine**
------------------------------------------------
The exactness contract pins every query to the scalar reference
convention: per-function float64 GEMV over the *full* matrix
(``values @ w``), ties broken by smaller row id.  Per-row GEMV bits are
**not** stable across matrix heights on real BLAS builds (kernel choice
depends on shape — measurably so for ``d >= 8``), so no amount of
per-shard arithmetic can reproduce the reference bits for contested
(within-ulp-band) decisions.  The router therefore keeps a serial
reference :class:`ScoreEngine` over the assembled matrix:

* shards do the heavy screening in parallel — each returns a
  band-inflated candidate superset (:meth:`ScoreEngine.
  topk_candidates_slice` semantics) or banded strictly-above counts;
* decisions separated by more than the ulp band are accumulation-
  invariant, so the shard GEMMs decide them exactly;
* anything inside the band falls back to the reference engine's scalar
  kernel, bit-identical to an unsharded engine by construction.

The reference engine is also the delta journal of record: fleet
mutations apply to it through the ordinary
:mod:`repro.engine.delta` path, so ``revision``, the
:class:`~repro.engine.delta.DeltaEvent` stream (in global row ids — the
materialized views subsystem works unchanged) and the ``values`` matrix
all behave exactly like an unsharded engine.  The memory cost — one
router-resident float64 copy — is the explicit trade of this layer; the
ROADMAP's out-of-core/mmap follow-on removes it.

Robustness core
---------------
:class:`ShardSupervisor` wraps every shard call: a dead shard (pipe EOF,
SIGKILL), a hung shard (per-call deadline from the
:class:`~repro.engine.resilience.RetryPolicy`) or a corrupted payload
(structural validation) marks the shard *recovering*, respawns it from
its own snapshot + WAL suffix, and retries the call — queries against a
recovering shard block until it is back (bounded by the retry budget)
and then fail with the typed error; a partial merge is never returned
silently.

Exactly-once is two-level: the router's fleet table maps a client
idempotency key ``K`` to the full response, and each shard keeps its own
durable table keyed ``K#s<i>``.  A retried fleet mutation therefore
re-applies only on shards whose commit record is missing.  With a
``data_dir``, the router additionally write-ahead-logs each fleet
mutation as an **intent / commit** frame pair (frame revisions are a plain WAL
sequence counter; each frame's meta names its fleet revision); boot
replays the frames
onto the routing map and *rolls forward* a trailing intent by probing
the shard-level tables — completing a fleet mutation whose shard commits
landed, aborting one whose target shard never heard of it.  There is no
state in which an acknowledged fleet mutation is half-applied after
recovery.

A fleet mutation that fails *in-process* (the supervisor exhausts its
retry budget) resolves the same three ways, immediately: the failed
shard's durable table is probed — a commit that actually landed lets the
router finish the mutation and acknowledge it; a provably-absent commit
aborts the intent frame and the fleet keeps serving untouched; an
unreachable shard after a partial apply **fails the fleet closed**
(every query/mutation raises :class:`CorruptStateError`) rather than
merge through a stale routing map, and the next boot resolves the
dangling intent via the same roll-forward.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import numpy as np

from repro.engine import faults as fault_layer
from repro.engine.bitset import pack_membership, packed_width
from repro.engine.resilience import RetryPolicy, get_default_policy
from repro.engine.score_engine import _TIE_BAND_ULPS, ScoreEngine, TopKBatch
from repro.engine.wal import DurableStore
from repro.exceptions import (
    CorruptStateError,
    ExecutionError,
    ExecutionTimeoutError,
    InvalidDataError,
    ValidationError,
    WorkerCrashError,
)

__all__ = [
    "LocalShardHost",
    "ProcessShardHost",
    "ShardSupervisor",
    "ShardWorker",
    "ShardedScoreEngine",
]

# Handshake budget for a freshly spawned shard process: covers a cold
# spawn-context interpreter + numpy import + snapshot/WAL recovery.
_SPAWN_TIMEOUT_S = 120.0
_CLOSE_TIMEOUT_S = 30.0
_MAX_FLEET_KEYS = 65536


# ----------------------------------------------------------------------
# the shard worker (runs in-process or inside a child process)


class ShardWorker:
    """One shard: a serial engine over its rows + optional durability.

    The worker is deliberately process-agnostic: :class:`LocalShardHost`
    calls it directly, :class:`ProcessShardHost` drives the same methods
    over a pipe.  All ids in its API are **shard-local** current-view
    indices; the router owns the global-id mapping.

    With a ``data_dir`` the worker keeps a :class:`DurableStore`: every
    mutation appends one commit record carrying its explicit delta event
    and the shard-level idempotency key, and recovery *folds* the WAL
    suffix onto the snapshot matrix and rebuilds the engine fresh — by
    the delta layer's contract a fresh engine on the mutated matrix is
    bit-identical to one that lived through the mutations, and folding
    (unlike replay) is defined even across empty intermediate states
    (a shard may legitimately shrink to zero rows).
    """

    def __init__(
        self,
        values: np.ndarray | None,
        *,
        data_dir: str | None = None,
        engine_kwargs: dict | None = None,
        snapshot_wal_bytes: int = 4 * 2**20,
        snapshot_interval_s: float | None = None,
    ) -> None:
        kwargs = dict(engine_kwargs or {})
        kwargs.setdefault("n_jobs", 1)
        self._engine_kwargs = kwargs
        self._store: DurableStore | None = None
        self._idempotency: dict[str, dict] = {}
        self._revision = 0  # shard-local durable revision (not engine.revision)
        self.engine: ScoreEngine | None = None
        self._d: int | None = None
        if data_dir is None:
            if values is None:
                raise CorruptStateError(
                    "shard has neither a boot matrix nor a data dir to "
                    "recover from; a storeless shard cannot be respawned"
                )
            state = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
            self._adopt_state(state)
            return
        store = DurableStore(
            data_dir,
            snapshot_wal_bytes=snapshot_wal_bytes,
            snapshot_interval_s=snapshot_interval_s,
        ).open()
        try:
            self._recover(store, values)
        except BaseException:
            store.close()
            raise
        self._store = store

    # -- boot / recovery ------------------------------------------------
    def _adopt_state(self, state: np.ndarray) -> None:
        self._d = int(state.shape[1])
        self.engine = (
            ScoreEngine(state, **self._engine_kwargs) if state.shape[0] else None
        )

    def _recover(self, store: DurableStore, boot_values) -> None:
        snapshot, commits = store.load()
        if snapshot is None and not commits:
            if boot_values is None:
                raise CorruptStateError(
                    f"shard data dir {store.data_dir!r} is empty and no boot "
                    "matrix was provided; nothing to recover"
                )
            state = np.ascontiguousarray(np.asarray(boot_values, dtype=np.float64))
            self._adopt_state(state)
            # Base snapshot immediately: a respawn after the very first
            # crash must find a recoverable base, not an empty dir.
            store.snapshot(state, 0, idempotency={})
            return
        state = (
            np.ascontiguousarray(snapshot.values)
            if snapshot is not None
            else np.ascontiguousarray(np.asarray(boot_values, dtype=np.float64))
        )
        revision = snapshot.revision if snapshot is not None else 0
        idem = dict(snapshot.idempotency) if snapshot is not None else {}
        for commit in commits:
            for deleted, inserted in commit.events:
                state = np.vstack(
                    [np.delete(state, np.asarray(deleted, dtype=np.int64), axis=0),
                     np.asarray(inserted, dtype=np.float64).reshape(-1, state.shape[1])]
                )
            revision = commit.revision
            if commit.key is not None:
                idem[commit.key] = commit.response
        self._revision = int(revision)
        self._idempotency = idem
        self._adopt_state(np.ascontiguousarray(state))

    # -- introspection --------------------------------------------------
    @property
    def n(self) -> int:
        return self.engine.n if self.engine is not None else 0

    def status(self) -> dict:
        out = {
            "n": self.n,
            "revision": self._revision,
            "pid": os.getpid(),
        }
        if self._store is not None:
            out["wal_bytes"] = self._store.wal_bytes
            out["wal_dirty"] = self._store.wal_dirty
            out["last_snapshot_age_s"] = self._store.last_snapshot_age_s
            out["snapshots"] = self._store.stats["snapshots"]
        return out

    def lookup(self, key: str) -> dict | None:
        """The stored response for a shard-level key, if the commit landed."""
        return self._idempotency.get(key)

    def max_row_norm(self) -> float:
        if self.engine is None:
            return 0.0
        from repro.engine.score_engine import robust_row_norms

        self.engine.compact()
        return float(robust_row_norms(self.engine.values).max())

    def rows(self, local_ids=None) -> np.ndarray:
        """Row data (all rows, or the given local ids), float64 bits."""
        if self.engine is None:
            return np.empty((0, self._d or 0), dtype=np.float64)
        self.engine.compact()
        if local_ids is None:
            return self.engine.values
        return self.engine.values[np.asarray(local_ids, dtype=np.int64)]

    # -- query work units ----------------------------------------------
    def topk_candidates(self, W: np.ndarray, k: int) -> list[np.ndarray]:
        """Band-inflated local top-k candidate ids, one array per function.

        A superset of every local row that can appear in the *global*
        top-k: a true global top-k row ranks in the top-k of its own
        shard by exact scores, and the shard-local ulp band absorbs both
        the GEMM deviation of its score and of the local k-th boundary
        (both scale with shard row norms).  The router re-scores and
        merges under the reference convention.
        """
        if self.engine is None:
            return [np.empty(0, dtype=np.int64)] * int(np.asarray(W).shape[0])
        self.engine.compact()
        n = self.engine.n
        if k >= n:
            full = np.arange(n, dtype=np.int64)
            return [full] * int(np.asarray(W).shape[0])
        return self.engine.topk_candidates_slice(W, int(k), 0, n)

    def rank_counts(
        self,
        W: np.ndarray,
        best: np.ndarray,
        tol: np.ndarray,
        local_members: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Banded strictly-above counts over this shard's rows.

        Mirrors :meth:`ScoreEngine.rank_count_slice` with the subset
        best and the (fleet-wide) tolerance supplied by the router:
        ``above`` counts rows clearly above ``best + tol`` (exact for
        any accumulation, being outside the band), ``contested`` flags
        functions where a non-member local row landed inside the band —
        the router resolves those with the reference scalar kernel.
        """
        m = int(np.asarray(W).shape[0])
        if self.engine is None:
            return (
                np.zeros(m, dtype=np.int64),
                np.zeros(m, dtype=bool),
            )
        self.engine.compact()
        W = np.asarray(W, dtype=np.float64)
        best = np.asarray(best, dtype=np.float64)
        tol = np.asarray(tol, dtype=np.float64)
        members = np.asarray(local_members, dtype=np.int64)
        S = W @ self.engine.values.T
        self.engine.stats["gemm_columns"] += m
        above = (S > (best + tol)[:, None]).sum(axis=1)
        near = (S > (best - tol)[:, None]).sum(axis=1)
        if members.size:
            member_near = (S[:, members] > (best - tol)[:, None]).sum(axis=1)
        else:
            member_near = np.zeros(m, dtype=np.int64)
        return above.astype(np.int64), (near - member_near) != above

    # -- mutations (shard-level exactly-once) ---------------------------
    def _remember(self, key: str | None, response: dict) -> None:
        if key is None:
            return
        self._idempotency[key] = response
        if len(self._idempotency) > _MAX_FLEET_KEYS:
            self._idempotency.pop(next(iter(self._idempotency)))

    def _commit(
        self, key: str | None, response: dict, deleted: np.ndarray, inserted: np.ndarray
    ) -> None:
        self._revision += 1
        if self._store is not None:
            self._store.commit(
                key,
                response,
                self._revision,
                events=((deleted, inserted),),
            )
        # Register the key BEFORE any policy snapshot: snapshotting
        # truncates the WAL record that carries it, so a snapshot cut
        # with the key still unregistered would lose it durably and a
        # keyed retry would re-apply the mutation.
        self._remember(key, response)
        if self._store is not None and self._store.should_snapshot():
            self.snapshot_now()

    def insert(self, rows: np.ndarray, key: str | None = None) -> dict:
        hit = self._idempotency.get(key) if key is not None else None
        if hit is not None:
            return dict(hit, replayed=True)
        rows = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
        if self.engine is None:
            self._adopt_state(rows)
        else:
            self.engine.insert_rows(rows)
            self.engine.compact()
        response = {"n": self.n, "revision": self._revision + 1}
        self._commit(key, response, np.empty(0, dtype=np.int64), rows)
        return dict(response, replayed=False)

    def delete(self, local_ids: np.ndarray, key: str | None = None) -> dict:
        hit = self._idempotency.get(key) if key is not None else None
        if hit is not None:
            return dict(hit, replayed=True)
        ids = np.asarray(local_ids, dtype=np.int64)
        if self.engine is None or ids.size == 0:
            raise ValidationError("shard delete got no engine or no ids")
        self.engine.compact()
        if ids.size >= self.engine.n:
            # The delta layer (rightly) refuses to empty an engine; the
            # fleet-level invariant only protects the fleet, so a shard
            # empties by discarding its engine wholesale.
            self.engine.close()
            self.engine = None
        else:
            self.engine.delete_rows(ids)
            self.engine.compact()
        response = {"deleted": int(ids.size), "n": self.n, "revision": self._revision + 1}
        self._commit(key, response, ids, np.empty((0, self._d), dtype=np.float64))
        return dict(response, replayed=False)

    # -- lifecycle ------------------------------------------------------
    def snapshot_now(self) -> None:
        if self._store is None:
            return
        if self.engine is not None:
            self.engine.compact()
            state = self.engine.values
        else:
            state = np.empty((0, self._d or 0), dtype=np.float64)
        self._store.snapshot(state, self._revision, idempotency=self._idempotency)

    def close(self) -> None:
        if self._store is not None and self._store.wal_dirty:
            self.snapshot_now()
        if self.engine is not None:
            self.engine.close()
        if self._store is not None:
            self._store.close()
            self._store = None

    def abandon(self) -> None:
        """Crash simulation: drop handles, leave the disk as SIGKILL would."""
        if self.engine is not None:
            self.engine.close()
        if self._store is not None:
            self._store.abandon()
            self._store = None

    def call(self, method: str, args: tuple):
        fn = getattr(self, method, None)
        if fn is None or not callable(fn) or method.startswith("_"):
            raise ValidationError(f"unknown shard method {method!r}")
        return fn(*args)


# ----------------------------------------------------------------------
# shard hosts


class LocalShardHost:
    """In-process shard host: direct calls, crash simulation via abandon.

    ``kill()`` abandons the worker's store exactly the way SIGKILL
    abandons a process's file descriptors, so the recovery path a
    respawn exercises is the same one a real process crash would —
    deterministically and without fork/spawn cost, which is what the
    bit-identity test suites want.
    """

    isolation = "local"
    supports_pipeline = False

    def __init__(self, index: int, factory) -> None:
        self.index = index
        self._factory = factory  # factory(values | None) -> ShardWorker
        self._worker: ShardWorker | None = None
        self.alive = False

    def spawn(self, values) -> None:
        self._worker = self._factory(values)
        self.alive = True

    def respawn(self) -> None:
        self.spawn(None)

    def request(self, method: str, args: tuple, timeout_s=None, fault=None):
        if not self.alive or self._worker is None:
            raise WorkerCrashError(f"shard {self.index} is down")
        return self._worker.call(method, args)

    def kill(self) -> None:
        if self._worker is not None:
            self._worker.abandon()
        self._worker = None
        self.alive = False

    def close(self) -> None:
        if self._worker is not None:
            self._worker.close()
        self._worker = None
        self.alive = False


class ProcessShardHost:
    """One shard in a child process behind a duplex pipe.

    The child runs :func:`_shard_child_main`: a strict request/response
    loop over ``(method, args, fault)`` tuples.  The start method
    defaults to ``spawn`` — shard processes are respawned after crashes
    from whatever thread noticed, and forking a threaded parent is
    undefined behaviour waiting to happen.

    Fault tokens from an installed :class:`~repro.engine.faults.
    FaultInjector` ride along with the request: ``"crash"`` hard-exits
    the child before touching the worker, ``("hang", s)`` stalls it,
    ``"corrupt"`` garbles the (otherwise computed) payload — exercising
    exactly the kill / deadline / validation paths of the supervisor.
    """

    isolation = "process"
    supports_pipeline = True

    def __init__(self, index: int, init: dict, mp_method: str | None = None) -> None:
        import multiprocessing as mp

        self.index = index
        self._init = dict(init)
        self._ctx = mp.get_context(mp_method or "spawn")
        self._proc = None
        self._conn = None
        self.alive = False
        self.pid: int | None = None

    def spawn(self, values) -> None:
        parent, child = self._ctx.Pipe()
        init = dict(self._init)
        init["values"] = values
        proc = self._ctx.Process(
            target=_shard_child_main, args=(child, init), daemon=True
        )
        proc.start()
        child.close()
        try:
            if not parent.poll(_SPAWN_TIMEOUT_S):
                raise WorkerCrashError(
                    f"shard {self.index} did not finish booting in "
                    f"{_SPAWN_TIMEOUT_S:.0f}s"
                )
            status, payload = parent.recv()
        except (EOFError, OSError) as exc:
            parent.close()
            proc.kill()
            proc.join()
            raise WorkerCrashError(
                f"shard {self.index} died during boot: {exc!r}"
            ) from None
        except BaseException:
            parent.close()
            proc.kill()
            proc.join()
            raise
        if status != "ok":
            parent.close()
            proc.join()
            raise payload
        self._proc, self._conn, self.alive = proc, parent, True
        self.pid = proc.pid

    def respawn(self) -> None:
        self.spawn(None)

    def _mark_dead(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._proc is not None:
            self._proc.join(timeout=5)
            self._proc = None
        self.alive = False

    def start(self, method: str, args: tuple, fault=None) -> None:
        if not self.alive:
            raise WorkerCrashError(f"shard {self.index} is down")
        try:
            self._conn.send((method, args, fault))
        except (BrokenPipeError, ConnectionResetError, OSError):
            self._mark_dead()
            raise WorkerCrashError(f"shard {self.index} pipe is gone") from None

    def finish(self, timeout_s=None):
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            wait = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                ready = self._conn.poll(wait)
            except (BrokenPipeError, ConnectionResetError, OSError, EOFError):
                self._mark_dead()
                raise WorkerCrashError(
                    f"shard {self.index} died mid-call"
                ) from None
            if not ready:
                # A hung shard holds the pipe; kill it so the respawned
                # incarnation starts from a clean channel.
                self.kill()
                raise ExecutionTimeoutError(
                    f"shard {self.index} exceeded its {timeout_s}s deadline; "
                    "killed for rebuild"
                )
            try:
                status, payload = self._conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError):
                self._mark_dead()
                raise WorkerCrashError(
                    f"shard {self.index} died mid-call (pipe EOF)"
                ) from None
            if status == "error":
                raise payload
            return payload

    def request(self, method: str, args: tuple, timeout_s=None, fault=None):
        self.start(method, args, fault)
        return self.finish(timeout_s)

    def kill(self) -> None:
        proc = self._proc
        if proc is not None and proc.is_alive():
            proc.kill()
        self._mark_dead()

    def close(self) -> None:
        if not self.alive:
            self.kill()
            return
        try:
            self._conn.send(("__stop__", (), None))
            if self._conn.poll(_CLOSE_TIMEOUT_S):
                self._conn.recv()
        except (BrokenPipeError, ConnectionResetError, OSError, EOFError):
            pass
        proc = self._proc
        if proc is not None:
            proc.join(timeout=_CLOSE_TIMEOUT_S)
        self.kill()


def _shard_child_main(conn, init: dict) -> None:
    """Entry point of a shard child process (top-level for spawn)."""
    try:
        worker = ShardWorker(
            init.get("values"),
            data_dir=init.get("data_dir"),
            engine_kwargs=init.get("engine_kwargs"),
            snapshot_wal_bytes=init.get("snapshot_wal_bytes", 4 * 2**20),
            snapshot_interval_s=init.get("snapshot_interval_s"),
        )
    except BaseException as exc:  # boot failure: ship it to the parent
        _child_send(conn, ("error", _picklable(exc)))
        return
    _child_send(conn, ("ok", "ready"))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(msg, tuple) or not msg:
            break
        method = msg[0]
        if method == "__stop__":
            try:
                worker.close()
                _child_send(conn, ("ok", "bye"))
            except BaseException as exc:
                _child_send(conn, ("error", _picklable(exc)))
            break
        args = msg[1] if len(msg) > 1 else ()
        fault = msg[2] if len(msg) > 2 else None
        if fault == "crash":
            os._exit(23)
        if isinstance(fault, tuple) and fault and fault[0] == "hang":
            time.sleep(float(fault[1]))
        try:
            result = worker.call(method, args)
        except BaseException as exc:
            if not _child_send(conn, ("error", _picklable(exc))):
                break
            continue
        if fault == "corrupt":
            result = "\x00corrupt-shard-payload"
        if not _child_send(conn, ("ok", result)):
            break


def _child_send(conn, payload) -> bool:
    try:
        conn.send(payload)
        return True
    except (BrokenPipeError, ConnectionResetError, OSError):
        return False
    except Exception:
        # Unpicklable payload (exotic exception): degrade to a repr.
        try:
            conn.send(("error", ExecutionError(f"unpicklable shard payload: {payload!r}")))
            return True
        except Exception:
            return False


def _picklable(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a faithful stand-in."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ExecutionError(f"shard raised {type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# supervision


class ShardSupervisor:
    """Detect dead/hung/corrupting shards; rebuild them; retry the call.

    Extends the :mod:`repro.engine.resilience` model from work units to
    whole shards: the :class:`RetryPolicy` supplies the per-call
    deadline and the retry budget.  Mutation retries are safe by the
    shard-level idempotency table (a shard that committed before dying
    replays the stored response on retry), query retries are safe by
    being read-only.  A shard that cannot be recovered is marked
    ``dead`` and the call fails with the typed error — the router never
    merges around a missing shard silently.
    """

    def __init__(self, hosts: list, policy: RetryPolicy) -> None:
        self.hosts = hosts
        self.policy = policy
        self._rng = np.random.default_rng(policy.seed)
        self._lock = threading.RLock()
        self._status = ["serving"] * len(hosts)
        self.stats = {
            "shard_crashes": 0,
            "shard_timeouts": 0,
            "shard_corrupt": 0,
            "shard_recoveries": 0,
        }

    def status(self) -> list[str]:
        return list(self._status)

    # Faults only fire on the serving-path methods; garbling internal
    # probes (status pings, recovery row reads) would chaos the recovery
    # machinery itself instead of the traffic it protects.
    _FAULTABLE = frozenset({"topk_candidates", "rank_counts", "insert", "delete"})

    def _draw_fault(self, host, method: str):
        injector = fault_layer.active()
        if (
            injector is None
            or host.isolation != "process"
            or method not in self._FAULTABLE
        ):
            return None
        return injector.draw_unit()

    def _recover(self, index: int) -> None:
        self._status[index] = "recovering"
        try:
            self.hosts[index].respawn()
            # Confirm the respawn actually serves before re-admitting it.
            self.hosts[index].request("status", (), timeout_s=self.policy.timeout_s)
        except BaseException:
            self._status[index] = "dead"
            raise
        self._status[index] = "serving"
        self.stats["shard_recoveries"] += 1

    def call(self, index: int, method: str, args: tuple, *, validate=None):
        with self._lock:
            return self._call_locked(index, method, args, validate)

    def _call_locked(self, index: int, method: str, args: tuple, validate):
        policy = self.policy
        failures = 0
        last: BaseException | None = None
        while True:
            host = self.hosts[index]
            if not host.alive:
                try:
                    self._recover(index)
                except WorkerCrashError:
                    raise
                except BaseException as exc:
                    raise WorkerCrashError(
                        f"shard {index} could not be recovered: {exc}"
                    ) from exc
            try:
                result = host.request(
                    method, args, timeout_s=policy.timeout_s,
                    fault=self._draw_fault(host, method),
                )
            except WorkerCrashError as exc:
                self.stats["shard_crashes"] += 1
                last = exc
            except ExecutionTimeoutError as exc:
                self.stats["shard_timeouts"] += 1
                last = exc
            else:
                if validate is None or validate(result):
                    # A host can answer again after being marked dead
                    # (e.g. a later call's recovery, or a failure that
                    # never killed the process); keep the operator view
                    # truthful.
                    if self._status[index] != "serving":
                        self._status[index] = "serving"
                    return result
                self.stats["shard_corrupt"] += 1
                last = CorruptStateError(
                    f"shard {index} returned a structurally invalid "
                    f"{method!r} payload; retiring the worker"
                )
                # A corrupting shard is suspect wholesale: kill it so the
                # retry runs on a rebuilt incarnation.
                host.kill()
            failures += 1
            if failures > policy.max_retries:
                self._status[index] = "dead"
                raise last
            self._backoff(failures)

    def _backoff(self, failed_attempts: int) -> None:
        policy = self.policy
        if policy.backoff_base_s <= 0:
            return
        delay = min(
            policy.backoff_max_s,
            policy.backoff_base_s * (2.0 ** max(0, failed_attempts - 1)),
        )
        delay *= 1.0 + policy.backoff_jitter * float(self._rng.random())
        time.sleep(delay)

    def broadcast(self, method: str, per_shard_args: dict, *, validate=None) -> dict:
        """Pipelined fan-out: send to every (process) shard, then collect.

        Shards that fail the fast path fall back to :meth:`call`, which
        recovers and retries them individually — so one dead shard costs
        its own recovery, not the fleet's round.  Only used for
        idempotent requests (queries / probes).
        """
        with self._lock:
            results: dict = {}
            started: list[int] = []
            for index, args in per_shard_args.items():
                host = self.hosts[index]
                if (
                    host.supports_pipeline
                    and host.alive
                    and self._status[index] == "serving"
                ):
                    try:
                        host.start(method, args, self._draw_fault(host, method))
                        started.append(index)
                        continue
                    except WorkerCrashError:
                        self.stats["shard_crashes"] += 1
                results[index] = _PENDING
            for index in started:
                host = self.hosts[index]
                try:
                    result = host.finish(self.policy.timeout_s)
                except WorkerCrashError:
                    self.stats["shard_crashes"] += 1
                    results[index] = _PENDING
                    continue
                except ExecutionTimeoutError:
                    self.stats["shard_timeouts"] += 1
                    results[index] = _PENDING
                    continue
                except Exception:
                    # A worker-propagated error ("error" status).  Its
                    # response WAS consumed, so the channel is clean —
                    # but raising here would leave every later started
                    # shard's response undrained in its pipe, feeding the
                    # *next* request a stale payload.  Defer to the
                    # per-shard slow path below, which re-raises after
                    # every pipe has been drained.
                    results[index] = _PENDING
                    continue
                if validate is None or validate(result):
                    results[index] = result
                else:
                    self.stats["shard_corrupt"] += 1
                    host.kill()
                    results[index] = _PENDING
            for index, args in per_shard_args.items():
                if results.get(index) is _PENDING:
                    results[index] = self._call_locked(
                        index, method, args, validate
                    )
            return results

    def close(self) -> None:
        for host in self.hosts:
            host.close()

    def kill_all(self) -> None:
        for host in self.hosts:
            host.kill()


_PENDING = object()


# ----------------------------------------------------------------------
# the router


class ShardedScoreEngine:
    """Row-sharded :class:`ScoreEngine` with the same query/mutation API.

    See the module docstring for the architecture.  Drop-in for the
    serving stack: exposes ``topk_batch`` / ``topk_orders`` /
    ``rank_of_best_batch`` / ``score_batch`` / ``top_k``, the mutation
    pair ``insert_rows`` / ``delete_rows`` (plus the keyed
    ``fleet_insert`` / ``fleet_delete`` used by :mod:`repro.serve`),
    the delta-subscription surface the materialized views need, and
    ``submit`` for the async serving seam.  Every result is
    bit-identical to an unsharded engine over the same rows.

    Parameters
    ----------
    values:
        Boot matrix; required for a fresh fleet, ignored (may be None)
        when ``data_dir`` holds recoverable state.
    shards:
        Number of row partitions (1 <= shards <= n).
    isolation:
        ``"process"`` (default) runs each shard in its own child
        process — crash isolation, parallel screening, per-shard
        durability in a temp dir when no ``data_dir`` is given.
        ``"local"`` keeps shards in-process: no fault isolation unless
        a ``data_dir`` provides recovery, but deterministic and cheap —
        the mode the bit-identity suites and benchmarks use.
    data_dir:
        Fleet state root.  Creates ``router/`` (fleet intent/commit WAL
        + routing-map snapshots) and ``shard-NNN/`` per shard.  The
        fleet then survives a full restart: boot recovers every shard,
        rolls forward or aborts a half-logged fleet mutation, and
        reassembles the router state bit-identically.
    policy:
        :class:`RetryPolicy` for shard supervision (deadline, retries,
        backoff).  Defaults to the process-wide default policy.
    engine_opts:
        Extra kwargs for each shard's :class:`ScoreEngine` (e.g.
        ``float32``, ``quantize``, ``tune`` — each shard keeps its own
        tuning profile).
    """

    def __init__(
        self,
        values=None,
        *,
        shards: int = 2,
        isolation: str = "process",
        data_dir: str | None = None,
        policy: RetryPolicy | None = None,
        engine_opts: dict | None = None,
        mp_method: str | None = None,
        snapshot_wal_bytes: int = 4 * 2**20,
        snapshot_interval_s: float | None = None,
        max_idempotency_keys: int = _MAX_FLEET_KEYS,
    ) -> None:
        if isolation not in ("local", "process"):
            raise ValidationError(
                f"isolation must be 'local' or 'process', got {isolation!r}"
            )
        shards = int(shards)
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.isolation = isolation
        self._policy = policy if policy is not None else get_default_policy()
        if not isinstance(self._policy, RetryPolicy):
            raise ValidationError("policy must be a RetryPolicy or None")
        self._engine_opts = dict(engine_opts or {})
        self._mp_method = mp_method
        self._snapshot_wal_bytes = int(snapshot_wal_bytes)
        self._snapshot_interval_s = snapshot_interval_s
        self._max_keys = int(max_idempotency_keys)
        self._idempotency: dict[str, dict] = {}
        # Auto-key uniqueness across failed attempts: the fleet revision
        # does not advance when a mutation fails, so auto keys derive
        # from the router WAL sequence (monotone across restarts) plus a
        # per-process attempt counter (monotone when there is no WAL) —
        # a retried *different* mutation can never collide with a stale
        # shard-side commit record of a failed earlier attempt.
        self._mutation_seq = 0
        # Set when a fleet mutation failed with shard state possibly
        # half-applied: serving would merge through a stale routing map
        # (silently wrong results), so the fleet fails closed instead.
        self._failed: str | None = None
        # While booting, _commit_frame must not cut a router snapshot:
        # roll-forward runs before self._ref / self._shard_revisions
        # exist, and _snapshot_router needs both.
        self._booting = True
        self._mutation_lock = threading.RLock()
        self._submit_pool = None
        self._submit_lock = threading.Lock()
        self._tmpdir = None
        self._store: DurableStore | None = None
        self._stats = {
            "fleet_inserts": 0,
            "fleet_deletes": 0,
            "idempotent_replays": 0,
            "merged_topk_columns": 0,
            "merged_rank_columns": 0,
        }

        root = data_dir
        if root is None and isolation == "process":
            # Process shards always get durable stores so a killed child
            # can be respawned from its own snapshot + WAL suffix; the
            # fleet itself stays volatile without an explicit data_dir.
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-shards-")
            root = self._tmpdir.name
        self._root = root
        try:
            if data_dir is not None:
                self._store = DurableStore(
                    os.path.join(root, "router"),
                    snapshot_wal_bytes=self._snapshot_wal_bytes,
                    snapshot_interval_s=snapshot_interval_s,
                ).open()
                snapshot, frames = self._store.load()
                if snapshot is None and not frames:
                    self._boot_fresh(values)
                else:
                    self._boot_recover(snapshot, frames)
            else:
                self._boot_fresh(values)
        except BaseException:
            self._teardown_partial()
            raise
        self._booting = False

    # -- boot -----------------------------------------------------------
    def _shard_dir(self, index: int) -> str | None:
        if self._root is None:
            return None
        return os.path.join(self._root, f"shard-{index:03d}")

    def _make_host(self, index: int):
        if self.isolation == "process":
            init = {
                "data_dir": self._shard_dir(index),
                "engine_kwargs": self._engine_opts,
                "snapshot_wal_bytes": self._snapshot_wal_bytes,
                "snapshot_interval_s": self._snapshot_interval_s,
            }
            return ProcessShardHost(index, init, self._mp_method)

        def factory(values, _index=index):
            return ShardWorker(
                values,
                data_dir=self._shard_dir(_index),
                engine_kwargs=self._engine_opts,
                snapshot_wal_bytes=self._snapshot_wal_bytes,
                snapshot_interval_s=self._snapshot_interval_s,
            )

        return LocalShardHost(index, factory)

    def _boot_fresh(self, values) -> None:
        if values is None:
            raise ValidationError(
                "a fresh sharded fleet needs a boot matrix (values=None is "
                "only valid when data_dir holds recoverable state)"
            )
        # The reference engine validates the matrix (shape, finiteness).
        self._ref = ScoreEngine(
            values, n_jobs=1, backend="serial", quantize=None
        )
        matrix = self._ref.values
        n = matrix.shape[0]
        if self.shards > n:
            raise ValidationError(
                f"cannot split {n} rows across {self.shards} shards"
            )
        bounds = np.array_split(np.arange(n, dtype=np.int64), self.shards)
        self._members = [b.copy() for b in bounds]
        self._owner = np.concatenate(
            [np.full(b.size, s, dtype=np.int32) for s, b in enumerate(bounds)]
        ) if n else np.empty(0, dtype=np.int32)
        hosts = []
        for s, b in enumerate(bounds):
            host = self._make_host(s)
            host.spawn(np.ascontiguousarray(matrix[b]))
            hosts.append(host)
        self._supervisor = ShardSupervisor(hosts, self._policy)
        self._shard_revisions = [0] * self.shards
        self._wal_seq = 0
        if self._store is not None:
            self._snapshot_router()

    def _boot_recover(self, snapshot, frames) -> None:
        if snapshot is None:
            raise CorruptStateError(
                "router WAL has frames but no routing-map snapshot; the "
                "fleet base state is unrecoverable"
            )
        extra = snapshot.extra or {}
        if int(extra.get("shards", -1)) != self.shards:
            raise ValidationError(
                f"data dir was written by a {extra.get('shards')}-shard "
                f"fleet; asked to open it with shards={self.shards}"
            )
        owner = np.asarray(snapshot.values, dtype=np.float64).astype(np.int64)
        members = [
            np.flatnonzero(owner == s).astype(np.int64) for s in range(self.shards)
        ]
        fleet_rev = int(extra.get("fleet_revision", 0))
        expected = [int(r) for r in extra.get("shard_revisions", [0] * self.shards)]
        idem = {k: v for k, v in snapshot.idempotency.items()}
        self._members = members
        self._owner = owner.astype(np.int32)
        self._idempotency = idem
        # The router WAL's frame revisions are a plain sequence counter,
        # deliberately decoupled from the fleet revision: an *aborted*
        # roll-forward consumes frames without producing a fleet
        # revision, and the log's strict monotonicity must survive that.
        self._wal_seq = int(snapshot.revision)

        pending_intent = None
        for frame in frames:
            meta = frame.meta or {}
            phase = meta.get("phase")
            if phase == "intent":
                if pending_intent is not None:
                    raise CorruptStateError(
                        "router WAL holds two intent frames without a commit "
                        "between them; overlapping routers wrote this log"
                    )
                pending_intent = frame
            elif phase == "commit":
                pending_intent = None
                # Aborted frames carry no routing effect but still burn a
                # WAL sequence number — _wal_seq must count them.
                if not meta.get("aborted"):
                    fleet_rev = int(meta["fleet"])
                    self._apply_frame_meta(meta, expected)
                    if frame.key is not None:
                        self._idempotency[frame.key] = frame.response
            else:
                raise CorruptStateError(
                    f"router WAL frame {frame.revision} has no phase marker"
                )
            self._wal_seq = int(frame.revision)

        hosts = []
        for s in range(self.shards):
            host = self._make_host(s)
            host.spawn(None)
            hosts.append(host)
        self._supervisor = ShardSupervisor(hosts, self._policy)

        if pending_intent is not None:
            fleet_rev = self._roll_forward(pending_intent, expected, fleet_rev)

        for s in range(self.shards):
            status = self._supervisor.call(s, "status", ())
            if int(status["revision"]) != expected[s]:
                raise CorruptStateError(
                    f"shard {s} recovered at revision {status['revision']} "
                    f"but the router expected {expected[s]}; the fleet logs "
                    "disagree about history (two routers, or lost frames)"
                )

        n = int(self._owner.size)
        parts = self._supervisor.broadcast(
            "rows", {s: (None,) for s in range(self.shards)}
        )
        d = None
        for s in range(self.shards):
            rows = np.asarray(parts[s], dtype=np.float64)
            if rows.ndim == 2 and rows.shape[1]:
                d = int(rows.shape[1])
                break
        if d is None or n == 0:
            raise CorruptStateError("recovered fleet has no rows")
        assembled = np.empty((n, d), dtype=np.float64)
        for s in range(self.shards):
            rows = np.asarray(parts[s], dtype=np.float64).reshape(-1, d)
            if rows.shape[0] != self._members[s].size:
                raise CorruptStateError(
                    f"shard {s} holds {rows.shape[0]} rows but the routing "
                    f"map assigns it {self._members[s].size}"
                )
            assembled[self._members[s]] = rows
        self._ref = ScoreEngine(assembled, n_jobs=1, backend="serial", quantize=None)
        self._ref.revision = fleet_rev
        self._shard_revisions = expected
        # A snapshot deferred by the _booting guard (e.g. the WAL crossed
        # the size threshold just before the crash, or roll-forward wrote
        # frames) is cut now that the full router state exists.
        if self._store is not None and self._store.should_snapshot():
            self._snapshot_router()

    def _apply_frame_meta(self, meta: dict, expected: list[int]) -> None:
        """Apply one committed fleet mutation's routing effect to the map."""
        op = meta["op"]
        if op == "insert":
            s = int(meta["shard"])
            m = int(meta["m"])
            gids = np.arange(self._owner.size, self._owner.size + m, dtype=np.int64)
            self._members[s] = np.concatenate([self._members[s], gids])
            self._owner = np.concatenate(
                [self._owner, np.full(m, s, dtype=np.int32)]
            )
            expected[s] = int(meta["shard_revision"])
        elif op == "delete":
            doomed = np.asarray(meta["gids"], dtype=np.int64)
            self._delete_from_map(doomed)
            for s, rev in meta["shard_revisions"]:
                expected[int(s)] = int(rev)
        else:  # pragma: no cover - no other ops are written
            raise CorruptStateError(f"router WAL frame has unknown op {op!r}")

    def _roll_forward(self, intent, expected: list[int], fleet_rev: int) -> int:
        """Complete or abort the fleet mutation a crash left half-logged."""
        meta = intent.meta or {}
        r = int(meta["fleet"])
        client_key = meta.get("key")
        # The intent records the exact fleet key its shard subkeys were
        # derived from (auto keys are attempt-scoped, not derivable from
        # the fleet revision); legacy frames fall back to the old scheme.
        fleet_key = meta.get("fkey") or (
            client_key if client_key is not None else f"_auto:{r}"
        )
        if meta["op"] == "insert":
            s = int(meta["shard"])
            sub = self._supervisor.call(s, "lookup", (f"{fleet_key}#s{s}",))
            if sub is None:
                # The target shard never committed it: the mutation was
                # never acknowledged and its rows exist nowhere durable.
                # Abort so a client retry applies it fresh.
                self._commit_frame(
                    None, None,
                    {"phase": "commit", "op": "insert", "aborted": True,
                     "fleet": r},
                )
                return fleet_rev
            m = int(meta["m"])
            old_n = int(self._owner.size)
            response = {
                "indices": [int(i) for i in range(old_n, old_n + m)],
                "revision": r,
            }
            commit_meta = {
                "phase": "commit", "op": "insert", "fleet": r, "shard": s,
                "m": m, "shard_revision": int(sub["revision"]), "key": client_key,
            }
            self._apply_frame_meta(commit_meta, expected)
            self._commit_frame(
                client_key, response if client_key is not None else None,
                commit_meta,
            )
            if client_key is not None:
                self._idempotency[client_key] = response
            return r
        # Delete roll-forward: re-issue the keyed per-shard deletes; the
        # shard-level tables make each one exactly-once regardless of
        # which commits already landed before the crash.
        doomed = np.asarray(meta["gids"], dtype=np.int64)
        shard_revisions = []
        for s in range(self.shards):
            locals_s = self._locals_of(s, doomed)
            if locals_s.size == 0:
                continue
            sub = self._supervisor.call(
                s, "delete", (locals_s, f"{fleet_key}#s{s}"),
                validate=_valid_mutation,
            )
            shard_revisions.append([s, int(sub["revision"])])
        response = {"deleted": int(doomed.size), "revision": r}
        commit_meta = {
            "phase": "commit", "op": "delete", "fleet": r,
            "gids": [int(g) for g in doomed], "shard_revisions": shard_revisions,
            "key": client_key,
        }
        self._apply_frame_meta(commit_meta, expected)
        self._commit_frame(
            client_key, response if client_key is not None else None,
            commit_meta,
        )
        if client_key is not None:
            self._idempotency[client_key] = response
        return r

    def _teardown_partial(self) -> None:
        try:
            supervisor = getattr(self, "_supervisor", None)
            if supervisor is not None:
                supervisor.kill_all()
            if self._store is not None:
                self._store.close()
        finally:
            if self._tmpdir is not None:
                self._tmpdir.cleanup()

    # -- facade properties ---------------------------------------------
    @property
    def reference_engine(self) -> ScoreEngine:
        """The router's full engine over the assembled matrix.

        The journal of record (its revision and delta stream are the
        fleet's) and the algorithm-layer surface; bit-identical to the
        fleet by the exactness contract.  Do not mutate it directly —
        mutations go through :meth:`fleet_insert` / :meth:`fleet_delete`
        so the shards stay in sync.
        """
        return self._ref

    @property
    def values(self) -> np.ndarray:
        return self._ref.values

    @property
    def n(self) -> int:
        return self._ref.n

    @property
    def d(self) -> int:
        return self._ref.d

    @property
    def revision(self) -> int:
        return self._ref.revision

    @property
    def packed_width(self) -> int:
        return packed_width(self.n)

    @property
    def tuning(self):
        return self._ref.tuning

    @property
    def stats(self) -> dict:
        out = dict(self._ref.stats)
        out.update(self._stats)
        out.update(self._supervisor.stats)
        return out

    def _noise_scale(self, W: np.ndarray) -> np.ndarray:
        return self._ref._noise_scale(W)

    def subscribe_delta(self, callback):
        return self._ref.subscribe_delta(callback)

    def unsubscribe_delta(self, callback) -> None:
        self._ref.unsubscribe_delta(callback)

    def compact(self) -> None:
        # Fleet mutations apply eagerly (shard + reference engine inside
        # the mutation call); there is never a dirty journal to settle.
        self._ref.compact()

    # -- queries --------------------------------------------------------
    def _active_shards(self) -> list[int]:
        return [s for s in range(self.shards) if self._members[s].size]

    def topk_orders(self, weight_matrix: np.ndarray, k: int) -> np.ndarray:
        self._check_serving()
        W = self._ref._check_weights(weight_matrix)
        k = self._ref._check_k(k)
        m = W.shape[0]
        active = self._active_shards()
        sizes = {s: int(self._members[s].size) for s in active}
        results = self._supervisor.broadcast(
            "topk_candidates",
            {s: (W, k) for s in active},
            validate=lambda r, _m=m: _valid_candidates(r, _m),
        )
        parts = []
        for s in active:
            local = results[s]
            gid_lists = []
            for cand in local:
                cand = np.asarray(cand, dtype=np.int64)
                if cand.size and (cand.min() < 0 or cand.max() >= sizes[s]):
                    raise CorruptStateError(
                        f"shard {s} returned candidate ids outside its row "
                        "range; refusing to merge"
                    )
                gid_lists.append(self._members[s][cand])
            parts.append(gid_lists)
        self._stats["merged_topk_columns"] += m
        # The PR-3 row-split merge, verbatim, over per-shard candidate
        # lists in global ids: re-score on the assembled matrix, order by
        # (score desc, id asc), fall back to the reference scalar kernel
        # for any within-band boundary.
        return self._ref._topk_merge_candidates(W, k, parts)

    def topk_batch(self, weight_matrix: np.ndarray, k: int) -> TopKBatch:
        order = self.topk_orders(weight_matrix, k)
        return TopKBatch(members=pack_membership(order, self.n), order=order)

    def topk_order_batch(self, weight_matrix: np.ndarray, k: int) -> np.ndarray:
        return self.topk_orders(weight_matrix, k)

    def top_k_packed(self, weights: np.ndarray, k: int) -> TopKBatch:
        w = np.ascontiguousarray(np.asarray(weights, dtype=np.float64).reshape(-1))
        if w.size != self.d:
            raise ValidationError(
                f"weight vector has {w.size} entries for {self.d} attributes"
            )
        return self.topk_batch(w[None, :], k)

    def top_k(self, weights: np.ndarray, k: int) -> np.ndarray:
        return self.top_k_packed(weights, k).order[0]

    def rank_of_best_batch(
        self, weight_matrix: np.ndarray, subset: np.ndarray
    ) -> np.ndarray:
        self._check_serving()
        W = self._ref._check_weights(weight_matrix)
        members = self._ref._check_subset(subset)
        m = W.shape[0]
        best = (W @ self._ref.values[members].T).max(axis=1)
        eps = float(np.finfo(np.float64).eps)
        tol = _TIE_BAND_ULPS * eps * self._ref._noise_scale(W)
        active = self._active_shards()
        args = {}
        for s in active:
            locals_s = self._locals_of(s, members)
            args[s] = (W, best, tol, locals_s)
        results = self._supervisor.broadcast(
            "rank_counts", args,
            validate=lambda r, _m=m: _valid_rank_counts(r, _m),
        )
        above = np.zeros(m, dtype=np.int64)
        contested = np.zeros(m, dtype=bool)
        for s in active:
            part_above, part_contested = results[s]
            above += np.asarray(part_above, dtype=np.int64)
            contested |= np.asarray(part_contested, dtype=bool)
        for j in np.flatnonzero(contested):
            exact = self._ref.values @ W[j]
            above[j] = int((exact > exact[members].max()).sum())
            self._ref.stats["verified_columns"] += 1
        self._stats["merged_rank_columns"] += m
        return above + 1

    def score_batch(self, weight_matrix: np.ndarray) -> np.ndarray:
        self._check_serving()
        return self._ref.score_batch(weight_matrix)

    # -- mutations ------------------------------------------------------
    def _locals_of(self, s: int, gids: np.ndarray) -> np.ndarray:
        """Shard-local indices of the given (sorted or not) global ids."""
        gids = np.asarray(gids, dtype=np.int64)
        mine = gids[self._owner[gids] == s]
        return np.searchsorted(self._members[s], mine)

    def _remember(self, key: str | None, response: dict) -> None:
        if key is None:
            return
        self._idempotency[key] = response
        if len(self._idempotency) > self._max_keys:
            self._idempotency.pop(next(iter(self._idempotency)))

    def _delete_from_map(self, doomed: np.ndarray) -> None:
        for s in range(self.shards):
            mine = doomed[self._owner[doomed] == s]
            if mine.size:
                positions = np.searchsorted(self._members[s], mine)
                self._members[s] = np.delete(self._members[s], positions)
            # Renumber the survivors down past the removed ids.
            if self._members[s].size:
                shift = np.searchsorted(doomed, self._members[s])
                self._members[s] = self._members[s] - shift
        self._owner = np.delete(self._owner, doomed)

    def _check_insert(self, rows) -> np.ndarray:
        try:
            arr = np.array(rows, dtype=np.float64, copy=True, order="C", ndmin=2)
        except (TypeError, ValueError) as exc:
            raise InvalidDataError(f"inserted rows are not numeric: {exc}") from None
        if arr.ndim != 2 or arr.shape[1] != self.d:
            raise ValidationError(
                f"inserted rows must be (m, {self.d}), got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise InvalidDataError(
                "inserted rows contain NaN or Inf entries; clean the rows "
                "before inserting (NaN comparisons would corrupt every rank)"
            )
        return arr

    def _check_delete(self, indices) -> np.ndarray:
        arr = np.asarray(indices)
        if arr.dtype == bool:
            if arr.ndim != 1 or arr.size != self.n:
                raise ValidationError(
                    f"boolean delete mask must have length n={self.n}, "
                    f"got shape {arr.shape}"
                )
            arr = np.flatnonzero(arr)
        elif not (arr.dtype.kind in "iu" or arr.size == 0):
            raise ValidationError(
                f"delete indices must be integers or a boolean mask, "
                f"got dtype {arr.dtype}"
            )
        idx = np.unique(arr.astype(np.int64).reshape(-1))
        if idx.size == 0:
            return idx
        if idx[0] < 0 or idx[-1] >= self.n:
            raise ValidationError(
                f"delete indices must be in [0, n)={self.n}, got "
                f"[{idx[0]}, {idx[-1]}]"
            )
        if idx.size >= self.n:
            raise ValidationError(
                "cannot delete every row (engine must stay non-empty)"
            )
        return idx

    def _intent(self, meta: dict) -> None:
        if self._store is not None:
            self._wal_seq += 1
            self._store.commit(None, None, self._wal_seq, meta=meta, events=())

    def _commit_frame(
        self, key: str | None, response: dict | None, meta: dict
    ) -> None:
        if self._store is None:
            return
        self._wal_seq += 1
        self._store.commit(key, response, self._wal_seq, meta=meta, events=())
        if not self._booting and self._store.should_snapshot():
            self._snapshot_router()

    def _snapshot_router(self) -> None:
        if self._store is None:
            return
        r = self.revision
        self._store.snapshot(
            self._owner.astype(np.float64),
            self._wal_seq,
            idempotency=self._idempotency,
            extra={
                "shards": self.shards,
                "fleet_revision": r,
                "shard_revisions": [int(x) for x in self._shard_revisions],
            },
        )

    def _check_serving(self) -> None:
        if self._failed is not None:
            raise CorruptStateError(self._failed)

    def _auto_key(self) -> str:
        self._mutation_seq += 1
        return f"_auto:{self._wal_seq}.{self._mutation_seq}"

    def _probe_commit(self, s: int, subkey: str):
        """The shard's commit record for ``subkey``: a dict when the
        mutation landed shard-side, ``None`` when the shard provably
        never committed it, ``_PENDING`` when the shard is unreachable
        and the commit state cannot be determined."""
        try:
            return self._supervisor.call(s, "lookup", (subkey,))
        except Exception:
            return _PENDING

    def _abort_frame(self, op: str, fleet_rev: int) -> None:
        """Consume the dangling intent frame of a mutation that provably
        touched no shard (mirrors :meth:`_roll_forward`'s abort), so the
        router WAL stays single-intent and the fleet keeps serving."""
        self._commit_frame(
            None, None,
            {"phase": "commit", "op": op, "aborted": True,
             "fleet": fleet_rev},
        )

    def _fail_fleet(self, op: str, fleet_rev: int, exc: BaseException) -> None:
        """Fail closed after a mutation left shard state half-applied (or
        undeterminable): serving would merge shard results through a
        stale routing map — silently wrong — so every query and mutation
        raises until the fleet is rebooted.  With a ``data_dir`` the
        dangling intent frame makes the reboot *complete* the mutation
        via roll-forward; without one the volatile fleet is simply gone,
        which is its documented contract."""
        self._failed = (
            f"fleet {op} at revision {fleet_rev} failed with shard state "
            f"possibly half-applied ({exc!r}); the fleet fails closed "
            "rather than serve a merge through a stale routing map — "
            "restart from the data_dir to resolve it via WAL roll-forward"
        )

    def fleet_insert(self, rows, key: str | None = None) -> dict:
        with self._mutation_lock:
            self._check_serving()
            # Replay check first: a retried mutation is validated against
            # the state it originally applied to, not today's — a delete
            # that already committed may name ids that no longer exist.
            if key is not None:
                hit = self._idempotency.get(key)
                if hit is not None:
                    self._stats["idempotent_replays"] += 1
                    return dict(hit, replayed=True)
            rows64 = self._check_insert(rows)
            if rows64.shape[0] == 0:
                return {"indices": [], "revision": self.revision, "replayed": False}
            r = self.revision + 1
            fleet_key = key if key is not None else self._auto_key()
            target = min(
                range(self.shards), key=lambda s: (self._members[s].size, s)
            )
            m = rows64.shape[0]
            old_n = self.n
            subkey = f"{fleet_key}#s{target}"
            self._intent(
                {"phase": "intent", "op": "insert", "fleet": r,
                 "shard": target, "m": m, "key": key, "fkey": fleet_key},
            )
            try:
                sub = self._supervisor.call(
                    target, "insert", (rows64, subkey),
                    validate=_valid_mutation,
                )
            except BaseException as exc:
                # The call failed terminally (retry budget exhausted) but
                # the shard may still have committed before the failure
                # surfaced.  Probe its durable table: committed — finish
                # the mutation; provably absent — abort the intent and
                # keep serving; unreachable — fail the fleet closed.
                committed = self._probe_commit(target, subkey)
                if isinstance(committed, dict):
                    sub = committed
                elif committed is None:
                    self._abort_frame("insert", r)
                    raise
                else:
                    self._fail_fleet("insert", r, exc)
                    raise
            gids = np.arange(old_n, old_n + m, dtype=np.int64)
            try:
                self._ref.insert_rows(rows64)
                self._ref.compact()
                self._members[target] = np.concatenate(
                    [self._members[target], gids]
                )
                self._owner = np.concatenate(
                    [self._owner, np.full(m, target, dtype=np.int32)]
                )
            except BaseException as exc:
                # The shard committed but the router-side apply died: the
                # in-memory map and reference engine are torn.  Fail
                # closed; a reboot rolls the intent forward cleanly.
                self._fail_fleet("insert", r, exc)
                raise
            self._shard_revisions[target] = int(sub["revision"])
            response = {"indices": [int(i) for i in gids], "revision": r}
            self._commit_frame(
                key, response if key is not None else None,
                {"phase": "commit", "op": "insert", "fleet": r, "shard": target,
                 "m": m, "shard_revision": self._shard_revisions[target],
                 "key": key},
            )
            self._remember(key, response)
            self._stats["fleet_inserts"] += 1
            return dict(response, replayed=False)

    def fleet_delete(self, indices, key: str | None = None) -> dict:
        with self._mutation_lock:
            self._check_serving()
            if key is not None:
                hit = self._idempotency.get(key)
                if hit is not None:
                    self._stats["idempotent_replays"] += 1
                    return dict(hit, replayed=True)
            doomed = self._check_delete(indices)
            if doomed.size == 0:
                response = {"deleted": 0, "revision": self.revision}
                self._remember(key, response)
                return dict(response, replayed=False)
            r = self.revision + 1
            fleet_key = key if key is not None else self._auto_key()
            self._intent(
                {"phase": "intent", "op": "delete", "fleet": r,
                 "gids": [int(g) for g in doomed], "key": key,
                 "fkey": fleet_key},
            )
            shard_revisions = []
            for s in range(self.shards):
                locals_s = self._locals_of(s, doomed)
                if locals_s.size == 0:
                    continue
                subkey = f"{fleet_key}#s{s}"
                try:
                    sub = self._supervisor.call(
                        s, "delete", (locals_s, subkey),
                        validate=_valid_mutation,
                    )
                except BaseException as exc:
                    # As in fleet_insert: the shard may have committed
                    # before the failure surfaced — probe and either keep
                    # completing, abort a provably untouched fleet, or
                    # fail closed on a genuinely half-applied one.
                    committed = self._probe_commit(s, subkey)
                    if isinstance(committed, dict):
                        sub = committed
                    elif committed is None and not shard_revisions:
                        self._abort_frame("delete", r)
                        raise
                    else:
                        self._fail_fleet("delete", r, exc)
                        raise
                self._shard_revisions[s] = int(sub["revision"])
                shard_revisions.append([s, self._shard_revisions[s]])
            try:
                self._ref.delete_rows(doomed)
                self._ref.compact()
                self._delete_from_map(doomed)
            except BaseException as exc:
                self._fail_fleet("delete", r, exc)
                raise
            response = {"deleted": int(doomed.size), "revision": r}
            self._commit_frame(
                key, response if key is not None else None,
                {"phase": "commit", "op": "delete", "fleet": r,
                 "gids": [int(g) for g in doomed],
                 "shard_revisions": shard_revisions, "key": key},
            )
            self._remember(key, response)
            self._stats["fleet_deletes"] += 1
            return dict(response, replayed=False)

    def insert_rows(self, rows) -> np.ndarray:
        """ScoreEngine-compatible insert: returns the new global ids."""
        response = self.fleet_insert(rows)
        return np.asarray(response["indices"], dtype=np.int64)

    def delete_rows(self, indices) -> int:
        """ScoreEngine-compatible delete: returns how many were removed."""
        return int(self.fleet_delete(indices)["deleted"])

    # -- operator surface ----------------------------------------------
    def supervisor_states(self) -> list[str]:
        """Cached per-shard states (serving/recovering/dead), no shard I/O."""
        return self._supervisor.status()

    def shard_status(self) -> list[dict]:
        """Per-shard operator view: serving/recovering/dead + durability."""
        states = self._supervisor.status()
        out = []
        for s in range(self.shards):
            entry = {
                "shard": s,
                "state": states[s],
                "rows": int(self._members[s].size),
                "isolation": self.isolation,
            }
            host = self._supervisor.hosts[s]
            if states[s] == "serving" and host.alive:
                try:
                    entry.update(host.request("status", (), timeout_s=5.0))
                except (WorkerCrashError, ExecutionTimeoutError):
                    entry["state"] = "dead"
            out.append(entry)
        return out

    def durability_stats(self) -> dict:
        out = {
            "mode": "sharded",
            "shards": self.shard_status(),
        }
        if self._failed is not None:
            out["failed"] = self._failed
        if self._store is not None:
            out["router"] = {
                "wal_bytes_since_snapshot": self._store.wal_bytes,
                "wal_dirty": self._store.wal_dirty,
                "last_snapshot_age_s": self._store.last_snapshot_age_s,
                "snapshots": self._store.stats["snapshots"],
                "commits": self._store.stats["commits"],
            }
        return out

    # -- async seam / lifecycle -----------------------------------------
    def submit(self, method, /, *args, **kwargs):
        """Run engine work on one dispatch thread (see ScoreEngine.submit)."""
        if callable(method):
            fn = method
        else:
            fn = getattr(self, method, None)
            if fn is None or not callable(fn) or method.startswith("_"):
                raise ValidationError(
                    f"submit() target must be a public engine method or a "
                    f"callable, got {method!r}"
                )
        if self._submit_pool is None:
            with self._submit_lock:
                if self._submit_pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    self._submit_pool = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix="fleet-submit"
                    )
        return self._submit_pool.submit(fn, *args, **kwargs)

    def close(self) -> None:
        pool, self._submit_pool = self._submit_pool, None
        if pool is not None:
            on_pool = threading.current_thread() in getattr(pool, "_threads", ())
            pool.shutdown(wait=not on_pool, cancel_futures=True)
        supervisor = getattr(self, "_supervisor", None)
        if supervisor is not None:
            supervisor.close()
        if self._store is not None:
            # A failed fleet must NOT cut a final snapshot: snapshots
            # truncate the WAL, and the dangling intent frame in it is
            # exactly what lets the next boot roll the half-applied
            # mutation forward.
            if self._store.wal_dirty and self._failed is None:
                self._snapshot_router()
            self._store.close()
            self._store = None
        ref = getattr(self, "_ref", None)
        if ref is not None:
            ref.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def abandon(self) -> None:
        """Crash simulation: kill/abandon everything, leave disk untouched."""
        pool, self._submit_pool = self._submit_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        supervisor = getattr(self, "_supervisor", None)
        if supervisor is not None:
            supervisor.kill_all()
        if self._store is not None:
            self._store.abandon()
            self._store = None
        ref = getattr(self, "_ref", None)
        if ref is not None:
            ref.close()

    def __enter__(self) -> "ShardedScoreEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# payload validators (the supervisor's corruption firewall)


def _valid_candidates(result, m: int) -> bool:
    if not isinstance(result, list) or len(result) != m:
        return False
    for cand in result:
        if not isinstance(cand, np.ndarray) or cand.ndim != 1:
            return False
        if cand.dtype.kind not in "iu":
            return False
    return True


def _valid_rank_counts(result, m: int) -> bool:
    if not isinstance(result, tuple) or len(result) != 2:
        return False
    above, contested = result
    if not isinstance(above, np.ndarray) or above.shape != (m,):
        return False
    if not isinstance(contested, np.ndarray) or contested.shape != (m,):
        return False
    return above.dtype.kind in "iu" and contested.dtype == bool


def _valid_mutation(result) -> bool:
    return (
        isinstance(result, dict)
        and isinstance(result.get("revision"), int)
        and isinstance(result.get("n"), int)
    )
