"""Theoretical k-set count upper bounds (§5.1, §7 and Figures 13–16).

The paper contrasts the measured k-set counts against the best known
combinatorial upper bounds:

* 2-D: ``O(n·k^{1/3})``  (Dey 1998),
* 3-D: ``O(n·k^{3/2})``  (Sharir, Smorodinsky & Tardos 2000),
* d ≥ 4: ``O(n^{d−ε})`` for a small constant ε > 0 (Alon et al. 1992).

These are asymptotic; following the paper's plots we evaluate them with
unit constants, which is what Figures 13–16 visualize on log scale.
"""

from __future__ import annotations

from repro.exceptions import ValidationError

__all__ = ["kset_upper_bound", "trivial_kset_bound"]

_EPSILON_HIGH_D = 0.01  # "a small constant" in the O(n^{d-eps}) bound


def kset_upper_bound(n: int, k: int, d: int) -> float:
    """Best known upper bound on the number of k-sets of n points in R^d."""
    if n < 1 or k < 1 or d < 1:
        raise ValidationError("n, k, d must all be >= 1")
    if k > n:
        raise ValidationError(f"k={k} cannot exceed n={n}")
    if d == 1:
        return 1.0
    if d == 2:
        return float(n) * float(k) ** (1.0 / 3.0)
    if d == 3:
        return float(n) * float(k) ** 1.5
    return float(n) ** (d - _EPSILON_HIGH_D)


def trivial_kset_bound(n: int, k: int) -> float:
    """The binomial coefficient C(n, k): every k-subset, separable or not.

    Used in tests as a sanity ceiling for small instances where the
    asymptotic bounds (with unit constants) can dip below the truth.
    """
    if n < 1 or k < 1:
        raise ValidationError("n and k must be >= 1")
    if k > n:
        raise ValidationError(f"k={k} cannot exceed n={n}")
    result = 1.0
    for i in range(min(k, n - k)):
        result *= (n - i) / (i + 1)
    return result
