"""Distributional analysis of rank-regret over the function space.

The paper reports only the *maximum* rank-regret; for practical adoption
it matters how the regret is distributed — a set whose 99th percentile is
1 but whose max is k tells a very different story than one pinned at k
everywhere.  This module estimates the full distribution and identifies
the adversarial (worst) functions, which is also a handy debugging lens
on the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.exceptions import ValidationError
from repro.ranking.sampling import sample_functions

__all__ = ["RegretDistribution", "rank_regret_distribution", "worst_functions"]


@dataclass(frozen=True)
class RegretDistribution:
    """Summary of a set's rank-regret distribution over sampled functions.

    Attributes
    ----------
    maximum:
        The sampled RR_L estimate (what the paper plots).
    mean, median:
        Central tendency of per-function rank-regret.
    percentiles:
        Mapping percentile → value for (50, 90, 99, 100).
    satisfied_fraction:
        Fraction of sampled functions whose rank-regret is ≤ the k the
        distribution was computed against.
    k:
        The reference k.
    samples:
        Number of functions sampled.
    """

    maximum: int
    mean: float
    median: float
    percentiles: dict[int, int]
    satisfied_fraction: float
    k: int
    samples: int


def _per_function_regrets(
    values: np.ndarray,
    subset: Iterable[int],
    num_functions: int,
    rng: int | np.random.Generator | None,
) -> tuple[np.ndarray, np.ndarray]:
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    members = sorted({int(i) for i in subset})
    if not members:
        raise ValidationError("subset must be non-empty")
    if members[0] < 0 or members[-1] >= matrix.shape[0]:
        raise ValidationError("subset indices out of range")
    if num_functions < 1:
        raise ValidationError("num_functions must be >= 1")
    weights = sample_functions(matrix.shape[1], num_functions, rng)
    score_matrix = matrix @ weights.T
    subset_best = score_matrix[members].max(axis=0)
    regrets = (score_matrix > subset_best[None, :]).sum(axis=0) + 1
    return regrets.astype(np.int64), weights


def rank_regret_distribution(
    values: np.ndarray,
    subset: Iterable[int],
    k: int,
    num_functions: int = 10_000,
    rng: int | np.random.Generator | None = 0,
) -> RegretDistribution:
    """Estimate the distribution of RR_f(X) over uniform random f."""
    regrets, _ = _per_function_regrets(values, subset, num_functions, rng)
    k = int(k)
    if k < 1:
        raise ValidationError("k must be >= 1")
    percentiles = {
        p: int(np.percentile(regrets, p, method="higher"))
        for p in (50, 90, 99, 100)
    }
    return RegretDistribution(
        maximum=int(regrets.max()),
        mean=float(regrets.mean()),
        median=float(np.median(regrets)),
        percentiles=percentiles,
        satisfied_fraction=float(np.mean(regrets <= k)),
        k=k,
        samples=int(num_functions),
    )


def worst_functions(
    values: np.ndarray,
    subset: Iterable[int],
    count: int = 5,
    num_functions: int = 10_000,
    rng: int | np.random.Generator | None = 0,
) -> list[tuple[np.ndarray, int]]:
    """The ``count`` sampled functions with the largest rank-regret.

    Returns (weight vector, rank-regret) pairs, worst first — the
    adversarial directions a representative fails hardest on.
    """
    if count < 1:
        raise ValidationError("count must be >= 1")
    regrets, weights = _per_function_regrets(values, subset, num_functions, rng)
    order = np.argsort(-regrets, kind="stable")[:count]
    return [(weights[i], int(regrets[i])) for i in order]
