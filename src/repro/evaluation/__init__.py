"""Effectiveness measurement: rank-regret, regret-ratio, k-set bounds."""

from repro.evaluation.bounds import kset_upper_bound, trivial_kset_bound
from repro.evaluation.distribution import (
    RegretDistribution,
    rank_regret_distribution,
    worst_functions,
)
from repro.evaluation.metrics import RepresentativeReport, evaluate_representative
from repro.evaluation.regret import (
    DEFAULT_NUM_FUNCTIONS,
    rank_regret_exact_2d,
    rank_regret_for_function,
    rank_regret_sampled,
    regret_ratio_for_function,
    regret_ratio_sampled,
)

__all__ = [
    "rank_regret_for_function",
    "rank_regret_exact_2d",
    "rank_regret_sampled",
    "regret_ratio_for_function",
    "regret_ratio_sampled",
    "DEFAULT_NUM_FUNCTIONS",
    "evaluate_representative",
    "RepresentativeReport",
    "kset_upper_bound",
    "trivial_kset_bound",
    "RegretDistribution",
    "rank_regret_distribution",
    "worst_functions",
]
