"""Rank-regret and regret-ratio measurement.

The paper measures effectiveness as the *rank-regret* of an output set
(Definitions 1–2).  Computing it exactly requires the dual arrangement,
which "is not scalable to large settings", so §6.1 estimates it with
10,000 uniformly sampled functions; in 2-D the ray sweep gives the exact
value.  Both are implemented here, plus the score-based regret-ratio used
to evaluate the HD-RRMS baseline on its own terms.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._compat import renamed_kwargs
from repro.engine import ScoreEngine
from repro.exceptions import ValidationError
from repro.geometry.sweep import AngularSweep
from repro.ranking.sampling import sample_functions
from repro.ranking.topk import rank_of

__all__ = [
    "rank_regret_for_function",
    "rank_regret_exact_2d",
    "rank_regret_sampled",
    "regret_ratio_for_function",
    "regret_ratio_sampled",
]

DEFAULT_NUM_FUNCTIONS = 10_000  # paper §6.1


def _validate_subset(n: int, subset: Iterable[int]) -> list[int]:
    members = sorted({int(i) for i in subset})
    if not members:
        raise ValidationError("subset must be non-empty")
    if members[0] < 0 or members[-1] >= n:
        raise ValidationError("subset indices out of range")
    return members


def rank_regret_for_function(
    values: np.ndarray, subset: Iterable[int], weights: np.ndarray
) -> int:
    """RR_f(X): the best (minimum) rank any member of ``subset`` achieves
    under the function ``weights`` (Definition 1)."""
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    members = _validate_subset(matrix.shape[0], subset)
    return min(rank_of(matrix, weights, i) for i in members)


def rank_regret_exact_2d(values: np.ndarray, subset: Iterable[int]) -> int:
    """Exact RR_L(X) for 2-D data via the angular sweep (§6.2, "we use the
    ray sweeping to find out the (exact) rank regret of a set in 2D").

    Maintains the best (minimum) subset position *incrementally* across
    sweep events instead of re-scanning the whole subset each time a
    member is touched.  Each event is an adjacent transposition at
    position ``p`` (``upper`` drops to ``p + 1``, ``lower`` rises to
    ``p``), so the best member position changes in O(1):

    * both endpoints are members — positions ``p``/``p + 1`` stay
      member-occupied, the minimum is unchanged;
    * only ``upper`` is a member — the minimum can only degrade when
      ``upper`` *was* the best member (at ``p``); the non-member
      ``lower`` now holds ``p`` and every other member sits at
      ``≥ p + 2``, so the new best is exactly ``p + 1``;
    * only ``lower`` is a member — it rose to ``p``, so the best is
      ``min(best, p)``.

    Returns the worst value attained over the whole sweep, 1-indexed.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != 2:
        raise ValidationError("rank_regret_exact_2d expects an (n, 2) matrix")
    members = _validate_subset(matrix.shape[0], subset)
    member_set = set(members)
    sweep = AngularSweep(matrix)
    current = min(int(sweep.position[i]) for i in members)
    worst = current
    for event in sweep.events():
        upper_in = event.upper in member_set
        lower_in = event.lower in member_set
        if upper_in and not lower_in:
            if event.position == current:
                current += 1
                if current > worst:
                    worst = current
        elif lower_in and not upper_in:
            if event.position < current:
                current = event.position
    return worst + 1


@renamed_kwargs(n_jobs="jobs")
def rank_regret_sampled(
    values: np.ndarray,
    subset: Iterable[int],
    num_functions: int = DEFAULT_NUM_FUNCTIONS,
    rng: int | np.random.Generator | None = None,
    return_distribution: bool = False,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
    policy=None,
    engine: ScoreEngine | None = None,
) -> int | np.ndarray:
    """Monte-Carlo estimate of RR_L(X) over uniformly sampled functions.

    Mirrors the paper's §6.1 estimator (default 10,000 draws).  With
    ``return_distribution`` the per-function rank-regrets are returned
    instead of their maximum — useful for percentile reporting.

    Counting runs through
    :meth:`repro.engine.ScoreEngine.rank_of_best_batch`: pruned float32
    counting over a provably sufficient prefix of the norm/attribute
    orderings (flat peak memory however many functions are requested)
    with an ulp band around the subset's best score that is re-verified
    in exact float64, so blocked-BLAS noise between (near-)identical
    rows cannot inflate a rank — the estimator agrees with the scalar
    :func:`repro.ranking.topk.rank_of` even on degenerate data.
    ``jobs``/``backend`` fan the counting out over the engine's
    worker pool (``None``/``1`` = serial, ``-1`` = all cores; thread,
    process or auto backend) with bit-identical results (``n_jobs`` is
    the deprecated spelling).  Pass a pre-built ``engine`` over the same
    matrix to reuse its pool/orderings across calls (``jobs``/``backend``
    are then ignored — the engine keeps its own configuration).
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    if num_functions < 1:
        raise ValidationError("num_functions must be >= 1")
    members = _validate_subset(matrix.shape[0], subset)
    weights = sample_functions(matrix.shape[1], num_functions, rng)
    if engine is not None:
        engine.compact()  # settle journaled row mutations before validating
        if engine.n != matrix.shape[0]:
            raise ValidationError("engine was built over a different matrix")
        regrets = engine.rank_of_best_batch(weights, members)
    else:
        with ScoreEngine(
            matrix, n_jobs=jobs, backend=backend, tune=tune, resilience=policy
        ) as own:
            regrets = own.rank_of_best_batch(weights, members)
    if return_distribution:
        return regrets
    return int(regrets.max())


def regret_ratio_for_function(
    values: np.ndarray, subset: Iterable[int], weights: np.ndarray
) -> float:
    """Score-based regret-ratio of ``subset`` for one function:
    ``(max_D f − max_X f) / max_D f`` (§1)."""
    matrix = np.asarray(values, dtype=np.float64)
    members = _validate_subset(matrix.shape[0], subset)
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    scores = matrix @ w
    top = float(scores.max())
    if top <= 0:
        return 0.0
    return max(0.0, (top - float(scores[members].max())) / top)


@renamed_kwargs(n_jobs="jobs")
def regret_ratio_sampled(
    values: np.ndarray,
    subset: Iterable[int],
    num_functions: int = 1000,
    rng: int | np.random.Generator | None = None,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
    policy=None,
    engine: ScoreEngine | None = None,
) -> float:
    """Monte-Carlo maximum regret-ratio of ``subset`` over sampled functions.

    ``engine`` as in :func:`rank_regret_sampled`.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    if num_functions < 1:
        raise ValidationError("num_functions must be >= 1")
    members = _validate_subset(matrix.shape[0], subset)
    weights = sample_functions(matrix.shape[1], num_functions, rng)
    if engine is not None:
        engine.compact()  # settle journaled row mutations before validating
        if engine.n != matrix.shape[0]:
            raise ValidationError("engine was built over a different matrix")
        score_matrix = engine.score_batch(weights)
    else:
        with ScoreEngine(
            matrix, n_jobs=jobs, backend=backend, tune=tune, resilience=policy
        ) as own:
            score_matrix = own.score_batch(weights)
    top = score_matrix.max(axis=0)
    achieved = score_matrix[members].max(axis=0)
    safe_top = np.where(top > 0, top, 1.0)
    ratios = np.clip((top - achieved) / safe_top, 0.0, None)
    return float(ratios.max())
