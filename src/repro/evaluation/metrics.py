"""Summary metrics for representative sets.

One call — :func:`evaluate_representative` — produces everything the
paper's effectiveness plots report for a candidate set: its size, its
(estimated or exact) rank-regret, whether it meets the requested k, and
the score-based regret-ratio for cross-comparison with the regret-ratio
literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro._compat import renamed_kwargs
from repro.engine import ScoreEngine
from repro.evaluation.regret import (
    rank_regret_exact_2d,
    rank_regret_sampled,
    regret_ratio_sampled,
)
from repro.exceptions import ValidationError

__all__ = ["RepresentativeReport", "evaluate_representative"]


@dataclass(frozen=True)
class RepresentativeReport:
    """Effectiveness summary for one representative set.

    Attributes
    ----------
    size:
        Number of tuples in the set.
    rank_regret:
        Measured RR_L (exact in 2-D when ``exact=True``, else Monte-Carlo).
    meets_k:
        ``rank_regret <= k`` for the requested k.
    regret_ratio:
        Monte-Carlo maximum score regret-ratio of the set.
    exact:
        Whether ``rank_regret`` is exact (2-D sweep) or sampled.
    """

    size: int
    rank_regret: int
    meets_k: bool
    regret_ratio: float
    exact: bool


@renamed_kwargs(n_jobs="jobs")
def evaluate_representative(
    values: np.ndarray,
    subset: Iterable[int],
    k: int,
    exact: bool | None = None,
    num_functions: int = 10_000,
    rng: int | np.random.Generator | None = 0,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
    policy=None,
    engine: ScoreEngine | None = None,
) -> RepresentativeReport:
    """Measure a representative set the way the paper's §6 does.

    ``exact=None`` (default) picks the exact 2-D sweep when d = 2 and the
    sampled estimator otherwise; pass True/False to force either.
    ``jobs``/``backend`` fan the Monte-Carlo measurements out over
    the engine's worker pool (``None``/``1`` = serial, ``-1`` = all
    cores; thread, process or auto backend); ``n_jobs`` is the
    deprecated spelling.  Pass a pre-built ``engine`` over the same
    matrix to reuse its pool/orderings across calls.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    members = sorted({int(i) for i in subset})
    if not members:
        raise ValidationError("subset must be non-empty")
    use_exact = (matrix.shape[1] == 2) if exact is None else bool(exact)
    # One engine serves both Monte-Carlo estimators, so the pool /
    # shared-memory copy / pruning orderings are paid for once per call
    # (or once per Session, when the caller shares a long-lived engine).
    own_engine = engine is None
    if engine is None:
        engine = ScoreEngine(
            matrix, n_jobs=jobs, backend=backend, tune=tune, resilience=policy
        )
    else:
        engine.compact()  # settle journaled row mutations before validating
        if engine.n != matrix.shape[0]:
            raise ValidationError("engine was built over a different matrix")
    try:
        if use_exact:
            if matrix.shape[1] != 2:
                raise ValidationError("exact rank-regret is only available in 2-D")
            regret = rank_regret_exact_2d(matrix, members)
        else:
            regret = int(
                rank_regret_sampled(
                    matrix, members, num_functions=num_functions, rng=rng,
                    engine=engine,
                )
            )
        ratio = regret_ratio_sampled(
            matrix, members, num_functions=min(num_functions, 1000), rng=rng,
            engine=engine,
        )
    finally:
        if own_engine:
            engine.close()
    return RepresentativeReport(
        size=len(members),
        rank_regret=int(regret),
        meets_k=int(regret) <= int(k),
        regret_ratio=float(ratio),
        exact=use_exact,
    )
