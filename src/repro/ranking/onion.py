"""Onion index: layered maxima structure for repeated top-k queries.

The paper's related work (§7) points to convex-hull/skyline layering as
the classic index for linear top-k queries (the "onion technique" of
Chang et al. and robust indexing of Xin et al.).  The key property: the
rank-i tuple of any *monotone* linear function lies within the first i
layers, so a top-k query only needs the union of the first k layers —
usually a tiny fraction of the data.

We peel **maxima layers** (each layer is the skyline of what remains):
a superset of convex-hull layers that preserves the same correctness
guarantee for the paper's non-negative-weight function class and needs
no LP machinery.  Repeated top-k probes — MDRC's corner evaluations,
K-SETr's draws, workload evaluation — are the use cases; call
:meth:`OnionIndex.top_k` in place of :func:`repro.ranking.topk.top_k`
when the same dataset is probed many times with small k.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.geometry.skyline import skyline_sfs

__all__ = ["OnionIndex"]


class OnionIndex:
    """Layered maxima index over a fixed dataset.

    Parameters
    ----------
    values:
        ``(n, d)`` matrix, higher-is-better on every attribute.
    max_layers:
        Build at most this many layers; tuples beyond them form a final
        "rest" layer.  Queries with k beyond the built layers fall back
        to scanning everything, staying correct.

    Notes
    -----
    Correctness: for any non-negative weight vector, the best tuple of
    layer ``i+1`` cannot outrank every tuple of layer ``i`` (each layer-
    ``i+1`` tuple is dominated by some layer-``i`` tuple), so the top-k
    of the whole dataset is contained in the first k layers.
    """

    def __init__(self, values: np.ndarray, max_layers: int | None = None) -> None:
        matrix = np.asarray(values, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValidationError("values must be an (n, d) matrix")
        if max_layers is not None and max_layers < 1:
            raise ValidationError("max_layers must be >= 1 or None")
        self.values = matrix
        n = matrix.shape[0]
        remaining = np.arange(n)
        layers: list[np.ndarray] = []
        limit = n if max_layers is None else int(max_layers)
        while remaining.size and len(layers) < limit:
            local = skyline_sfs(matrix[remaining])
            layer = remaining[local]
            layers.append(layer)
            mask = np.ones(remaining.size, dtype=bool)
            mask[local] = False
            remaining = remaining[mask]
        if remaining.size:
            layers.append(remaining)  # the "rest" layer (unlayered tail)
        self.layers: list[np.ndarray] = layers
        # prefix[i] = indices of the first i+1 layers, concatenated.
        self._prefix_sizes = np.cumsum([layer.size for layer in layers])

    @property
    def num_layers(self) -> int:
        """Number of stored layers (including the rest layer, if any)."""
        return len(self.layers)

    def layer_of(self, index: int) -> int:
        """0-based layer number containing tuple ``index``."""
        for number, layer in enumerate(self.layers):
            if index in layer:
                return number
        raise ValidationError(f"index {index} out of range")

    def candidates(self, k: int) -> np.ndarray:
        """Indices guaranteed to contain the top-k of any function in L."""
        k = int(k)
        if not 1 <= k <= self.values.shape[0]:
            raise ValidationError(
                f"k must be in [1, {self.values.shape[0]}], got {k}"
            )
        needed = int(np.searchsorted(self._prefix_sizes, k) + 1)
        needed = min(needed, len(self.layers))
        # The first `needed` layers hold >= k tuples, but correctness
        # requires the first k *layers*; take the max of both counts.
        take = min(max(needed, k), len(self.layers))
        return np.concatenate(self.layers[:take])

    def top_k(self, weights: np.ndarray, k: int) -> np.ndarray:
        """Top-k row indices (best first) under ``weights``.

        Scans only the candidate layers; equal scores break by smaller
        row index, identical to :func:`repro.ranking.topk.top_k`.
        """
        from repro.ranking.topk import _validate  # shared validation

        matrix, w = _validate(self.values, weights)
        candidates = self.candidates(k)
        score = matrix[candidates] @ w
        order = np.lexsort((candidates, -score))
        return candidates[order[:k]]
