"""Linear ranking substrate: functions, top-k evaluation, sampling."""

from repro.ranking.functions import (
    LinearFunction,
    angles_from_weights,
    weights_from_angles,
)
from repro.ranking.onion import OnionIndex
from repro.ranking.sampling import FunctionStream, grid_functions, sample_functions
from repro.ranking.topk import (
    batch_top_k_sets,
    rank_of,
    ranking,
    ranks,
    scores,
    top_k,
    top_k_set,
)

__all__ = [
    "LinearFunction",
    "weights_from_angles",
    "angles_from_weights",
    "sample_functions",
    "FunctionStream",
    "grid_functions",
    "scores",
    "ranking",
    "top_k",
    "top_k_set",
    "ranks",
    "rank_of",
    "batch_top_k_sets",
    "OnionIndex",
]
