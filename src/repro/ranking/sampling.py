"""Sampling and discretization of the linear function space.

K-SETr (Algorithm 4) and the Monte-Carlo rank-regret estimator (§6.1) both
need functions drawn *uniformly* from the space of origin-starting rays in
the positive orthant.  The paper adopts Marsaglia's method: take the
absolute values of ``d`` standard normals and normalize — the result is
uniform on the first orthant of the unit hypersphere.

HD-RRMS and several ablations instead need a *deterministic grid* over the
same space; :func:`grid_functions` provides it via the angle
parameterization.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.exceptions import ValidationError
from repro.ranking.functions import weights_from_angles

__all__ = ["FunctionStream", "sample_functions", "grid_functions"]


def sample_functions(
    d: int,
    count: int,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``count`` uniform random linear functions on the positive orthant.

    Returns an array of shape ``(count, d)`` of unit weight vectors.
    Implements lines 4–6 of Algorithm 4 (Marsaglia sphere sampling with
    absolute values).
    """
    if d < 1:
        raise ValidationError(f"need d >= 1, got {d}")
    if count < 1:
        raise ValidationError(f"need count >= 1, got {count}")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    raw = np.abs(generator.normal(size=(count, d)))
    norms = np.linalg.norm(raw, axis=1, keepdims=True)
    # A row of all zeros has probability zero but would divide by zero.
    degenerate = norms[:, 0] == 0.0
    if np.any(degenerate):  # pragma: no cover - probability zero
        raw[degenerate] = 1.0
        norms[degenerate] = np.sqrt(d)
    return raw / norms


class FunctionStream:
    """A replayable Marsaglia draw stream with explicit position.

    Wraps the generator behind :func:`sample_functions` and counts the
    draws consumed, so a long-lived consumer can *extend* the stream
    later exactly where a from-scratch run with the same seed would —
    the RNG stream discipline the maintained K-SETr draw state
    (:class:`repro.geometry.ksets.KSetDrawState`) relies on: weights
    are a pure function of ``(d, seed, draw index)``, independent of
    the data, so repairs re-evaluate cached draws instead of redrawing
    them, and only genuinely new draws advance the stream.

    The generator state depends only on the sequence of block sizes
    requested; identical block sequences yield bit-identical weights.
    """

    __slots__ = ("d", "drawn", "_generator")

    def __init__(self, d: int, rng: int | np.random.Generator | None = None) -> None:
        if d < 1:
            raise ValidationError(f"need d >= 1, got {d}")
        self.d = int(d)
        self.drawn = 0
        self._generator = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

    def draw(self, count: int) -> np.ndarray:
        """The next ``count`` functions of the stream, ``(count, d)``."""
        weights = sample_functions(self.d, count, self._generator)
        self.drawn += count
        return weights


def grid_functions(d: int, per_axis: int) -> np.ndarray:
    """A deterministic lattice of functions covering the positive orthant.

    Places ``per_axis`` equally spaced angles in ``[0, π/2]`` on each of the
    ``d − 1`` angular dimensions and maps each combination to a unit weight
    vector, yielding ``per_axis^(d-1)`` functions.  For ``d = 1`` the single
    function ``(1,)`` is returned.
    """
    if d < 1:
        raise ValidationError(f"need d >= 1, got {d}")
    if per_axis < 1:
        raise ValidationError(f"need per_axis >= 1, got {per_axis}")
    if d == 1:
        return np.ones((1, 1), dtype=np.float64)
    if per_axis == 1:
        axis_angles = np.array([np.pi / 4])
    else:
        axis_angles = np.linspace(0.0, np.pi / 2, per_axis)
    rows = [
        weights_from_angles(combo)
        for combo in itertools.product(axis_angles, repeat=d - 1)
    ]
    return np.vstack(rows)
