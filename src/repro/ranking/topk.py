"""Top-k evaluation and rank computation under linear ranking functions.

The paper assumes a total order: "through applying any arbitrary
tie-breaker, no two tuples in the database have the same score" (§2).
We realize that tie-breaker deterministically: ties in score are broken by
smaller row index first.  Every function here honors it, so ranks are
always unique and reproducible.

This module is the *scalar* (one-function-at-a-time) interface.  Anything
that scores many functions against the same matrix — MDRC corners, K-SETr
batches, workload logs, Monte-Carlo estimators — should go through
:class:`repro.engine.ScoreEngine` instead, which serves the identical
semantics via one chunked GEMM per batch plus packed-bitset set
operations; :func:`batch_top_k_sets` below is a thin wrapper over it.
The engine's equivalence to these scalar functions is pinned by the
property tests in ``tests/engine/``.
"""

from __future__ import annotations

import numpy as np

from repro.engine import ScoreEngine
from repro.exceptions import ValidationError

__all__ = [
    "scores",
    "ranking",
    "top_k",
    "top_k_set",
    "ranks",
    "rank_of",
    "batch_top_k_sets",
]


def _validate(values: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    if values.ndim != 2:
        raise ValidationError(f"values must be an (n, d) matrix, got {values.shape}")
    if weights.size != values.shape[1]:
        raise ValidationError(
            f"weight vector has {weights.size} entries for {values.shape[1]} attributes"
        )
    return values, weights


def _validate_k(k: int, n: int) -> int:
    k = int(k)
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, n]={n}, got {k}")
    return k


def scores(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Score every tuple: ``values @ weights``."""
    values, weights = _validate(values, weights)
    return values @ weights


def ranking(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Return all row indices ordered best-first (score desc, index asc)."""
    values, weights = _validate(values, weights)
    score = values @ weights
    n = score.size
    # lexsort's last key is primary: sort by -score, break ties by index.
    return np.lexsort((np.arange(n), -score))


def top_k(values: np.ndarray, weights: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-k tuples, best first.

    Uses ``argpartition`` for large ``n`` so a single top-k probe is
    ``O(n + k log k)`` — this is the inner loop of K-SETr and MDRC.
    """
    values, weights = _validate(values, weights)
    n = values.shape[0]
    k = _validate_k(k, n)
    score = values @ weights
    if k >= n:
        candidates = np.arange(n)
    else:
        # Over-select to make index tie-breaking exact at the k boundary:
        # take everything scoring >= the k-th largest score, then order.
        kth = np.partition(score, n - k)[n - k]
        candidates = np.flatnonzero(score >= kth)
    order = np.lexsort((candidates, -score[candidates]))
    return candidates[order[:k]]


def top_k_set(values: np.ndarray, weights: np.ndarray, k: int) -> frozenset[int]:
    """The top-k as a frozenset of row indices (the k-set of the function)."""
    return frozenset(int(i) for i in top_k(values, weights, k))


def ranks(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """1-indexed rank of every tuple under ``weights`` (paper's ∇_f).

    ``ranks(...)[i] == r`` means exactly ``r − 1`` tuples outrank tuple ``i``.
    """
    order = ranking(values, weights)
    result = np.empty(order.size, dtype=np.int64)
    result[order] = np.arange(1, order.size + 1)
    return result


def rank_of(values: np.ndarray, weights: np.ndarray, index: int) -> int:
    """1-indexed rank ∇_f(t) of the tuple at ``index``.

    Computed in O(n) without sorting: count strictly-better tuples plus
    equal-score tuples with a smaller index (the deterministic tie-breaker).
    """
    values, weights = _validate(values, weights)
    n = values.shape[0]
    if not 0 <= index < n:
        raise ValidationError(f"index must be in [0, {n}), got {index}")
    score = values @ weights
    mine = score[index]
    better = int(np.count_nonzero(score > mine))
    tied_before = int(np.count_nonzero(score[:index] == mine))
    return better + tied_before + 1


def batch_top_k_sets(
    values: np.ndarray, weight_matrix: np.ndarray, k: int
) -> list[frozenset[int]]:
    """Top-k sets for many functions at once.

    ``weight_matrix`` has one weight vector per row.  Delegates to
    :meth:`repro.engine.ScoreEngine.topk_batch` — one chunked GEMM plus a
    per-column ``argpartition`` — and materializes the rows as frozensets
    for hitting-set consumers.  Callers that can work on packed bitsets
    (dedup, intersection) should use the engine directly and skip the
    frozenset conversion entirely.
    """
    values = np.asarray(values, dtype=np.float64)
    weight_matrix = np.asarray(weight_matrix, dtype=np.float64)
    if weight_matrix.ndim != 2:
        raise ValidationError("weight_matrix must be 2-dimensional")
    if weight_matrix.shape[1] != values.shape[1]:
        raise ValidationError(
            f"weight vectors have {weight_matrix.shape[1]} entries for "
            f"{values.shape[1]} attributes"
        )
    n = values.shape[0]
    k = _validate_k(k, n)
    order = ScoreEngine(values).topk_batch(weight_matrix, k).order
    return [frozenset(int(i) for i in row) for row in order]
