"""Linear ranking functions and the weight ⇄ angle parameterization.

The paper models user preferences as linear functions
``f(t) = Σ w_i · t[i]`` with positive weights (§2, Eq. 1), and views each
function geometrically as an origin-starting ray identified by ``d − 1``
angles (§3, §5.3).  :class:`LinearFunction` packages a weight vector;
:func:`weights_from_angles` / :func:`angles_from_weights` implement the
spherical parameterization MDRC partitions over.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "LinearFunction",
    "weights_from_angles",
    "weights_from_angles_batch",
    "angles_from_weights",
]


def _as_weights(weights: object) -> np.ndarray:
    vector = np.asarray(weights, dtype=np.float64).reshape(-1)
    if vector.size == 0:
        raise ValidationError("weight vector must be non-empty")
    if not np.all(np.isfinite(vector)):
        raise ValidationError("weights must be finite")
    if np.any(vector < 0):
        raise ValidationError("the paper restricts to non-negative weights")
    if not np.any(vector > 0):
        raise ValidationError("at least one weight must be positive")
    return vector


class LinearFunction:
    """A linear ranking function ``f(t) = Σ w_i · t[i]`` (paper Eq. 1).

    Weight vectors that differ only by a positive scalar induce the same
    ranking, so :attr:`weights` is stored L2-normalized.  Instances are
    immutable, hashable on the normalized weights, and callable.
    """

    __slots__ = ("weights",)

    def __init__(self, weights: object) -> None:
        vector = _as_weights(weights)
        vector = vector / np.linalg.norm(vector)
        vector.setflags(write=False)
        self.weights = vector

    @classmethod
    def from_angles(cls, angles: Sequence[float]) -> "LinearFunction":
        """Build the function whose ray has the given ``d − 1`` angles."""
        return cls(weights_from_angles(angles))

    @property
    def d(self) -> int:
        """Number of attributes the function scores."""
        return int(self.weights.size)

    @property
    def angles(self) -> np.ndarray:
        """The ``d − 1`` ray angles of this function (each in [0, π/2])."""
        return angles_from_weights(self.weights)

    def __call__(self, points: object) -> np.ndarray | float:
        """Score one point (1-D input) or a matrix of points (2-D input)."""
        array = np.asarray(points, dtype=np.float64)
        if array.ndim == 1:
            if array.size != self.d:
                raise ValidationError(
                    f"point has {array.size} attributes, function expects {self.d}"
                )
            return float(array @ self.weights)
        if array.ndim == 2:
            if array.shape[1] != self.d:
                raise ValidationError(
                    f"points have {array.shape[1]} attributes, function expects {self.d}"
                )
            return array @ self.weights
        raise ValidationError("points must be 1- or 2-dimensional")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearFunction):
            return NotImplemented
        return self.weights.shape == other.weights.shape and bool(
            np.allclose(self.weights, other.weights)
        )

    def __hash__(self) -> int:
        return hash(np.round(self.weights, 12).tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearFunction({np.array2string(self.weights, precision=4)})"


def weights_from_angles(angles: Sequence[float]) -> np.ndarray:
    """Map ``d − 1`` angles in ``[0, π/2]`` to a unit weight vector in R^d.

    Uses the spherical parameterization

    ``w_1 = cos θ_1``
    ``w_i = cos θ_i · Π_{j<i} sin θ_j``   (1 < i < d)
    ``w_d = Π_j sin θ_j``

    which bijectively covers the first orthant of the unit sphere — exactly
    the paper's "set of d − 1 angles" identification of the function space
    (§3, §5.3).  For ``d = 2`` this is ``(cos θ, sin θ)`` with the sweep
    starting at the x-axis, matching Figures 2–4.
    """
    theta = np.asarray(angles, dtype=np.float64).reshape(-1)
    if theta.size == 0:
        raise ValidationError("need at least one angle (d >= 2)")
    if not np.all(np.isfinite(theta)):
        raise ValidationError("angles must be finite")
    if np.any(theta < -1e-12) or np.any(theta > np.pi / 2 + 1e-12):
        raise ValidationError("angles must lie in [0, pi/2]")
    theta = np.clip(theta, 0.0, np.pi / 2)
    d = theta.size + 1
    weights = np.empty(d, dtype=np.float64)
    sin_prefix = 1.0
    for i in range(d - 1):
        weights[i] = sin_prefix * np.cos(theta[i])
        sin_prefix *= np.sin(theta[i])
    weights[d - 1] = sin_prefix
    # Guard against tiny negative values from rounding.
    np.clip(weights, 0.0, None, out=weights)
    return weights


def weights_from_angles_batch(angle_matrix: np.ndarray) -> np.ndarray:
    """Vectorized :func:`weights_from_angles`: ``(m, d−1)`` angles → ``(m, d)``.

    Bit-identical to mapping the scalar function over the rows (the same
    ufunc evaluations combine in the same order — ``cumprod`` multiplies
    the sine prefix sequentially exactly as the scalar loop does), so
    batched consumers such as MDRC's frontier evaluation stay exactly
    equivalent to per-corner construction.
    """
    theta = np.asarray(angle_matrix, dtype=np.float64)
    if theta.ndim != 2 or theta.shape[1] == 0:
        raise ValidationError("angle matrix must be (m, d-1) with d >= 2")
    if not np.all(np.isfinite(theta)):
        raise ValidationError("angles must be finite")
    if np.any(theta < -1e-12) or np.any(theta > np.pi / 2 + 1e-12):
        raise ValidationError("angles must lie in [0, pi/2]")
    theta = np.clip(theta, 0.0, np.pi / 2)
    m, dm1 = theta.shape
    cos = np.cos(theta)
    sin_prefix = np.cumprod(np.sin(theta), axis=1)
    weights = np.empty((m, dm1 + 1), dtype=np.float64)
    weights[:, 0] = cos[:, 0]
    weights[:, 1:dm1] = cos[:, 1:] * sin_prefix[:, :-1]
    weights[:, dm1] = sin_prefix[:, -1]
    np.clip(weights, 0.0, None, out=weights)
    return weights


def angles_from_weights(weights: object) -> np.ndarray:
    """Inverse of :func:`weights_from_angles` for non-negative vectors."""
    vector = _as_weights(weights)
    if vector.size < 2:
        raise ValidationError("angles are only defined for d >= 2")
    vector = vector / np.linalg.norm(vector)
    d = vector.size
    theta = np.empty(d - 1, dtype=np.float64)
    sin_prefix = 1.0
    for i in range(d - 1):
        if sin_prefix <= 1e-300:
            # The remaining coordinates are all zero; any angle works.
            theta[i:] = 0.0
            break
        ratio = np.clip(vector[i] / sin_prefix, -1.0, 1.0)
        theta[i] = np.arccos(ratio)
        sin_prefix *= np.sin(theta[i])
    return np.clip(theta, 0.0, np.pi / 2)
