"""``repro.Session`` — one dataset, one engine, one coherent API.

The free functions (:func:`repro.mdrc`, :func:`repro.sample_ksets`,
:func:`repro.md_rrr`, :func:`repro.rank_regret_sampled`,
:func:`repro.evaluate_representative`) each accept a matrix and build a
throwaway :class:`~repro.engine.ScoreEngine` unless handed one
explicitly.  That is the right shape for scripts; for a long-lived
process — the CLI's ``--maintain`` loops, :mod:`repro.serve`, notebooks
iterating on one dataset — it repeats engine construction, calibration
and pruning-ordering builds on every call and leaves the caller to
thread the shared engine through by hand.

:class:`Session` owns that engine.  It is constructed once over a
matrix with the unified knob vocabulary (``jobs``, ``backend``,
``tune``, ``policy``), and every method scores through the same
calibrated engine: algorithms (:meth:`mdrc`, :meth:`sample_ksets`,
:meth:`md_rrr`), evaluation (:meth:`rank_regret`, :meth:`evaluate`),
raw batch queries (:meth:`topk`, :meth:`rank_of_best`) and journaled
mutations (:meth:`insert_rows`, :meth:`delete_rows`).  Results are
bit-identical to the free functions over the same matrix — the engine
tier contract makes reuse observationally invisible.

Example::

    import repro

    with repro.Session(values, jobs=-1, tune="auto") as session:
        result = session.mdrc(k=10)
        report = session.evaluate(result.indices, k=10)
        session.insert_rows(new_rows)          # journaled delta
        refreshed = session.mdrc(k=10)         # same engine, repaired
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.engine import ScoreEngine, TopKBatch

__all__ = ["Session"]


class Session:
    """A facade owning one :class:`~repro.engine.ScoreEngine` per dataset.

    Parameters
    ----------
    values:
        ``(n, d)`` data matrix (rows are tuples, columns attributes).
    jobs:
        Worker count for every engine-backed call (``None``/``1`` =
        serial, ``-1`` = all cores).
    backend:
        ``"auto"`` | ``"serial"`` | ``"thread"`` | ``"process"``.
    tune:
        ``None`` (defaults), ``"auto"`` (calibrate on first use) or a
        :class:`~repro.engine.TuningProfile` (e.g. loaded from the
        checksummed JSON written by ``repro --tuning-profile``).
    policy:
        A :class:`~repro.engine.RetryPolicy` for fault handling, or
        ``None`` for the process-wide default.
    float32:
        Enable the float32 tier (bit-identical by the exactness ladder;
        on by default because a shared engine amortizes its setup).
    shards:
        ``None`` (default) = one in-process engine.  ``N >= 1`` = a
        :class:`~repro.engine.ShardedScoreEngine`: rows partitioned
        across N supervised worker shards with deterministic merges —
        every result still bit-identical to the unsharded engine.
    shard_isolation:
        ``"process"`` (crash-isolated child processes, the production
        mode) or ``"local"`` (in-process shards, deterministic and
        cheap).  Only meaningful with ``shards``.
    data_dir:
        Fleet state root for the sharded engine (router WAL + per-shard
        stores); the fleet then survives restarts.  Only meaningful
        with ``shards`` — unsharded durability lives in
        :mod:`repro.serve`'s ``ServerConfig.data_dir``.
    """

    def __init__(
        self,
        values: np.ndarray | None,
        *,
        jobs: int | None = None,
        backend: str = "auto",
        tune=None,
        policy=None,
        float32: bool = True,
        shards: int | None = None,
        shard_isolation: str = "process",
        data_dir: str | None = None,
    ) -> None:
        if shards is not None:
            from repro.engine.sharded import ShardedScoreEngine

            self._engine = ShardedScoreEngine(
                values,
                shards=shards,
                isolation=shard_isolation,
                data_dir=data_dir,
                policy=policy,
                engine_opts={
                    "float32": float32,
                    "backend": backend,
                    "n_jobs": jobs,
                    "tune": tune,
                },
            )
        else:
            if data_dir is not None:
                raise ValueError(
                    "Session(data_dir=...) requires shards; unsharded "
                    "durability is configured via ServerConfig.data_dir"
                )
            self._engine = ScoreEngine(
                values,
                float32=float32,
                n_jobs=jobs,
                backend=backend,
                tune=tune,
                resilience=policy,
            )

    # ------------------------------------------------------------------
    # introspection

    @property
    def engine(self):
        """The shared engine (for views, ``repro.serve``, diagnostics).

        An unsharded session returns its :class:`ScoreEngine`; a sharded
        one returns the :class:`~repro.engine.ShardedScoreEngine` facade
        (same query/mutation/submit surface, bit-identical results).
        """
        return self._engine

    @property
    def sharded(self) -> bool:
        return not isinstance(self._engine, ScoreEngine)

    @property
    def algo_engine(self) -> ScoreEngine:
        """The full :class:`ScoreEngine` the algorithm layer runs on.

        For a sharded session this is the router's reference engine —
        the journal of record the views subscribe to; its results are
        bit-identical to the fleet's by the exactness contract.
        """
        if self.sharded:
            return self._engine.reference_engine
        return self._engine

    @property
    def values(self) -> np.ndarray:
        """Current data matrix (journaled mutations settled)."""
        self._engine.compact()
        return self._engine.values

    @property
    def n(self) -> int:
        self._engine.compact()
        return self._engine.n

    @property
    def d(self) -> int:
        return self._engine.d

    @property
    def revision(self) -> int:
        """Mutation revision counter (increments per insert/delete)."""
        return self._engine.revision

    @property
    def stats(self) -> dict:
        return self._engine.stats

    # ------------------------------------------------------------------
    # raw batch queries (the serving hot path)

    def topk(self, weights: np.ndarray, k: int) -> TopKBatch:
        """Batched top-k: one row of ``weights`` per ranking function."""
        return self._engine.topk_batch(weights, k)

    def rank_of_best(self, weights: np.ndarray, subset: Iterable[int]) -> np.ndarray:
        """Rank of the best ``subset`` member under each weight row."""
        return self._engine.rank_of_best_batch(weights, subset)

    # ------------------------------------------------------------------
    # algorithms

    def mdrc(self, k: int | float, **options):
        """MDRC over the session matrix (see :func:`repro.mdrc`)."""
        from repro.core.mdrc import mdrc

        return mdrc(self.values, self._level(k), engine=self.algo_engine, **options)

    def sample_ksets(self, k: int | float, **options):
        """K-SETr draws over the session matrix (see :func:`repro.sample_ksets`)."""
        from repro.geometry.ksets import sample_ksets

        return sample_ksets(self.values, self._level(k), engine=self.algo_engine, **options)

    def md_rrr(self, k: int | float, **options):
        """MDRRR over the session matrix (see :func:`repro.md_rrr`)."""
        from repro.core.mdrrr import md_rrr

        return md_rrr(self.values, self._level(k), engine=self.algo_engine, **options)

    # ------------------------------------------------------------------
    # evaluation

    def rank_regret(self, subset: Iterable[int], **options) -> int | np.ndarray:
        """Sampled rank-regret of ``subset`` (see :func:`repro.rank_regret_sampled`)."""
        from repro.evaluation.regret import rank_regret_sampled

        return rank_regret_sampled(
            self.values, subset, engine=self.algo_engine, **options
        )

    def evaluate(self, subset: Iterable[int], k: int | float, **options):
        """Full report for ``subset`` (see :func:`repro.evaluate_representative`)."""
        from repro.evaluation.metrics import evaluate_representative

        return evaluate_representative(
            self.values, subset, self._level(k), engine=self.algo_engine, **options
        )

    # ------------------------------------------------------------------
    # mutations (journaled; queries after a mutation see the new matrix)

    def insert_rows(self, rows: np.ndarray) -> np.ndarray:
        """Append rows via the delta journal; returns their indices."""
        return self._engine.insert_rows(rows)

    def delete_rows(self, indices) -> int:
        """Delete rows by current index; returns the number removed."""
        return self._engine.delete_rows(indices)

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        self._engine.close()

    def abandon(self) -> None:
        """Crash-simulation teardown: in-process handles dropped, disk
        left exactly as a killed process would (sharded engines abandon
        their stores; an unsharded engine has nothing durable here)."""
        abandon = getattr(self._engine, "abandon", None)
        if abandon is not None:
            abandon()
        else:
            self._engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(n={self._engine.n}, d={self._engine.d}, "
            f"revision={self._engine.revision})"
        )

    # ------------------------------------------------------------------

    def _level(self, k: int | float) -> int:
        """Resolve fractional ``k`` (top-1% style) against the live n."""
        from repro.core.api import resolve_k

        return resolve_k(k, self._engine.n)
