"""Maxima representations: the k = 1 reference points of the paper (§1–2).

The convex hull (for linear functions) and the skyline (for monotone
functions) are the *exact* order-1 representatives; their size is what
motivates relaxing to k > 1.  These wrappers expose them with the same
calling convention as the RRR algorithms so examples and benchmarks can
put sizes side by side.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.hull import maxima_representation
from repro.geometry.skyline import skyline as _skyline

__all__ = ["convex_hull_representative", "skyline_representative"]


def convex_hull_representative(values: np.ndarray) -> list[int]:
    """The order-1 RRR for linear functions: the dominant hull vertices.

    Guaranteed to contain the top-1 of every function in ``L``; typically
    large in higher dimensions, which is the paper's motivation (§1).
    """
    return [int(i) for i in maxima_representation(np.asarray(values, dtype=np.float64))]


def skyline_representative(values: np.ndarray) -> list[int]:
    """The order-1 representative for monotone functions (the skyline)."""
    return [int(i) for i in _skyline(np.asarray(values, dtype=np.float64))]
