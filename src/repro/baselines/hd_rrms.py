"""HD-RRMS: the regret-*ratio* baseline (Asudeh et al., SIGMOD 2017).

The paper compares RRR against HD-RRMS, the state-of-the-art regret-ratio
minimizing-set algorithm, which "works based on discretizing the function
space and applying hitting set" and takes the output size as input (§6.1).
Reproduced here in that exact shape:

1. discretize the linear function space into a lattice of functions;
2. for a regret threshold ε, each function contributes the set of tuples
   whose score is within ``(1 − ε)`` of that function's best score — any
   of them keeps the regret-ratio at most ε for the function;
3. a hitting set over those sets achieves regret-ratio ≤ ε (up to the
   discretization's additive error) everywhere;
4. binary search on ε finds the smallest threshold whose hitting set fits
   the requested size budget.

Because it optimizes *score* gaps, its output provably says nothing about
*rank* gaps — the experiments show its rank-regret is often a large
fraction of n (Figures 18–28), which is the paper's central contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import ScoreEngine
from repro.exceptions import ValidationError
from repro.ranking.sampling import grid_functions, sample_functions
from repro.setcover.hitting_set import greedy_hitting_set

__all__ = ["HDRRMSResult", "hd_rrms"]


@dataclass(frozen=True)
class HDRRMSResult:
    """Output of :func:`hd_rrms`.

    Attributes
    ----------
    indices:
        Selected row indices (sorted), at most the requested size.
    epsilon:
        The smallest feasible regret-ratio threshold the search found.
    functions_used:
        Number of discretized functions covered.
    """

    indices: tuple[int, ...]
    epsilon: float
    functions_used: int


def _threshold_sets(
    score_matrix: np.ndarray, epsilon: float
) -> list[frozenset[int]]:
    """Per function, the tuples scoring within (1 − ε) of the maximum."""
    cutoffs = score_matrix.max(axis=0) * (1.0 - epsilon)
    qualifies = score_matrix >= cutoffs[None, :]  # one vectorized pass
    return [
        frozenset(int(i) for i in np.flatnonzero(qualifies[:, column]))
        for column in range(score_matrix.shape[1])
    ]


def hd_rrms(
    values: np.ndarray,
    size: int,
    num_functions: int = 512,
    discretization: str = "grid",
    rng: int | np.random.Generator | None = None,
    tolerance: float = 1e-4,
    gamma: float | None = 0.05,
) -> HDRRMSResult:
    """Regret-ratio minimizing set of at most ``size`` tuples.

    Parameters
    ----------
    values:
        ``(n, d)`` normalized matrix (non-negative scores assumed).
    size:
        Output size budget — the paper feeds it MDRC's output size so the
        comparison is size-for-size (§6.1).
    num_functions:
        Number of discretized functions (lattice resolution).
    discretization:
        ``"grid"`` (deterministic angle lattice) or ``"sample"``
        (Marsaglia-uniform random functions).
    rng:
        Seed/generator for the ``"sample"`` discretization.
    tolerance:
        Binary-search resolution on ε (only used when ``gamma`` is None).
    gamma:
        Additive approximation granularity: the algorithm of [Asudeh et
        al. 2017] controls regret-ratio only up to an additive γ set by
        how finely it can afford to discretize, and settles for the
        smallest *multiple of γ* whose hitting set fits the budget.  That
        slack is precisely why its rank-regret explodes on score-dense
        data (this paper's Figures 18–28).  Pass ``None`` for an
        idealized continuous binary search on ε — a strictly stronger
        variant kept for the ablation benchmark.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    n, d = matrix.shape
    size = int(size)
    if not 1 <= size <= n:
        raise ValidationError(f"size must be in [1, {n}], got {size}")
    if num_functions < 1:
        raise ValidationError("num_functions must be >= 1")

    if gamma is not None and not 0.0 < gamma <= 1.0:
        raise ValidationError("gamma must be in (0, 1] or None")
    if discretization == "grid":
        if d == 1:
            weights = np.ones((1, 1))
        else:
            per_axis = max(2, int(round(num_functions ** (1.0 / (d - 1)))))
            weights = grid_functions(d, per_axis)
    elif discretization == "sample":
        weights = sample_functions(d, num_functions, rng)
    else:
        raise ValidationError(f"unknown discretization {discretization!r}")
    # Chunked GEMM through the shared engine bounds the BLAS working set;
    # the (n, m) score matrix itself is still materialized, as the
    # hitting-set passes below need every column.
    score_matrix = ScoreEngine(matrix).score_batch(weights)

    best: list[int] | None = None
    best_eps = 1.0
    if gamma is not None:
        # Faithful mode: try ε = γ, 2γ, ... and keep the first fit.
        steps = int(np.ceil(1.0 / gamma)) + 1
        for step in range(1, steps + 1):
            epsilon = min(1.0, step * gamma)
            chosen = greedy_hitting_set(_threshold_sets(score_matrix, epsilon))
            if len(chosen) <= size:
                best, best_eps = chosen, epsilon
                break
    else:
        # Idealized mode: continuous binary search on epsilon.
        lo, hi = 0.0, 1.0
        while hi - lo > tolerance:
            mid = (lo + hi) / 2.0
            chosen = greedy_hitting_set(_threshold_sets(score_matrix, mid))
            if len(chosen) <= size:
                best, best_eps = chosen, mid
                hi = mid
            else:
                lo = mid
    if best is None:
        # epsilon = 1 is always feasible: every tuple qualifies for every
        # function, so any single tuple is a hitting set.
        best = greedy_hitting_set(_threshold_sets(score_matrix, 1.0))
        best_eps = 1.0
    return HDRRMSResult(
        indices=tuple(sorted(int(i) for i in best)),
        epsilon=float(best_eps),
        functions_used=int(weights.shape[0]),
    )
