"""The Cube algorithm (Nanongkai et al., VLDB 2010).

The first algorithm proposed for regret-ratio minimizing sets in MD and a
classic baseline in the literature (§7).  It partitions the domain of the
first ``d − 1`` attributes into ``t^{d−1}`` equal hypercubes and keeps,
from each non-empty cube, the tuple maximizing the last attribute.  With
``t`` chosen from the size budget this gives the well-known
``O(1/t)`` regret-ratio bound while being trivially fast.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["cube"]


def cube(values: np.ndarray, size: int) -> list[int]:
    """Cube representative of at most ``size`` tuples (sorted indices).

    Parameters
    ----------
    values:
        ``(n, d)`` normalized matrix, d ≥ 2.
    size:
        Output budget; the per-axis resolution is
        ``t = floor(size^(1/(d−1)))`` so at most ``t^{d−1}`` cubes (plus
        the global best on the last attribute) are selected.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    n, d = matrix.shape
    if d < 2:
        raise ValidationError("cube needs d >= 2")
    size = int(size)
    if not 1 <= size <= n:
        raise ValidationError(f"size must be in [1, {n}], got {size}")
    t = max(1, int(size ** (1.0 / (d - 1))))

    leading = matrix[:, : d - 1]
    lo = leading.min(axis=0)
    hi = leading.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    cells = np.floor((leading - lo) / span * t).astype(np.int64)
    np.clip(cells, 0, t - 1, out=cells)

    best_per_cell: dict[tuple[int, ...], int] = {}
    last = matrix[:, d - 1]
    for i in range(n):
        key = tuple(int(c) for c in cells[i])
        current = best_per_cell.get(key)
        if current is None or last[i] > last[current]:
            best_per_cell[key] = i
    chosen = set(best_per_cell.values())
    # Keep the budget: drop the cells with the weakest champions if needed.
    if len(chosen) > size:
        ranked = sorted(chosen, key=lambda i: (-last[i], i))
        chosen = set(ranked[:size])
    return sorted(chosen)
