"""Greedy regret-ratio heuristic (Nanongkai et al., VLDB 2010).

The second classic baseline from the regret-ratio line of work (§7): grow
the representative one tuple at a time, always adding the tuple that most
reduces the current maximum regret-ratio.  The continuous max over the
function space is evaluated on a Monte-Carlo / lattice discretization, as
in the original paper's implementation.
"""

from __future__ import annotations

import numpy as np

from repro.engine import ScoreEngine
from repro.exceptions import ValidationError
from repro.ranking.sampling import sample_functions

__all__ = ["greedy_regret"]


def greedy_regret(
    values: np.ndarray,
    size: int,
    num_functions: int = 1000,
    rng: int | np.random.Generator | None = None,
) -> list[int]:
    """Greedy max-regret-ratio minimizing set of exactly ``min(size, n)`` tuples.

    Starts from the tuple best for the all-equal-weights function, then
    repeatedly adds the tuple minimizing the resulting maximum regret-ratio
    over the sampled function set.  Returns sorted indices.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    n, d = matrix.shape
    size = int(size)
    if not 1 <= size <= n:
        raise ValidationError(f"size must be in [1, {n}], got {size}")
    if num_functions < 1:
        raise ValidationError("num_functions must be >= 1")

    weights = sample_functions(d, num_functions, rng)
    score_matrix = ScoreEngine(matrix).score_batch(weights)  # (n, m), chunked
    best_scores = score_matrix.max(axis=0)  # per function
    safe_best = np.where(best_scores > 0, best_scores, 1.0)

    start = int(np.argmax(matrix.sum(axis=1)))
    chosen = [start]
    chosen_mask = np.zeros(n, dtype=bool)
    chosen_mask[start] = True
    # current best score achieved by the chosen set, per function
    achieved = score_matrix[start].copy()

    while len(chosen) < size:
        # For each candidate, the new worst regret-ratio if added.
        candidate_best = np.maximum(achieved[None, :], score_matrix)  # (n, m)
        ratios = (best_scores[None, :] - candidate_best) / safe_best[None, :]
        worst = ratios.max(axis=1)
        worst[chosen_mask] = np.inf
        pick = int(np.argmin(worst))
        chosen.append(pick)
        chosen_mask[pick] = True
        achieved = np.maximum(achieved, score_matrix[pick])
        if worst[pick] <= 0.0:
            break  # zero regret everywhere: adding more cannot help
    return sorted(chosen)
