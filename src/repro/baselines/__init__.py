"""Baselines the paper compares against: HD-RRMS, Cube, greedy regret,
and the order-1 maxima representations."""

from repro.baselines.cube import cube
from repro.baselines.greedy_regret import greedy_regret
from repro.baselines.hd_rrms import HDRRMSResult, hd_rrms
from repro.baselines.maxima import convex_hull_representative, skyline_representative

__all__ = [
    "hd_rrms",
    "HDRRMSResult",
    "cube",
    "greedy_regret",
    "convex_hull_representative",
    "skyline_representative",
]
