"""Experiment harness reproducing the paper's evaluation (§6)."""

from repro.experiments.config import (
    BENCH_EXPERIMENTS,
    PAPER_EXPERIMENTS,
    ExperimentConfig,
    KSetCountConfig,
    bench_scale,
    paper_scale,
)
from repro.experiments.reproduce import PAPER_CLAIMS, reproduce_all
from repro.experiments.report import (
    format_experiment_table,
    format_kset_table,
    summarize_shapes,
)
from repro.experiments.runner import (
    ExperimentRow,
    KSetCountRow,
    make_dataset,
    run_experiment,
    run_kset_count,
)

__all__ = [
    "ExperimentConfig",
    "KSetCountConfig",
    "paper_scale",
    "bench_scale",
    "PAPER_EXPERIMENTS",
    "BENCH_EXPERIMENTS",
    "ExperimentRow",
    "KSetCountRow",
    "make_dataset",
    "run_experiment",
    "run_kset_count",
    "format_experiment_table",
    "format_kset_table",
    "summarize_shapes",
    "reproduce_all",
    "PAPER_CLAIMS",
]
