"""Rendering experiment rows as the tables EXPERIMENTS.md records.

Keeps formatting out of the runner so benchmarks can consume raw rows and
humans can consume tables.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentRow, KSetCountRow

__all__ = ["format_experiment_table", "format_kset_table", "summarize_shapes"]


def _render(header: list[str], body: list[list[str]]) -> str:
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "| " + " | ".join(h.ljust(widths[i]) for i, h in enumerate(header)) + " |",
        "|" + "|".join("-" * (w + 2) for w in widths) + "|",
    ]
    for row in body:
        lines.append(
            "| " + " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) + " |"
        )
    return "\n".join(lines)


def format_experiment_table(rows: Sequence[ExperimentRow]) -> str:
    """Markdown table of a comparison experiment's rows."""
    header = [
        "experiment", "dataset", "algorithm", "n", "d", "k",
        "time (s)", "size", "rank-regret", "≤ k",
    ]
    body = [
        [
            r.experiment_id,
            r.dataset,
            r.algorithm,
            str(r.n),
            str(r.d),
            str(r.k),
            f"{r.time_sec:.4f}",
            str(r.output_size),
            str(r.rank_regret),
            "yes" if r.meets_k else "NO",
        ]
        for r in rows
    ]
    return _render(header, body)


def format_kset_table(rows: Sequence[KSetCountRow]) -> str:
    """Markdown table of k-set count rows (Figures 13–16)."""
    header = [
        "experiment", "dataset", "n", "d", "k",
        "#k-sets", "upper bound", "draws", "time (s)",
    ]
    body = [
        [
            r.experiment_id,
            r.dataset,
            str(r.n),
            str(r.d),
            str(r.k),
            str(r.num_ksets),
            f"{r.upper_bound:.3g}",
            str(r.draws),
            f"{r.time_sec:.4f}",
        ]
        for r in rows
    ]
    return _render(header, body)


def summarize_shapes(rows: Sequence[ExperimentRow]) -> dict[str, bool]:
    """Check the paper's qualitative claims against measured rows.

    Returns a mapping of claim name → whether the rows support it:

    * ``rrr_meets_k`` — every proposed algorithm (2DRRR/MDRRR/MDRC) kept
      rank-regret within its guarantee zone (we check the stricter ≤ k
      that the paper observed empirically for MDRRR, and ≤ 2k / d·k for
      the others);
    * ``hd_rrms_violates_k`` — the regret-ratio baseline exceeded k
      somewhere (the paper's central negative result);
    * ``outputs_small`` — every proposed-algorithm output stayed < 40
      tuples (§6.2 "the output sizes in all the experiments were less
      than 40").
    """
    proposed = [r for r in rows if r.algorithm in ("2drrr", "mdrrr", "mdrc")]
    baseline = [r for r in rows if r.algorithm == "hd_rrms"]
    guarantees = {
        "2drrr": lambda r: r.rank_regret <= 2 * r.k,
        "mdrrr": lambda r: r.rank_regret <= r.k,
        "mdrc": lambda r: r.rank_regret <= r.d * r.k,
    }
    return {
        "rrr_meets_k": all(guarantees[r.algorithm](r) for r in proposed),
        "hd_rrms_violates_k": (not baseline)
        or any(r.rank_regret > r.k for r in baseline),
        "outputs_small": all(r.output_size < 40 for r in proposed),
    }
