"""Experiment execution: build datasets, time algorithms, measure outputs.

The runner reproduces the paper's protocol (§6.1): build the dataset, fix
all-but-one parameter at the defaults, sweep the remaining one, time each
algorithm, and measure output size and rank-regret (exact in 2-D, 10,000
sampled functions otherwise).  HD-RRMS receives MDRC's output size as its
size budget, exactly as the paper does to keep the comparison fair.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro._compat import renamed_kwargs
from repro.baselines.hd_rrms import hd_rrms
from repro.core.api import resolve_k
from repro.core.mdrc import mdrc
from repro.core.mdrrr import md_rrr
from repro.core.rrr2d import two_d_rrr
from repro.datasets.base import Dataset
from repro.datasets.bluenile import synthetic_bluenile
from repro.datasets.dot import synthetic_dot
from repro.evaluation.metrics import evaluate_representative
from repro.exceptions import ValidationError
from repro.experiments.config import ExperimentConfig, KSetCountConfig
from repro.geometry.ksets import enumerate_ksets_2d, sample_ksets
from repro.evaluation.bounds import kset_upper_bound

__all__ = [
    "ExperimentRow",
    "KSetCountRow",
    "MaintenanceRow",
    "make_dataset",
    "run_experiment",
    "run_kset_count",
    "run_maintenance",
]


@dataclass(frozen=True)
class ExperimentRow:
    """One (algorithm, sweep-point) measurement."""

    experiment_id: str
    dataset: str
    algorithm: str
    n: int
    d: int
    k: int
    time_sec: float
    output_size: int
    rank_regret: int
    meets_k: bool


@dataclass(frozen=True)
class KSetCountRow:
    """One sweep point of a k-set count experiment (Figures 13–16)."""

    experiment_id: str
    dataset: str
    n: int
    d: int
    k: int
    num_ksets: int
    upper_bound: float
    draws: int
    time_sec: float


def make_dataset(name: str, n: int, d: int, seed: int = 0) -> Dataset:
    """Build the named synthetic stand-in at the requested shape."""
    if name == "dot":
        return synthetic_dot(n=n, d=d, seed=seed)
    if name == "bn":
        return synthetic_bluenile(n=n, d=d, seed=seed)
    raise ValidationError(f"unknown dataset {name!r}")


def _run_algorithm(
    name: str,
    values: np.ndarray,
    k: int,
    seed: int,
    mdrc_size_hint: int | None,
    verify_functions: int = 2000,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
) -> tuple[list[int], float]:
    """Run one algorithm, returning (indices, wall seconds)."""
    start = time.perf_counter()
    if name == "2drrr":
        indices = two_d_rrr(values, k)
    elif name == "mdrrr":
        indices = md_rrr(
            values, k, rng=seed, verify_functions=verify_functions,
            jobs=jobs, backend=backend, tune=tune,
        ).indices
    elif name == "mdrc":
        indices = mdrc(values, k, jobs=jobs, backend=backend, tune=tune).indices
    elif name == "hd_rrms":
        budget = mdrc_size_hint if mdrc_size_hint else max(1, min(20, values.shape[0]))
        indices = list(hd_rrms(values, budget, rng=seed).indices)
    else:
        raise ValidationError(f"unknown algorithm {name!r}")
    elapsed = time.perf_counter() - start
    return list(indices), elapsed


@renamed_kwargs(n_jobs="jobs")
def run_experiment(
    config: ExperimentConfig,
    progress: Callable[[str], None] | None = None,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
) -> list[ExperimentRow]:
    """Execute a comparison experiment and return its measurement rows.

    ``jobs``/``backend`` fan the engine-backed algorithms and the
    Monte-Carlo quality measurement out over the engine's worker pool;
    measured outputs are bit-identical to the serial run.
    """
    rows: list[ExperimentRow] = []
    for value in config.values:
        n = int(value) if config.vary == "n" else config.n
        d = int(value) if config.vary == "d" else config.d
        k_fraction = float(value) if config.vary == "k" else config.k_fraction
        dataset = make_dataset(config.dataset, n=n, d=d, seed=config.seed)
        values = dataset.values
        k = resolve_k(k_fraction if 0 < k_fraction < 1 else int(k_fraction), n)

        # MDRC first: the paper feeds its output size to HD-RRMS (§6.1).
        mdrc_size: int | None = None
        ordered = sorted(
            config.algorithms, key=lambda a: (a != "mdrc",)
        )
        for algorithm in ordered:
            if progress:
                progress(f"{config.experiment_id}: {algorithm} @ {config.vary}={value}")
            indices, elapsed = _run_algorithm(
                algorithm, values, k, config.seed, mdrc_size,
                verify_functions=config.eval_functions,
                jobs=jobs, backend=backend, tune=tune,
            )
            if algorithm == "mdrc":
                mdrc_size = len(indices)
            report = evaluate_representative(
                values,
                indices,
                k,
                num_functions=config.eval_functions,
                rng=config.seed,
                jobs=jobs,
                backend=backend,
                tune=tune,
            )
            rows.append(
                ExperimentRow(
                    experiment_id=config.experiment_id,
                    dataset=config.dataset,
                    algorithm=algorithm,
                    n=n,
                    d=d,
                    k=k,
                    time_sec=elapsed,
                    output_size=report.size,
                    rank_regret=report.rank_regret,
                    meets_k=report.meets_k,
                )
            )
    return rows


@dataclass(frozen=True)
class MaintenanceRow:
    """One churn tick of a maintained-representative run."""

    tick: int
    n: int
    deletes: int
    inserts: int
    maintained_sec: float
    recompute_sec: float
    output_size: int
    rank_regret: int
    identical: bool


@renamed_kwargs(n_jobs="jobs")
def run_maintenance(
    values: np.ndarray,
    k: int,
    ticks: int = 5,
    churn: float = 0.01,
    seed: int = 0,
    algorithm: str = "mdrc",
    num_functions: int = 2000,
    verify: bool = True,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
    progress: Callable[[str], None] | None = None,
) -> list[MaintenanceRow]:
    """Serve a maintained representative under churn, one row per tick.

    Builds one long-lived engine over ``values``, attaches the
    materialized views (:mod:`repro.engine.views`) for the requested
    ``algorithm`` (``"mdrc"`` or ``"mdrrr"``) plus a maintained
    rank-regret estimator, then per tick deletes/inserts ``churn · n``
    rows and refreshes the views.  With ``verify`` each tick also runs
    the from-scratch recompute and asserts the maintained result is
    bit-identical — the contract the views guarantee — while timing
    both sides, so the returned rows double as a maintenance-vs-
    recompute measurement.
    """
    from repro.engine import MDRCView, MDRRRView, RankRegretView, ScoreEngine
    from repro.evaluation.regret import rank_regret_sampled

    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    if ticks < 1:
        raise ValidationError("ticks must be >= 1")
    if not 0.0 < churn < 1.0:
        raise ValidationError("churn must be in (0, 1)")
    if algorithm not in ("mdrc", "mdrrr"):
        raise ValidationError(f"unknown maintained algorithm {algorithm!r}")
    rng = np.random.default_rng(seed)
    rows: list[MaintenanceRow] = []
    with ScoreEngine(matrix, n_jobs=jobs, backend=backend, tune=tune) as engine:
        if algorithm == "mdrc":
            view = MDRCView(engine, k)
        else:
            view = MDRRRView(engine, k, rng=seed)
        initial = view.refresh()
        regret_view = RankRegretView(
            engine, initial.indices, num_functions=num_functions, rng=seed
        )
        regret_view.refresh()
        for tick in range(ticks):
            m = max(1, int(round(engine.n * churn)))
            dead = rng.choice(engine.n, size=m, replace=False)
            fresh_rows = rng.random((m, engine.d))
            engine.delete_rows(dead)
            engine.insert_rows(fresh_rows)
            if progress:
                progress(f"maintain tick {tick + 1}/{ticks}: ±{m} rows")
            start = time.perf_counter()
            result = view.refresh()
            regret_view.set_subset(result.indices)
            regret = regret_view.refresh()
            maintained_sec = time.perf_counter() - start
            recompute_sec = 0.0
            identical = True
            if verify:
                start = time.perf_counter()
                if algorithm == "mdrc":
                    fresh = mdrc(engine.values, k).indices
                else:
                    fresh = md_rrr(
                        engine.values, k, enumerator="sample", rng=seed
                    ).indices
                fresh_regret = rank_regret_sampled(
                    engine.values, fresh, num_functions, rng=seed, engine=engine
                )
                recompute_sec = time.perf_counter() - start
                identical = list(result.indices) == list(fresh) and regret == fresh_regret
                if not identical:
                    raise ValidationError(
                        f"maintained result diverged from recompute at tick {tick}"
                    )
            rows.append(
                MaintenanceRow(
                    tick=tick,
                    n=engine.n,
                    deletes=m,
                    inserts=m,
                    maintained_sec=maintained_sec,
                    recompute_sec=recompute_sec,
                    output_size=len(result.indices),
                    rank_regret=regret,
                    identical=identical,
                )
            )
        view.close()
        regret_view.close()
    return rows


@renamed_kwargs(n_jobs="jobs")
def run_kset_count(
    config: KSetCountConfig,
    progress: Callable[[str], None] | None = None,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
) -> list[KSetCountRow]:
    """Execute a k-set count experiment (Figures 13–16)."""
    rows: list[KSetCountRow] = []
    for value in config.values:
        d = int(value) if config.vary == "d" else config.d
        k_fraction = float(value) if config.vary == "k" else config.k_fraction
        n = config.n
        dataset = make_dataset(config.dataset, n=n, d=d, seed=config.seed)
        values = dataset.values
        k = resolve_k(k_fraction if 0 < k_fraction < 1 else int(k_fraction), n)
        if progress:
            progress(f"{config.experiment_id}: {config.vary}={value}")
        start = time.perf_counter()
        if d == 2:
            ksets = enumerate_ksets_2d(values, k)
            draws = 0
        else:
            outcome = sample_ksets(
                values, k, patience=config.patience, rng=config.seed,
                jobs=jobs, backend=backend, tune=tune,
            )
            ksets = outcome.ksets
            draws = outcome.draws
        elapsed = time.perf_counter() - start
        rows.append(
            KSetCountRow(
                experiment_id=config.experiment_id,
                dataset=config.dataset,
                n=n,
                d=d,
                k=k,
                num_ksets=len(ksets),
                upper_bound=kset_upper_bound(n, k, d),
                draws=draws,
                time_sec=elapsed,
            )
        )
    return rows
