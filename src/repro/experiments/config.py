"""Experiment definitions mapping the paper's figures to runnable configs.

Paper defaults (§6.1): ``n = 10,000``, ``d = 3``, ``k = top-1%``; rank
regret estimated over 10,000 random functions; K-SETr patience 100.

Two scales are provided for every experiment:

* ``paper_scale()`` — parameters matching the paper's sweeps (minutes to
  hours of compute, meant for a full reproduction run);
* ``bench_scale()`` — reduced sizes that preserve every qualitative shape
  and finish in seconds, used by the pytest-benchmark harness and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "ExperimentConfig",
    "KSetCountConfig",
    "paper_scale",
    "bench_scale",
    "PAPER_EXPERIMENTS",
    "BENCH_EXPERIMENTS",
]

DEFAULT_N = 10_000
DEFAULT_D = 3
DEFAULT_K_FRACTION = 0.01
DEFAULT_EVAL_FUNCTIONS = 10_000


@dataclass(frozen=True)
class ExperimentConfig:
    """One algorithm-comparison experiment (a time/effectiveness figure pair).

    Attributes
    ----------
    experiment_id:
        Identifier tying the config to the paper ("fig17_18", ...).
    dataset:
        ``"dot"`` or ``"bn"`` (the synthetic stand-ins).
    algorithms:
        Algorithm names understood by :mod:`repro.experiments.runner`.
    vary:
        Which axis the experiment sweeps: ``"n"``, ``"d"``, or ``"k"``.
    values:
        The sweep values. For ``vary="k"`` these are *fractions* of n.
    n, d, k_fraction:
        Fixed values for the axes not swept.
    eval_functions:
        Monte-Carlo sample size for rank-regret measurement.
    seed:
        Base RNG seed (dataset generation and randomized algorithms).
    """

    experiment_id: str
    dataset: str
    algorithms: tuple[str, ...]
    vary: str
    values: tuple[float, ...]
    n: int = DEFAULT_N
    d: int = DEFAULT_D
    k_fraction: float = DEFAULT_K_FRACTION
    eval_functions: int = DEFAULT_EVAL_FUNCTIONS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vary not in ("n", "d", "k"):
            raise ValueError(f"vary must be n/d/k, got {self.vary!r}")
        if self.dataset not in ("dot", "bn"):
            raise ValueError(f"dataset must be dot/bn, got {self.dataset!r}")


@dataclass(frozen=True)
class KSetCountConfig:
    """A k-set count experiment (Figures 13–16)."""

    experiment_id: str
    dataset: str
    vary: str  # "k" or "d"
    values: tuple[float, ...]
    n: int = DEFAULT_N
    d: int = DEFAULT_D
    k_fraction: float = DEFAULT_K_FRACTION
    patience: int = 100
    seed: int = 0

    def __post_init__(self) -> None:
        if self.vary not in ("d", "k"):
            raise ValueError(f"vary must be d/k, got {self.vary!r}")


_MD_ALGOS = ("mdrc", "mdrrr", "hd_rrms")
_2D_ALGOS = ("2drrr", "mdrrr", "mdrc")


def paper_scale() -> dict[str, ExperimentConfig | KSetCountConfig]:
    """The experiments at (close to) the paper's parameters."""
    return {
        "fig09_10": ExperimentConfig(
            "fig09_10", "dot", _2D_ALGOS, vary="n",
            values=(1_000, 10_000, 100_000, 400_000), d=2,
        ),
        "fig11_12": ExperimentConfig(
            "fig11_12", "dot", _2D_ALGOS, vary="k",
            values=(0.002, 0.01, 0.1), d=2,
        ),
        "fig13": KSetCountConfig(
            "fig13", "dot", vary="k", values=(0.001, 0.01, 0.1), d=3,
        ),
        "fig14": KSetCountConfig(
            "fig14", "dot", vary="d", values=(2, 3, 4, 5, 6),
        ),
        "fig15": KSetCountConfig(
            "fig15", "bn", vary="k", values=(0.001, 0.01, 0.1), d=3,
        ),
        "fig16": KSetCountConfig(
            "fig16", "bn", vary="d", values=(2, 3, 4, 5),
        ),
        "fig17_18": ExperimentConfig(
            "fig17_18", "dot", _MD_ALGOS, vary="n",
            values=(1_000, 10_000, 100_000, 400_000),
        ),
        "fig19_20": ExperimentConfig(
            "fig19_20", "bn", _MD_ALGOS, vary="n",
            values=(1_000, 10_000, 100_000),
        ),
        "fig21_22": ExperimentConfig(
            "fig21_22", "dot", _MD_ALGOS, vary="d", values=(3, 4, 5, 6),
        ),
        "fig23_24": ExperimentConfig(
            "fig23_24", "bn", _MD_ALGOS, vary="d", values=(3, 4, 5),
        ),
        "fig25_26": ExperimentConfig(
            "fig25_26", "dot", _MD_ALGOS, vary="k",
            values=(0.001, 0.01, 0.1),
        ),
        "fig27_28": ExperimentConfig(
            "fig27_28", "bn", _MD_ALGOS, vary="k",
            values=(0.001, 0.01, 0.1),
        ),
    }


def bench_scale() -> dict[str, ExperimentConfig | KSetCountConfig]:
    """Reduced-size variants preserving all qualitative shapes.

    Sweep-based algorithms (2DRRR / exact 2-D enumeration) are quadratic
    pure-Python, so n is capped in the hundreds; MD experiments cap n at a
    few thousand.  The paper's *relative* outcomes — who wins, whose
    rank-regret explodes — are insensitive to this (§6.2 reports the same
    ordering at every scale it could run).
    """
    paper = paper_scale()
    out: dict[str, ExperimentConfig | KSetCountConfig] = {}
    out["fig09_10"] = replace(
        paper["fig09_10"], values=(100, 200, 400), n=200,
        eval_functions=2_000,
    )
    out["fig11_12"] = replace(
        paper["fig11_12"], values=(0.02, 0.05, 0.1), n=300,
        eval_functions=2_000,
    )
    out["fig13"] = replace(paper["fig13"], values=(0.01, 0.05, 0.1), n=400)
    out["fig14"] = replace(paper["fig14"], values=(2, 3, 4, 5, 6), n=400)
    out["fig15"] = replace(paper["fig15"], values=(0.01, 0.05, 0.1), n=400)
    out["fig16"] = replace(paper["fig16"], values=(2, 3, 4, 5), n=400)
    out["fig17_18"] = replace(
        paper["fig17_18"], values=(500, 1_000, 2_000), n=1_000,
        eval_functions=2_000,
    )
    out["fig19_20"] = replace(
        paper["fig19_20"], values=(500, 1_000, 2_000), n=1_000,
        eval_functions=2_000,
    )
    out["fig21_22"] = replace(
        paper["fig21_22"], n=800, eval_functions=2_000,
    )
    out["fig23_24"] = replace(
        paper["fig23_24"], n=800, eval_functions=2_000,
    )
    out["fig25_26"] = replace(
        paper["fig25_26"], values=(0.005, 0.01, 0.1), n=800,
        eval_functions=2_000,
    )
    out["fig27_28"] = replace(
        paper["fig27_28"], values=(0.005, 0.01, 0.1), n=800,
        eval_functions=2_000,
    )
    return out


PAPER_EXPERIMENTS = paper_scale()
BENCH_EXPERIMENTS = bench_scale()
