"""One-dimensional interval covering (the reduction target of 2DRRR).

After Algorithm 1 computes, per item, the angle interval in which it sits
in the top-k, 2DRRR must cover the whole function space ``[0, π/2]`` with
the fewest intervals (§4).  Interval covering of a segment is solvable
*optimally* by a greedy algorithm; we implement two equivalent ones:

* :func:`cover_segment` — the textbook sweep greedy: walk left-to-right,
  always extending with the interval reaching farthest;
* :func:`cover_segment_max_coverage` — the paper's variant (Algorithm 2):
  repeatedly pick the interval covering the most currently-uncovered
  length.  The paper argues optimality via the "ranges intersect at most
  one uncovered gap" lemma; on *arbitrary* interval families this greedy
  can exceed the optimum (e.g. [0,5],[5,10],[2,8] over [0,10]), so the
  library defaults to the sweep greedy and keeps this variant for
  paper-faithful ablation.  The test suite checks both produce valid
  covers and that the sweep greedy is never larger.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import InfeasibleError, ValidationError

__all__ = ["cover_segment", "cover_segment_max_coverage"]

# Comparisons are exact on purpose.  Intervals produced by Algorithm 1
# share *bit-identical* endpoints (an exchange's angle closes one item's
# range and opens the next one's), so no slack is needed for feasibility —
# and an absolute slack is a correctness bug: it "bridges" genuine gaps
# smaller than itself (e.g. exchange angles below 1e-12 on near-degenerate
# data), silently dropping an interval the 2k-regret guarantee requires.


def _validate_intervals(
    intervals: Sequence[tuple[float, float]],
) -> list[tuple[float, float, int]]:
    triples: list[tuple[float, float, int]] = []
    for index, pair in enumerate(intervals):
        start, end = float(pair[0]), float(pair[1])
        if not (np.isfinite(start) and np.isfinite(end)):
            continue  # items never in the top-k carry NaN ranges: skip
        if end < start:
            raise ValidationError(f"interval {index} has end < start")
        triples.append((start, end, index))
    return triples


def cover_segment(
    intervals: Sequence[tuple[float, float]],
    lo: float = 0.0,
    hi: float = float(np.pi / 2),
) -> list[int]:
    """Minimum-cardinality subset of ``intervals`` covering ``[lo, hi]``.

    Classic greedy: from the current frontier, choose among intervals
    starting at or before it the one extending farthest right.  Optimal for
    segment covering.  Returns the chosen interval indices in sweep order.

    Raises
    ------
    InfeasibleError
        If the intervals do not jointly cover ``[lo, hi]``.
    """
    if hi < lo:
        raise ValidationError("need hi >= lo")
    triples = _validate_intervals(intervals)
    triples.sort()
    chosen: list[int] = []
    frontier = lo
    cursor = 0
    n = len(triples)
    while frontier < hi:
        best_end = -np.inf
        best_index = -1
        while cursor < n and triples[cursor][0] <= frontier:
            if triples[cursor][1] > best_end:
                best_end = triples[cursor][1]
                best_index = triples[cursor][2]
            cursor += 1
        if best_index < 0 or best_end <= frontier:
            raise InfeasibleError(
                f"intervals do not cover [{lo}, {hi}]: stuck at {frontier}"
            )
        chosen.append(best_index)
        frontier = best_end
    return chosen


def cover_segment_max_coverage(
    intervals: Sequence[tuple[float, float]],
    lo: float = 0.0,
    hi: float = float(np.pi / 2),
) -> list[int]:
    """The paper's greedy (Algorithm 2): maximize newly covered length.

    Keeps the list of uncovered gaps; at each step selects the interval
    covering the greatest uncovered measure, then subtracts it.  Returns
    the chosen interval indices in selection order.
    """
    if hi < lo:
        raise ValidationError("need hi >= lo")
    triples = _validate_intervals(intervals)
    gaps: list[tuple[float, float]] = [(lo, hi)] if hi > lo else []
    chosen: list[int] = []
    remaining = list(triples)
    while gaps:
        best_gain = 0.0
        best_pos = -1
        for pos, (start, end, _) in enumerate(remaining):
            gain = sum(
                max(0.0, min(end, g_hi) - max(start, g_lo)) for g_lo, g_hi in gaps
            )
            if gain > best_gain:
                best_gain = gain
                best_pos = pos
        if best_pos < 0:
            raise InfeasibleError(
                f"intervals do not cover [{lo}, {hi}]: {len(gaps)} gap(s) remain"
            )
        start, end, index = remaining.pop(best_pos)
        chosen.append(index)
        next_gaps: list[tuple[float, float]] = []
        for g_lo, g_hi in gaps:
            if end <= g_lo or start >= g_hi:
                next_gaps.append((g_lo, g_hi))
                continue
            if start > g_lo:
                next_gaps.append((g_lo, start))
            if end < g_hi:
                next_gaps.append((end, g_hi))
        gaps = next_gaps
    return chosen
