"""Covering substrate: 1-D interval covering and hitting-set solvers."""

from repro.setcover.epsnet import epsnet_hitting_set
from repro.setcover.hitting_set import (
    exact_hitting_set,
    greedy_hitting_set,
    is_hitting_set,
)
from repro.setcover.intervals import cover_segment, cover_segment_max_coverage

__all__ = [
    "cover_segment",
    "cover_segment_max_coverage",
    "greedy_hitting_set",
    "exact_hitting_set",
    "is_hitting_set",
    "epsnet_hitting_set",
]
