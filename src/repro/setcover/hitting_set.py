"""Hitting-set solvers over finite set systems.

MDRRR (§5.2) reduces RRR to the *minimum hitting set* problem over the
collection of k-sets: pick the fewest tuples intersecting every k-set.
The problem is NP-complete [Karp 1972]; we provide:

* :func:`greedy_hitting_set` — the classic ln-approximation: repeatedly
  pick the element hitting the most unhit sets;
* :func:`exact_hitting_set` — exhaustive search by increasing size, for
  cross-checking approximation ratios on small instances in tests.

The ε-net based Brönnimann–Goodrich solver (what Algorithm 3 literally
runs) lives in :mod:`repro.setcover.epsnet`.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.exceptions import InfeasibleError, ValidationError

__all__ = ["greedy_hitting_set", "exact_hitting_set", "is_hitting_set"]


def _normalize(sets: Iterable[Iterable[int]]) -> list[frozenset[int]]:
    family = [frozenset(int(i) for i in s) for s in sets]
    for members in family:
        if not members:
            raise InfeasibleError("an empty set can never be hit")
    return family


def is_hitting_set(sets: Iterable[Iterable[int]], chosen: Iterable[int]) -> bool:
    """True when ``chosen`` intersects every set in ``sets``."""
    picked = {int(i) for i in chosen}
    return all(picked & frozenset(int(i) for i in s) for s in sets)


def greedy_hitting_set(sets: Sequence[Iterable[int]]) -> list[int]:
    """Greedy minimum hitting set: O(log |sets|)-approximate.

    At every step selects the element contained in the largest number of
    not-yet-hit sets (ties: smallest element, for determinism).  Returns
    the chosen elements in selection order.
    """
    family = _normalize(sets)
    if not family:
        return []
    alive: set[int] = set(range(len(family)))
    containing: dict[int, set[int]] = {}
    for set_index, members in enumerate(family):
        for element in members:
            containing.setdefault(element, set()).add(set_index)
    chosen: list[int] = []
    while alive:
        best_element = -1
        best_hits = 0
        for element, where in containing.items():
            hits = len(where & alive)
            if hits > best_hits or (hits == best_hits and hits > 0 and element < best_element):
                best_hits = hits
                best_element = element
        if best_hits == 0:  # pragma: no cover - impossible: sets are non-empty
            raise InfeasibleError("no element hits the remaining sets")
        chosen.append(best_element)
        alive -= containing[best_element]
    return chosen


def exact_hitting_set(
    sets: Sequence[Iterable[int]], max_size: int | None = None
) -> list[int]:
    """Smallest hitting set by exhaustive search (testing/ground-truth only).

    Tries all candidate subsets of the participating elements in increasing
    size; exponential, so cap the instance or pass ``max_size``.
    """
    family = _normalize(sets)
    if not family:
        return []
    universe = sorted(set().union(*family))
    limit = len(universe) if max_size is None else int(max_size)
    if limit < 1:
        raise ValidationError("max_size must be >= 1")
    for size in range(1, limit + 1):
        for combo in itertools.combinations(universe, size):
            picked = set(combo)
            if all(picked & members for members in family):
                return list(combo)
    raise InfeasibleError(f"no hitting set of size <= {limit} exists")
