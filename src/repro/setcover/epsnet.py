"""Brönnimann–Goodrich ε-net hitting set (the engine of Algorithm 3).

For set systems of bounded VC dimension δ, Brönnimann & Goodrich (DCG '95)
give an O(δ log δc)-approximate hitting set, where c is the optimum size.
The paper plugs it into MDRRR: the k-sets are induced by halfspaces, so the
VC dimension is d (§5.2).

The algorithm guesses c by doubling. For each guess it runs the iterative
reweighting game: draw a weighted ε-net sample with ε = 1/(2c); if the net
misses some set, double the weights of that set's elements and retry.  If
a correct guess is in play, at most O(c log(n/c)) reweightings can happen
before a net that hits everything is found; exceeding the budget means the
guess was too small.

The greedy solver is deterministic and usually smaller in practice, so
MDRRR defaults to it; this module exists to run Algorithm 3 exactly as
written and for the ablation benchmark.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConvergenceError, InfeasibleError, ValidationError
from repro.setcover.hitting_set import is_hitting_set

__all__ = ["epsnet_hitting_set"]


def _normalize(sets: Sequence[Iterable[int]]) -> tuple[list[frozenset[int]], list[int]]:
    family = [frozenset(int(i) for i in s) for s in sets]
    for members in family:
        if not members:
            raise InfeasibleError("an empty set can never be hit")
    universe = sorted(set().union(*family)) if family else []
    return family, universe


def _net_size(epsilon: float, vc_dimension: int) -> int:
    """Sample size that yields an ε-net with constant probability.

    Haussler–Welzl: O((δ/ε)·log(1/ε)) samples suffice; we use the standard
    constant-8 form, capped below at 1.
    """
    return max(1, math.ceil((8.0 * vc_dimension / epsilon) * math.log(8.0 / epsilon)))


def epsnet_hitting_set(
    sets: Sequence[Iterable[int]],
    vc_dimension: int,
    rng: int | np.random.Generator | None = None,
    max_rounds_factor: float = 8.0,
) -> list[int]:
    """Hitting set via iterative-reweighting ε-nets (Brönnimann–Goodrich).

    Parameters
    ----------
    sets:
        The set system to hit (for MDRRR: the k-sets, as index collections).
    vc_dimension:
        VC dimension bound of the system — ``d`` for halfspace-induced
        k-sets (§5.2).
    rng:
        Seed or generator driving the weighted sampling.
    max_rounds_factor:
        Multiplier on the theoretical O(c log(n/c)) reweighting budget per
        guess of c before the guess is doubled.

    Returns
    -------
    Sorted element list hitting every set.
    """
    if vc_dimension < 1:
        raise ValidationError("vc_dimension must be >= 1")
    family, universe = _normalize(sets)
    if not family:
        return []
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    element_position = {element: pos for pos, element in enumerate(universe)}
    membership = [
        np.fromiter((element_position[e] for e in members), dtype=np.intp)
        for members in family
    ]
    num_elements = len(universe)

    guess = 1
    while guess <= num_elements:
        epsilon = 1.0 / (2.0 * guess)
        sample_size = min(_net_size(epsilon, vc_dimension), num_elements)
        budget = max(8, math.ceil(
            max_rounds_factor * guess * math.log(max(2.0, num_elements / guess))
        ))
        weights = np.ones(num_elements, dtype=np.float64)
        for _ in range(budget):
            probabilities = weights / weights.sum()
            drawn = generator.choice(
                num_elements, size=sample_size, replace=True, p=probabilities
            )
            net = {universe[i] for i in np.unique(drawn)}
            violated = _find_violated(family, net)
            if violated is None:
                return sorted(net)
            # Double the weight of every element of the missed set.
            weights[membership[violated]] *= 2.0
            # Rescale to dodge float overflow on long runs.
            if weights.max() > 1e250:
                weights /= weights.max()
        guess *= 2
    # Final fallback: the whole universe always hits everything.
    if is_hitting_set(family, universe):
        return list(universe)
    raise ConvergenceError("epsnet solver failed to find a hitting set")  # pragma: no cover


def _find_violated(family: list[frozenset[int]], net: set[int]) -> int | None:
    """Index of the first set missed by ``net``, or None when all are hit."""
    for index, members in enumerate(family):
        if not members & net:
            return index
    return None
