"""Dataset substrate: containers, synthetic workloads, and the paper's
DOT / Blue Nile stand-ins."""

from repro.datasets.base import Dataset
from repro.datasets.bluenile import BN_ATTRIBUTES, BN_HIGHER_IS_BETTER, synthetic_bluenile
from repro.datasets.dot import DOT_ATTRIBUTES, DOT_HIGHER_IS_BETTER, synthetic_dot
from repro.datasets.io import load_csv, save_csv
from repro.datasets.synthetic import (
    anticorrelated,
    clustered,
    correlated,
    independent,
    on_sphere,
    paper_example,
)

__all__ = [
    "Dataset",
    "paper_example",
    "independent",
    "correlated",
    "anticorrelated",
    "clustered",
    "on_sphere",
    "synthetic_dot",
    "DOT_ATTRIBUTES",
    "DOT_HIGHER_IS_BETTER",
    "synthetic_bluenile",
    "BN_ATTRIBUTES",
    "BN_HIGHER_IS_BETTER",
    "save_csv",
    "load_csv",
]
