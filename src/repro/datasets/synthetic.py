"""Synthetic workload generators.

These follow the standard multi-attribute benchmark distributions introduced
by Borzsony et al. (the skyline paper, [9] in RRR) and used throughout the
regret-minimization literature: *independent*, *correlated*,
*anti-correlated*, and *clustered* point sets, plus the 7-point running
example from Figure 1 of the paper.

All generators are deterministic given a ``seed`` and return normalized
:class:`~repro.datasets.base.Dataset` objects (values in ``[0, 1]``, higher
is better), which is the form every RRR algorithm consumes.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import ValidationError

__all__ = [
    "paper_example",
    "independent",
    "correlated",
    "anticorrelated",
    "clustered",
    "on_sphere",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _check_nd(n: int, d: int) -> None:
    if n < 1:
        raise ValidationError(f"need n >= 1, got {n}")
    if d < 1:
        raise ValidationError(f"need d >= 1, got {d}")


def paper_example() -> Dataset:
    """The 7-point, 2-attribute running example of the paper (Figure 1).

    Used by the paper to illustrate the dual space (Fig. 3), the top-k angle
    ranges (Fig. 4), and the 2-sets (Fig. 6: ``{t1,t7}, {t7,t3}, {t3,t5}``).
    Row ``i`` holds tuple ``t_{i+1}``.
    """
    values = np.array(
        [
            [0.80, 0.28],  # t1
            [0.54, 0.45],  # t2
            [0.67, 0.60],  # t3
            [0.32, 0.42],  # t4
            [0.46, 0.72],  # t5
            [0.23, 0.52],  # t6
            [0.91, 0.43],  # t7
        ]
    )
    return Dataset(values, attributes=("x1", "x2"), name="paper-example")


def independent(n: int, d: int, seed: int | np.random.Generator | None = 0) -> Dataset:
    """Uniform, independently distributed attributes in ``[0, 1]^d``."""
    _check_nd(n, d)
    rng = _rng(seed)
    return Dataset(rng.random((n, d)), name=f"independent-{n}x{d}")


def correlated(
    n: int,
    d: int,
    seed: int | np.random.Generator | None = 0,
    spread: float = 0.15,
) -> Dataset:
    """Positively correlated attributes.

    Each tuple has a latent quality ``q ~ U(0,1)``; every attribute is ``q``
    plus truncated Gaussian noise of scale ``spread``. Good tuples are good
    everywhere, so maxima representations are tiny — the easy case for RRR.
    """
    _check_nd(n, d)
    if spread < 0:
        raise ValidationError("spread must be non-negative")
    rng = _rng(seed)
    quality = rng.random((n, 1))
    noise = rng.normal(0.0, spread, size=(n, d))
    return Dataset(
        np.clip(quality + noise, 0.0, 1.0), name=f"correlated-{n}x{d}"
    )


def anticorrelated(
    n: int,
    d: int,
    seed: int | np.random.Generator | None = 0,
    spread: float = 0.1,
) -> Dataset:
    """Anti-correlated attributes (points scattered around a hyperplane).

    Tuples good in one attribute are bad in the others: points concentrate
    around the plane ``sum(x) = d/2``. This maximizes skyline/convex-hull
    size and is the hard case for compact representatives.
    """
    _check_nd(n, d)
    if spread < 0:
        raise ValidationError("spread must be non-negative")
    rng = _rng(seed)
    # Start from a uniform point, then project toward the anti-diagonal
    # plane with Gaussian perpendicular jitter (classic skyline benchmark).
    base = rng.random((n, d))
    shift = (d / 2.0 - base.sum(axis=1, keepdims=True)) / d
    points = base + shift + rng.normal(0.0, spread, size=(n, d))
    return Dataset(np.clip(points, 0.0, 1.0), name=f"anticorrelated-{n}x{d}")


def clustered(
    n: int,
    d: int,
    clusters: int = 5,
    seed: int | np.random.Generator | None = 0,
    spread: float = 0.05,
) -> Dataset:
    """Gaussian clusters with uniformly placed centers."""
    _check_nd(n, d)
    if clusters < 1:
        raise ValidationError("need at least one cluster")
    if spread < 0:
        raise ValidationError("spread must be non-negative")
    rng = _rng(seed)
    centers = rng.random((clusters, d))
    assignment = rng.integers(0, clusters, size=n)
    points = centers[assignment] + rng.normal(0.0, spread, size=(n, d))
    return Dataset(np.clip(points, 0.0, 1.0), name=f"clustered-{n}x{d}")


def on_sphere(n: int, d: int, seed: int | np.random.Generator | None = 0) -> Dataset:
    """Points on the positive orthant of the unit sphere.

    Every point is on the convex hull, so the order-1 representative is the
    whole dataset — the worst case motivating rank-regret (§1 of the paper).
    """
    _check_nd(n, d)
    rng = _rng(seed)
    raw = np.abs(rng.normal(size=(n, d)))
    norms = np.linalg.norm(raw, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return Dataset(raw / norms, name=f"sphere-{n}x{d}")
