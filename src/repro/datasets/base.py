"""Core dataset container used by every algorithm in the library.

The paper (§2) models a database ``D`` of ``n`` tuples over ``d`` numeric
attributes, where for each attribute either higher or lower values are
preferred.  Attributes are min-max normalized so that 1 is always best
(§6.1).  :class:`Dataset` captures exactly that: an immutable, numpy-backed
matrix plus attribute metadata and normalization.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DatasetError, InvalidDataError, ValidationError

__all__ = ["Dataset"]


def _as_matrix(values: object) -> np.ndarray:
    """Coerce ``values`` to a 2-D float64 matrix, validating shape."""
    try:
        matrix = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise InvalidDataError(
            f"dataset values are not numeric (cannot convert to float64): {exc}"
        ) from None
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    if matrix.ndim != 2:
        raise ValidationError(
            f"dataset values must be 2-dimensional, got shape {matrix.shape}"
        )
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        raise ValidationError("dataset must contain at least one tuple and one attribute")
    if not np.all(np.isfinite(matrix)):
        raise InvalidDataError(
            "dataset values contain NaN or Inf entries; drop or impute "
            "those tuples before loading (NaN scores rank as garbage)"
        )
    return matrix


class Dataset:
    """An immutable collection of ``n`` tuples over ``d`` numeric attributes.

    Parameters
    ----------
    values:
        Array-like of shape ``(n, d)``. Stored as float64 and made read-only.
    attributes:
        Optional attribute names; defaults to ``a1 .. ad``.
    higher_is_better:
        Per-attribute preference direction. ``True`` means larger raw values
        are preferred. Defaults to all-``True``.
    name:
        Optional human-readable dataset name (used in reports).

    Notes
    -----
    Algorithms in this library operate on :attr:`values` directly and assume
    "higher is better" on every column. Call :meth:`normalized` first when the
    raw data mixes directions, mirroring the paper's preprocessing (§6.1).
    """

    __slots__ = ("values", "attributes", "higher_is_better", "name")

    def __init__(
        self,
        values: object,
        attributes: Sequence[str] | None = None,
        higher_is_better: Sequence[bool] | None = None,
        name: str = "dataset",
    ) -> None:
        matrix = _as_matrix(values)
        matrix.setflags(write=False)
        d = matrix.shape[1]
        if attributes is None:
            attributes = tuple(f"a{i + 1}" for i in range(d))
        else:
            attributes = tuple(str(a) for a in attributes)
            if len(attributes) != d:
                raise ValidationError(
                    f"{len(attributes)} attribute names given for {d} columns"
                )
            if len(set(attributes)) != d:
                raise ValidationError("attribute names must be unique")
        if higher_is_better is None:
            higher_is_better = tuple(True for _ in range(d))
        else:
            higher_is_better = tuple(bool(b) for b in higher_is_better)
            if len(higher_is_better) != d:
                raise ValidationError(
                    f"{len(higher_is_better)} directions given for {d} columns"
                )
        self.values = matrix
        self.attributes = attributes
        self.higher_is_better = higher_is_better
        self.name = str(name)

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tuples."""
        return int(self.values.shape[0])

    @property
    def d(self) -> int:
        """Number of attributes."""
        return int(self.values.shape[1])

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> np.ndarray:
        """Return tuple ``index`` as a read-only 1-D array."""
        return self.values[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset(name={self.name!r}, n={self.n}, d={self.d})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        return (
            self.attributes == other.attributes
            and self.higher_is_better == other.higher_is_better
            and self.values.shape == other.values.shape
            and bool(np.array_equal(self.values, other.values))
        )

    def __hash__(self) -> int:
        return hash((self.attributes, self.higher_is_better, self.values.tobytes()))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def column(self, attribute: str) -> np.ndarray:
        """Return the raw column for ``attribute``."""
        try:
            index = self.attributes.index(attribute)
        except ValueError:
            raise DatasetError(
                f"unknown attribute {attribute!r}; have {self.attributes}"
            ) from None
        return self.values[:, index]

    def select_attributes(self, names: Iterable[str]) -> "Dataset":
        """Project onto a subset of attributes, preserving directions."""
        names = list(names)
        indices = []
        for name in names:
            if name not in self.attributes:
                raise DatasetError(
                    f"unknown attribute {name!r}; have {self.attributes}"
                )
            indices.append(self.attributes.index(name))
        return Dataset(
            self.values[:, indices],
            attributes=names,
            higher_is_better=[self.higher_is_better[i] for i in indices],
            name=self.name,
        )

    def take(self, indices: Sequence[int]) -> "Dataset":
        """Return a new dataset containing only the rows in ``indices``."""
        idx = np.asarray(indices, dtype=np.intp)
        if idx.ndim != 1:
            raise ValidationError("row indices must be one-dimensional")
        return Dataset(
            self.values[idx],
            attributes=self.attributes,
            higher_is_better=self.higher_is_better,
            name=self.name,
        )

    def head(self, count: int) -> "Dataset":
        """Return the first ``count`` rows."""
        if count < 1:
            raise ValidationError("head() needs count >= 1")
        return self.take(range(min(count, self.n)))

    def normalized(self) -> "Dataset":
        """Min-max normalize every attribute so that 1 is always preferred.

        Mirrors §6.1 of the paper: a higher-preferred value ``v`` maps to
        ``(v - min) / (max - min)`` and a lower-preferred value to
        ``(max - v) / (max - min)``. Constant columns map to 0.5 (any
        constant works: the column then never affects relative order).
        """
        matrix = np.array(self.values, dtype=np.float64, copy=True)
        lo = matrix.min(axis=0)
        hi = matrix.max(axis=0)
        span = hi - lo
        constant = span <= 0
        span = np.where(constant, 1.0, span)
        scaled = (matrix - lo) / span
        for j, higher in enumerate(self.higher_is_better):
            if not higher:
                scaled[:, j] = 1.0 - scaled[:, j]
        scaled[:, constant] = 0.5
        return Dataset(
            scaled,
            attributes=self.attributes,
            higher_is_better=[True] * self.d,
            name=self.name,
        )

    @property
    def is_normalized(self) -> bool:
        """True when every value lies in [0, 1] and all directions are up."""
        return (
            all(self.higher_is_better)
            and bool(np.all(self.values >= 0.0))
            and bool(np.all(self.values <= 1.0))
        )
