"""CSV persistence for datasets.

A tiny, dependency-free round-trip format: a header row with attribute
names, an optional direction row (``#direction: high,low,...``), then one
row per tuple.  Lets users bring the *real* DOT or Blue Nile extracts when
they have them, in place of the synthetic stand-ins.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import DatasetError

__all__ = ["save_csv", "load_csv"]

_DIRECTION_PREFIX = "#direction:"


def save_csv(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` with header and direction metadata."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(dataset.attributes)
        directions = ",".join(
            "high" if h else "low" for h in dataset.higher_is_better
        )
        handle.write(f"{_DIRECTION_PREFIX}{directions}\n")
        for row in dataset.values:
            writer.writerow([repr(float(v)) for v in row])


def load_csv(path: str | Path, name: str | None = None) -> Dataset:
    """Read a dataset written by :func:`save_csv` (or any headed CSV).

    Rows starting with ``#`` other than the direction row are ignored.
    Without a direction row, every attribute defaults to higher-is-better.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    attributes: list[str] | None = None
    directions: list[bool] | None = None
    rows: list[list[float]] = []
    with path.open(newline="") as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith(_DIRECTION_PREFIX):
                tokens = line[len(_DIRECTION_PREFIX):].split(",")
                directions = [token.strip().lower() == "high" for token in tokens]
                continue
            if line.startswith("#"):
                continue
            fields = next(csv.reader([line]))
            if attributes is None:
                attributes = [f.strip() for f in fields]
                continue
            try:
                rows.append([float(f) for f in fields])
            except ValueError as exc:
                raise DatasetError(f"non-numeric row in {path}: {line!r}") from exc
    if attributes is None or not rows:
        raise DatasetError(f"{path} contains no data rows")
    matrix = np.asarray(rows, dtype=np.float64)
    if matrix.shape[1] != len(attributes):
        raise DatasetError(
            f"{path}: rows have {matrix.shape[1]} fields, header has {len(attributes)}"
        )
    if directions is not None and len(directions) != len(attributes):
        raise DatasetError(f"{path}: direction row length mismatch")
    return Dataset(
        matrix,
        attributes=attributes,
        higher_is_better=directions,
        name=name or path.stem,
    )
