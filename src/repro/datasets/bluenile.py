"""Synthetic stand-in for the Blue Nile diamond catalog.

The paper's second real dataset is the Blue Nile online diamond catalog:
116,300 diamonds over five scalar attributes — ``Carat``, ``Depth``,
``LengthWidthRatio``, ``Table``, and ``Price`` — where higher is preferred
for everything except price (§6.1).  The catalog is a commercial website
snapshot we cannot fetch offline, so we synthesize a dataset matching its
published structure:

* carat is heavy-tailed (most stones small, a few above 5 carats; the
  paper's range is 0.23–20.97);
* depth and table percentages concentrate tightly around the ideal-cut
  values (~61.5% and ~57%);
* length/width ratio concentrates near 1.0 (round cuts) with a tail of
  fancy shapes up to ~2.75;
* price grows super-linearly with carat (the paper highlights that a 0.53
  carat stone costs ~30% more than an otherwise identical 0.50 carat one)
  with quality-driven dispersion.

RRR behaviour depends on how strongly attributes trade off against each
other near the top of the ranking, which this generator reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import ValidationError

__all__ = ["BN_ATTRIBUTES", "BN_HIGHER_IS_BETTER", "synthetic_bluenile"]

BN_ATTRIBUTES: tuple[str, ...] = (
    "carat",
    "depth",
    "length_width_ratio",
    "table",
    "price",
)

BN_HIGHER_IS_BETTER: tuple[bool, ...] = (True, True, True, True, False)


def synthetic_bluenile(
    n: int = 10_000,
    d: int | None = None,
    seed: int | np.random.Generator | None = 0,
    normalize: bool = True,
) -> Dataset:
    """Generate a synthetic Blue Nile-like diamond catalog.

    Parameters
    ----------
    n:
        Number of diamonds (the paper's snapshot has 116,300).
    d:
        If given, keep only the first ``d`` of the five attributes
        (the paper varies ``d`` from 2 to 5 on this dataset).
    seed:
        RNG seed or generator for reproducibility.
    normalize:
        When True (default) return the min-max normalized dataset.
    """
    if n < 1:
        raise ValidationError(f"need n >= 1, got {n}")
    if d is not None and not 1 <= d <= len(BN_ATTRIBUTES):
        raise ValidationError(f"d must be in [1, {len(BN_ATTRIBUTES)}], got {d}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    # Carat: log-normal, clipped to the paper's observed range.
    carat = np.clip(rng.lognormal(np.log(0.8), 0.55, size=n), 0.23, 20.97)

    # Cut-quality latent variable drives depth/table closeness to ideal.
    quality = rng.beta(4.0, 2.0, size=n)  # skewed toward well-cut stones

    depth = 61.5 + rng.normal(0.0, 1.8, size=n) * (1.2 - quality)
    depth = np.clip(depth, 50.0, 75.0)

    table = 57.0 + rng.normal(0.0, 2.2, size=n) * (1.2 - quality)
    table = np.clip(table, 49.0, 75.0)

    # Length/width ratio: mostly round (1.0), tail of fancy elongated cuts.
    fancy = rng.random(n) < 0.12
    lw_ratio = np.where(
        fancy,
        1.3 + rng.gamma(2.0, 0.25, size=n),
        1.0 + np.abs(rng.normal(0.0, 0.02, size=n)),
    )
    lw_ratio = np.clip(lw_ratio, 0.95, 2.75)

    # Price: strongly super-linear in carat (~cubic per-stone pricing),
    # modulated by cut quality, with log-normal market noise.
    base_price = 2800.0 * np.power(carat, 2.6) * (0.75 + 0.5 * quality)
    price = base_price * rng.lognormal(0.0, 0.18, size=n)
    price = np.clip(price, 250.0, None)

    # The catalog quotes carat to 0.01, depth/table percentages to 0.1,
    # length/width ratio to 0.01, and prices in whole dollars.  The
    # resulting ties produce the dense score bands that separate
    # rank-regret from score-regret (§1's wine/diamond motivation).
    columns = np.column_stack(
        [
            np.round(carat, 2),
            np.round(depth, 1),
            np.round(lw_ratio, 2),
            np.round(table, 1),
            np.round(price),
        ]
    )
    dataset = Dataset(
        columns,
        attributes=BN_ATTRIBUTES,
        higher_is_better=BN_HIGHER_IS_BETTER,
        name="synthetic-bluenile",
    )
    if d is not None:
        dataset = dataset.select_attributes(BN_ATTRIBUTES[:d])
    return dataset.normalized() if normalize else dataset
