"""Synthetic stand-in for the US DOT flight on-time performance dataset.

The paper evaluates on the Department of Transportation flight-delay
database: 457,892 rows over eight scalar attributes (§6.1).  That data
requires network access to ``transtats.bts.gov``, which this environment
does not have, so we generate a synthetic dataset that reproduces the
*structure* the RRR algorithms are sensitive to:

* the schema and preference directions (``Air-Time`` and ``Distance``
  higher-preferred, everything else lower-preferred);
* realistic marginal skew (delays are heavy-tailed and mostly small,
  taxi times are log-normal-ish, distances are multi-modal);
* the cross-attribute correlation web (air time is essentially distance over
  cruise speed, arrival delay tracks departure delay, elapsed time is
  air time plus taxi overheads, scheduled elapsed tracks actual elapsed).

What matters for RRR difficulty is exactly this correlation/skew structure —
it controls how many tuples compete near the top of each linear ranking —
so the substitution preserves the qualitative behaviour of every experiment
(see DESIGN.md §4).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import ValidationError

__all__ = ["DOT_ATTRIBUTES", "DOT_HIGHER_IS_BETTER", "synthetic_dot"]

DOT_ATTRIBUTES: tuple[str, ...] = (
    "dep_delay",
    "taxi_out",
    "actual_elapsed_time",
    "arrival_delay",
    "air_time",
    "distance",
    "taxi_in",
    "crs_elapsed_time",
)

# Paper §6.1: "For Air-time and Distance higher values are preferred while
# for the rest of attributes lower values are better."
DOT_HIGHER_IS_BETTER: tuple[bool, ...] = (
    False,  # dep_delay
    False,  # taxi_out
    False,  # actual_elapsed_time
    False,  # arrival_delay
    True,   # air_time
    True,   # distance
    False,  # taxi_in
    False,  # crs_elapsed_time
)


def synthetic_dot(
    n: int = 10_000,
    d: int | None = None,
    seed: int | np.random.Generator | None = 0,
    normalize: bool = True,
) -> Dataset:
    """Generate a synthetic DOT-like flight performance dataset.

    Parameters
    ----------
    n:
        Number of flights (the paper uses up to 457,892).
    d:
        If given, keep only the first ``d`` attributes (the paper's
        experiments vary ``d`` from 2 to 6 this way).
    seed:
        RNG seed or generator for reproducibility.
    normalize:
        When True (default) return the min-max normalized dataset with all
        attributes higher-is-better, which is what the algorithms consume.
    """
    if n < 1:
        raise ValidationError(f"need n >= 1, got {n}")
    if d is not None and not 1 <= d <= len(DOT_ATTRIBUTES):
        raise ValidationError(
            f"d must be in [1, {len(DOT_ATTRIBUTES)}], got {d}"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    # Distance: mixture of short-haul, medium and long-haul routes (miles).
    component = rng.choice(3, size=n, p=[0.55, 0.35, 0.10])
    distance = np.where(
        component == 0,
        rng.gamma(4.0, 90.0, size=n),          # short-haul ~ 360 mi
        np.where(
            component == 1,
            rng.gamma(6.0, 180.0, size=n),     # medium ~ 1080 mi
            2000.0 + rng.gamma(3.0, 300.0, size=n),  # long-haul
        ),
    )
    distance = np.clip(distance, 60.0, 5000.0)

    # Air time: distance over ~7.5 miles/min cruise plus climb overhead.
    air_time = distance / rng.normal(7.5, 0.4, size=n).clip(6.0, 9.0)
    air_time = air_time + rng.normal(18.0, 6.0, size=n)
    air_time = np.clip(air_time, 15.0, None)

    # Taxi times: right-skewed, airport-congestion driven.
    taxi_out = np.clip(rng.lognormal(np.log(15.0), 0.45, size=n), 4.0, 120.0)
    taxi_in = np.clip(rng.lognormal(np.log(7.0), 0.5, size=n), 2.0, 60.0)

    # Departure delay: mostly near zero, heavy right tail (minutes).
    delayed = rng.random(n) < 0.35
    dep_delay = np.where(
        delayed,
        rng.exponential(35.0, size=n),
        rng.normal(-4.0, 4.0, size=n),
    )
    dep_delay = np.clip(dep_delay, -25.0, 1200.0)

    # Arrival delay tracks departure delay with en-route makeup/slippage.
    arrival_delay = dep_delay + rng.normal(-3.0, 12.0, size=n)
    arrival_delay = np.clip(arrival_delay, -60.0, 1300.0)

    actual_elapsed = air_time + taxi_out + taxi_in
    # Scheduled elapsed: actual minus the en-route component of the delay,
    # with scheduling padding noise.
    crs_elapsed = actual_elapsed - (arrival_delay - dep_delay) + rng.normal(
        5.0, 8.0, size=n
    )
    crs_elapsed = np.clip(crs_elapsed, 25.0, None)

    # The real DOT data is discretized: delays and durations are whole
    # minutes, distances whole miles.  This creates the massive ties /
    # dense score bands near the top that make rank-regret diverge from
    # score-regret (the paper's central observation) — keep them.
    columns = np.column_stack(
        [
            np.round(dep_delay),
            np.round(taxi_out),
            np.round(actual_elapsed),
            np.round(arrival_delay),
            np.round(air_time),
            np.round(distance),
            np.round(taxi_in),
            np.round(crs_elapsed),
        ]
    )
    dataset = Dataset(
        columns,
        attributes=DOT_ATTRIBUTES,
        higher_is_better=DOT_HIGHER_IS_BETTER,
        name="synthetic-dot",
    )
    if d is not None:
        dataset = dataset.select_attributes(DOT_ATTRIBUTES[:d])
    return dataset.normalized() if normalize else dataset
