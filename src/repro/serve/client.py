"""Blocking HTTP client for a :mod:`repro.serve` server.

Stdlib-only (:mod:`http.client`), one keep-alive connection per
instance — the shape every consumer in this repo needs (the example
client, the CI smoke, the ``serving_load`` bench op and the serving
test-suite).  Responses come back as numpy arrays so bit-identity
against direct engine calls can be asserted with ``array_equal``.

Overload is a first-class outcome, not an exception bucket: a 429/503
raises :class:`ServiceOverloadedError` (with the server's
``retry_after_ms`` hint when present) so callers can implement backoff;
every other non-2xx raises :class:`ServiceError` with the server's
status and error message.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

import numpy as np

__all__ = ["ServiceClient", "ServiceError", "ServiceOverloadedError"]


class ServiceError(Exception):
    """Non-2xx response from the server."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceOverloadedError(ServiceError):
    """429 (queue full) or 503 (draining) — retry later, elsewhere."""

    @property
    def retry_after_ms(self) -> int:
        return int(self.payload.get("retry_after_ms", 50))


class ServiceClient:
    """One keep-alive connection to a serving front-end.

    ::

        client = ServiceClient("http://127.0.0.1:8472")
        batch = client.topk(weights, k=10)       # {"members", "order", "revision"}
    """

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        if "://" in url:
            url = url.split("://", 1)[1]
        host, _, port = url.strip("/").partition(":")
        self._conn = HTTPConnection(host, int(port or 80), timeout=timeout)

    # -- transport ------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = response.read()
        except (ConnectionError, BrokenPipeError):
            # The server closed the keep-alive connection (e.g. after an
            # error response); reconnect once.
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            data = response.read()
        decoded = json.loads(data) if data else {}
        if response.status in (429, 503):
            raise ServiceOverloadedError(response.status, decoded)
        if not 200 <= response.status < 300:
            raise ServiceError(response.status, decoded)
        return decoded

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- endpoints ------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def topk(self, weights, k: int) -> dict:
        """Batched top-k; ``members``/``order`` come back as int arrays."""
        out = self._request(
            "POST", "/v1/topk", {"weights": np.asarray(weights).tolist(), "k": int(k)}
        )
        out["members"] = np.asarray(out["members"], dtype=np.int64)
        out["order"] = np.asarray(out["order"], dtype=np.int64)
        return out

    def rank(self, weights, subset) -> dict:
        out = self._request(
            "POST",
            "/v1/rank",
            {
                "weights": np.asarray(weights).tolist(),
                "subset": [int(i) for i in subset],
            },
        )
        out["ranks"] = np.asarray(out["ranks"], dtype=np.int64)
        return out

    def representative(self, k: int, method: str | None = None) -> dict:
        payload: dict = {"k": int(k)}
        if method is not None:
            payload["method"] = method
        return self._request("POST", "/v1/representative", payload)

    def insert(self, rows) -> dict:
        out = self._request("POST", "/v1/insert", {"rows": np.asarray(rows).tolist()})
        out["indices"] = np.asarray(out["indices"], dtype=np.int64)
        return out

    def delete(self, indices) -> dict:
        return self._request(
            "POST", "/v1/delete", {"indices": [int(i) for i in indices]}
        )
