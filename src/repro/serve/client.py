"""Blocking HTTP client for a :mod:`repro.serve` server.

Stdlib-only (:mod:`http.client`), one keep-alive connection per
instance — the shape every consumer in this repo needs (the example
client, the CI smoke, the ``serving_load`` bench op and the serving
test-suite).  Responses come back as numpy arrays so bit-identity
against direct engine calls can be asserted with ``array_equal``.

Retry policy (all stdlib, no caller-side loops needed):

* **Overload** (429 queue-full / 503 draining) backs off with capped
  exponential delay plus jitter, honoring the server's
  ``retry_after_ms`` hint as the floor; after ``max_retries`` attempts
  it gives up with a typed :class:`ServiceRetryExhaustedError`.
  ``max_retries=0`` restores the raw behavior — the first 429/503
  raises :class:`ServiceOverloadedError` immediately — for callers that
  drive their own backoff (the overload tests do).
* **Ambiguous transport failures** (connection reset mid-request, a
  died-and-restarted server) retry only requests that are safe to
  repeat: reads always, mutations only when they carry an idempotency
  key.  :meth:`insert` / :meth:`delete` generate a key automatically
  (``uuid4``) unless given one, so by default every mutation is
  exactly-once end to end — the durable server replays the stored
  response instead of re-applying, even across a crash and restart.
"""

from __future__ import annotations

import json
import random
import time
import uuid
from http.client import HTTPConnection

import numpy as np

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceRetryExhaustedError",
]


class ServiceError(Exception):
    """Non-2xx response from the server."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceOverloadedError(ServiceError):
    """429 (queue full) or 503 (draining) — retry later, elsewhere."""

    @property
    def retry_after_ms(self) -> int:
        return int(self.payload.get("retry_after_ms", 50))


class ServiceRetryExhaustedError(ServiceError):
    """The retry budget ran out; ``last`` holds the final failure."""

    def __init__(self, attempts: int, last: Exception) -> None:
        status = getattr(last, "status", 0)
        payload = getattr(last, "payload", {"error": str(last)})
        Exception.__init__(
            self, f"gave up after {attempts} attempts: {last}"
        )
        self.status = status
        self.payload = payload
        self.attempts = attempts
        self.last = last


class ServiceClient:
    """One keep-alive connection to a serving front-end.

    ::

        client = ServiceClient("http://127.0.0.1:8472")
        batch = client.topk(weights, k=10)       # {"members", "order", "revision"}
    """

    def __init__(
        self,
        url: str,
        timeout: float = 60.0,
        *,
        max_retries: int = 4,
        backoff_base_ms: float = 25.0,
        backoff_cap_ms: float = 1000.0,
    ) -> None:
        if "://" in url:
            url = url.split("://", 1)[1]
        host, _, port = url.strip("/").partition(":")
        self._conn = HTTPConnection(host, int(port or 80), timeout=timeout)
        self._max_retries = int(max_retries)
        self._backoff_base_ms = float(backoff_base_ms)
        self._backoff_cap_ms = float(backoff_cap_ms)
        self._rng = random.Random()
        self._sleep = time.sleep  # overridable in tests

    # -- transport ------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: dict | None = None, *,
        idempotent: bool = True,
    ) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        overload_attempts = 0
        conn_failures = 0
        while True:
            try:
                return self._request_once(method, path, body, headers)
            except ServiceOverloadedError as exc:
                overload_attempts += 1
                if overload_attempts > self._max_retries:
                    if self._max_retries == 0:
                        raise  # raw semantics for caller-driven backoff
                    raise ServiceRetryExhaustedError(overload_attempts, exc) from exc
                self._sleep(self._backoff_ms(overload_attempts, exc) / 1000.0)
            except (ConnectionError, BrokenPipeError, TimeoutError) as exc:
                # The server closed the keep-alive connection — routine
                # after an error response, ambiguous mid-request.
                self._conn.close()
                conn_failures += 1
                if conn_failures == 1 and idempotent:
                    continue  # immediate reconnect, as before
                if not idempotent or conn_failures > self._max_retries:
                    # Repeating a non-idempotent request could apply the
                    # mutation twice; surface the ambiguity instead.
                    raise
                self._sleep(self._backoff_ms(conn_failures, None) / 1000.0)

    def _request_once(self, method: str, path: str, body, headers) -> dict:
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        data = response.read()
        decoded = json.loads(data) if data else {}
        if response.status in (429, 503):
            raise ServiceOverloadedError(response.status, decoded)
        if not 200 <= response.status < 300:
            raise ServiceError(response.status, decoded)
        return decoded

    def _backoff_ms(self, attempt: int, exc: ServiceOverloadedError | None) -> float:
        """Capped exponential with jitter, floored at the server's hint."""
        delay = min(self._backoff_cap_ms, self._backoff_base_ms * 2 ** (attempt - 1))
        delay *= self._rng.uniform(0.5, 1.5)
        if exc is not None:
            delay = max(delay, float(exc.retry_after_ms))
        return delay

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- endpoints ------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def topk(self, weights, k: int) -> dict:
        """Batched top-k; ``members``/``order`` come back as int arrays."""
        out = self._request(
            "POST", "/v1/topk", {"weights": np.asarray(weights).tolist(), "k": int(k)}
        )
        out["members"] = np.asarray(out["members"], dtype=np.int64)
        out["order"] = np.asarray(out["order"], dtype=np.int64)
        return out

    def rank(self, weights, subset) -> dict:
        out = self._request(
            "POST",
            "/v1/rank",
            {
                "weights": np.asarray(weights).tolist(),
                "subset": [int(i) for i in subset],
            },
        )
        out["ranks"] = np.asarray(out["ranks"], dtype=np.int64)
        return out

    def representative(self, k: int, method: str | None = None) -> dict:
        payload: dict = {"k": int(k)}
        if method is not None:
            payload["method"] = method
        return self._request("POST", "/v1/representative", payload)

    def insert(self, rows, *, idempotency_key: str | None = None) -> dict:
        """Insert rows, exactly once: a key is generated when not given,
        so a retried/reconnected request can never double-apply against
        a durable server."""
        key = idempotency_key or uuid.uuid4().hex
        out = self._request(
            "POST",
            "/v1/insert",
            {"rows": np.asarray(rows).tolist(), "idempotency_key": key},
        )
        out["indices"] = np.asarray(out["indices"], dtype=np.int64)
        return out

    def delete(self, indices, *, idempotency_key: str | None = None) -> dict:
        key = idempotency_key or uuid.uuid4().hex
        return self._request(
            "POST",
            "/v1/delete",
            {"indices": [int(i) for i in indices], "idempotency_key": key},
        )
