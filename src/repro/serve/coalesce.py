"""Request coalescing for the serving front-end.

The engine is batch-native: ``topk_batch`` over 64 stacked weight
vectors costs barely more than over one (the GEMM, pruning-prefix and
quantized-screen machinery amortize across columns).  The serving hot
path exploits that: concurrent requests land in one bounded queue, and
a single dispatcher drains whatever has accumulated, stacks *adjacent
compatible* queries into one engine call, and de-interleaves the result
rows back to their requesters.

Correctness rests on two facts:

* **Per-function independence.**  The engine's result for weight row
  ``i`` depends only on ``w_i`` and the matrix — never on the other
  rows in the batch (the tier ladder resolves each column
  independently).  So the rows a coalesced call hands back are
  bit-identical to what a direct single-request call at the same
  revision would return.  The serving test-suite and the
  ``serving_load`` bench op assert exactly that.
* **Serialized order.**  Groups execute strictly in arrival order on
  the engine's single dispatch thread (:meth:`ScoreEngine.submit`), and
  mutations are barriers — never coalesced with queries, never
  reordered around them.  A query enqueued before an insert observes
  the pre-insert revision; one enqueued after observes the post-insert
  revision; no third outcome exists.

Admission control is the queue bound: :meth:`Coalescer.offer` raises
:class:`asyncio.QueueFull` when ``max_pending`` requests are already
waiting, which the HTTP layer maps to a typed 429.

The barrier ordering is also the durability ordering: a mutation
barrier's ``run`` executes apply → compact → WAL append+fsync → build
response as one unit on the engine thread, so the write-ahead commit is
serialized exactly where the mutation is — no query can observe a
revision whose WAL record might still be in flight, and a drain barrier
(:meth:`Coalescer.drain`) that resolves after a mutation proves that
mutation durable.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = ["Coalescer", "WorkItem"]


@dataclass
class WorkItem:
    """One queued request: a kind, its parsed payload, and its future."""

    kind: str  # "topk" | "rank" | "barrier"
    payload: dict
    future: asyncio.Future
    # Coalescing key: items in one adjacent run coalesce iff their keys
    # match ("topk" → k, "rank" → subset bytes).  Barriers never match.
    key: Any = None
    weights: np.ndarray | None = None
    run: Callable[[], Any] | None = None  # barrier body (engine thread)

    comparable = property(lambda self: self.kind in ("topk", "rank"))


@dataclass
class CoalesceStats:
    requests: int = 0
    batches: int = 0
    coalesced: int = 0  # requests that shared an engine call with others
    rejected: int = 0
    by_kind: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "by_kind": dict(self.by_kind),
        }


class Coalescer:
    """Bounded request queue + the dispatcher that drains it."""

    def __init__(self, engine, *, max_pending: int = 256, max_batch: int = 1024) -> None:
        self._engine = engine
        self._queue: asyncio.Queue[WorkItem] = asyncio.Queue(maxsize=max_pending)
        self._max_batch = max(1, int(max_batch))
        self._task: asyncio.Task | None = None
        self._paused = asyncio.Event()
        self._paused.set()  # set = running; cleared = paused (tests)
        self.stats = CoalesceStats()

    # -- admission ------------------------------------------------------
    def offer(self, item: WorkItem) -> asyncio.Future:
        """Enqueue; raises :class:`asyncio.QueueFull` when over capacity."""
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.stats.rejected += 1
            raise
        self.stats.requests += 1
        self.stats.by_kind[item.kind] = self.stats.by_kind.get(item.kind, 0) + 1
        return item.future

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while not self._queue.empty():  # fail whatever never ran
            item = self._queue.get_nowait()
            if not item.future.done():
                item.future.set_exception(ConnectionResetError("server stopped"))

    @property
    def running(self) -> bool:
        return self._task is not None

    def pause(self) -> None:
        """Hold the dispatcher between batches (overload testing)."""
        self._paused.clear()

    def resume(self) -> None:
        self._paused.set()

    async def drain(self) -> None:
        """Wait until everything enqueued before this call has executed.

        Enqueues a no-op barrier and awaits it: the dispatcher executes
        groups strictly in arrival order, so when the sentinel's future
        resolves every earlier item — including any mutation barrier and
        its write-ahead commit — has fully settled on the engine thread.
        Used by graceful shutdown (after admissions stop) so the final
        snapshot captures every acknowledged mutation.  Resumes a paused
        dispatcher: drain and pause are mutually exclusive states.
        """
        if self._task is None:
            return
        self.resume()
        sentinel = WorkItem(
            kind="barrier",
            payload={},
            future=asyncio.get_running_loop().create_future(),
            run=lambda: None,
        )
        # Blocking put, not offer(): the drain sentinel must get in even
        # when the queue is at the admission bound.
        await self._queue.put(sentinel)
        await sentinel.future

    # -- dispatch -------------------------------------------------------
    async def _run(self) -> None:
        while True:
            await self._paused.wait()
            first = await self._queue.get()
            # Re-check: a pause issued while parked in get() must hold
            # the already-dequeued item too, not slip one batch through.
            await self._paused.wait()
            batch = [first]
            # Snapshot everything already waiting, in arrival order.
            while len(batch) < self._max_batch and not self._queue.empty():
                batch.append(self._queue.get_nowait())
            for group in _adjacent_groups(batch):
                await self._execute(group)

    async def _execute(self, group: list[WorkItem]) -> None:
        self.stats.batches += 1
        if len(group) > 1:
            self.stats.coalesced += len(group)
        item = group[0]
        try:
            if item.kind == "barrier":
                result = await self._submit(item.run)
                _resolve(item, result)
                return
            weights = np.concatenate([it.weights for it in group], axis=0)
            if item.kind == "topk":
                k = item.key
                batch, revision = await self._submit(
                    lambda: (self._engine.topk_batch(weights, k), self._engine.revision)
                )
                offset = 0
                for it in group:
                    m = it.weights.shape[0]
                    sl = slice(offset, offset + m)
                    _resolve(it, (batch.members[sl], batch.order[sl], revision))
                    offset += m
            else:  # "rank"
                subset = group[0].payload["subset"]
                ranks, revision = await self._submit(
                    lambda: (
                        self._engine.rank_of_best_batch(weights, subset),
                        self._engine.revision,
                    )
                )
                offset = 0
                for it in group:
                    m = it.weights.shape[0]
                    _resolve(it, (ranks[offset : offset + m], revision))
                    offset += m
        except Exception as exc:
            for it in group:
                if not it.future.done():
                    it.future.set_exception(exc)

    async def _submit(self, fn):
        return await asyncio.wrap_future(self._engine.submit(fn))


def _adjacent_groups(batch: list[WorkItem]) -> list[list[WorkItem]]:
    """Split the drained snapshot into adjacent coalescable runs.

    Only *adjacent* items with the same (kind, key) coalesce — grouping
    across a barrier (mutation, representative refresh) would reorder a
    query relative to a mutation the client observed as enqueued first.
    """
    groups: list[list[WorkItem]] = []
    for item in batch:
        if (
            groups
            and item.comparable
            and groups[-1][-1].comparable
            and groups[-1][-1].kind == item.kind
            and groups[-1][-1].key == item.key
        ):
            groups[-1].append(item)
        else:
            groups.append([item])
    return groups


def _resolve(item: WorkItem, result) -> None:
    if not item.future.done():
        item.future.set_result(result)
