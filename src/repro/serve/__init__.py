"""``repro.serve`` — the asyncio serving front-end.

One long-lived, calibrated :class:`repro.Session` (engine + maintained
representative views) behind an HTTP interface with request coalescing:
concurrent top-k / rank queries are stacked into single
``topk_batch`` / ``rank_of_best_batch`` engine calls and de-interleaved
per requester, bit-identical to direct engine calls (the exactness
contract extends to the serving path).  Mutations feed the delta
journal and act as ordering barriers; admission control is a bounded
queue with typed 429/503 overload responses.

Pieces:

* :class:`Server` / :class:`ServerConfig` — the asyncio server
  (:mod:`repro.serve.app`); ``repro serve`` on the command line.
* :class:`ServerThread` — the same server on a background event loop,
  for tests, benches and in-process demos.
* :class:`ServiceClient` — blocking stdlib client used by the example,
  the CI smoke and the ``serving_load`` perf-gate op; retries overload
  with capped jittered backoff and ambiguous transport failures with
  idempotency keys (exactly-once against a durable server).
* :mod:`repro.serve.coalesce` — the queue + dispatcher; see its
  docstring for the determinism argument.
* :mod:`repro.serve.http` — the minimal HTTP/1.1 layer (stdlib only).

With ``ServerConfig(data_dir=...)`` (CLI: ``repro serve --data-dir``)
the server is durable: every acknowledged mutation is in a fsync'd
write-ahead log before its response is sent, snapshots are cut on a
size/age policy and on graceful drain, and a restart — even after
SIGKILL — recovers a bit-identical serving state
(:mod:`repro.engine.wal`).
"""

from repro.serve.app import Server, ServerConfig, ServerThread, serve
from repro.serve.client import (
    ServiceClient,
    ServiceError,
    ServiceOverloadedError,
    ServiceRetryExhaustedError,
)

__all__ = [
    "Server",
    "ServerConfig",
    "ServerThread",
    "serve",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceRetryExhaustedError",
]
