"""Minimal asyncio HTTP/1.1 layer for :mod:`repro.serve`.

Just enough protocol to host the serving endpoints on stdlib asyncio
streams — request-line + header parsing, ``Content-Length`` bodies,
keep-alive — with hard limits on header and body size so a misbehaving
client cannot balloon server memory.  Not a general web server: no
chunked transfer, no TLS, no multipart.  JSON in, JSON out.

Floats survive the JSON round trip bit-exactly: both :mod:`json` and
every mainstream client serializer emit the shortest decimal that
parses back to the same IEEE-754 double, which is what makes the
serving path's bit-identity contract testable end to end.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

MAX_HEADER_BYTES = 16 * 1024
HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed or over-limit request; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except ValueError as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return payload


async def read_request(reader, max_body_bytes: int) -> Request | None:
    """Parse one request from the stream; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if exc.partial == b"":
            return None  # clean close between requests
        raise ProtocolError(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(400, "request head exceeds the header limit") from None
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(400, "request head exceeds the header limit")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ProtocolError(400, f"malformed request line: {lines[0]!r}") from None
    parts = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length", "0")
    try:
        body_len = int(length)
    except ValueError:
        raise ProtocolError(400, f"bad Content-Length: {length!r}") from None
    if body_len < 0 or body_len > max_body_bytes:
        raise ProtocolError(413, f"request body of {body_len} bytes exceeds the limit")
    body = await reader.readexactly(body_len) if body_len else b""
    return Request(
        method=method.upper(),
        path=parts.path,
        query=dict(parse_qsl(parts.query)),
        headers=headers,
        body=body,
    )


def render_response(status: int, payload: dict, *, keep_alive: bool = True) -> bytes:
    """Serialize a JSON response (headers + body) to raw bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode()
    reason = HTTP_REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body
