"""The ``repro.serve`` server: a Session over asyncio HTTP.

One :class:`repro.Session` (long-lived calibrated engine + maintained
views) behind a coalescing request queue.  Endpoints:

============================  ======================================================
``GET  /health``              liveness + dataset shape + revision
``GET  /v1/stats``            engine counters, coalescing counters, queue depth
``POST /v1/topk``             ``{"weights": [[...]], "k": int}`` → members/order rows
``POST /v1/rank``             ``{"weights": [[...]], "subset": [...]}`` → ranks
``POST /v1/representative``   ``{"k": int, "method": "mdrc"|"mdrrr"}`` → indices
``POST /v1/insert``           ``{"rows": [[...]]}`` → new indices (journaled)
``POST /v1/delete``           ``{"indices": [...]}`` → deleted count (journaled)
============================  ======================================================

Queries coalesce (see :mod:`repro.serve.coalesce`); mutations and
representative refreshes are barriers.  Mutations feed the engine's
delta journal, and every maintained representative view hears about
them through its delta subscription — the next ``/v1/representative``
pays only the incremental repair.  Admission control is typed: **429**
(queue full, ``Retry-After`` hint) under overload, **503** while
draining for shutdown.  Failure handling inside the engine is the PR-6
resilience ladder, configured by the same ``policy`` knob as everywhere
else; a crashed worker degrades the backend, never the response.

On boot the server warm-loads a checksummed
:class:`~repro.engine.TuningProfile` if configured (recalibrating on a
failed integrity check, like the CLI), so the first request is served
by an already-tuned engine.

**Durability** (``ServerConfig.data_dir``, :mod:`repro.engine.wal`):
with a data directory configured, boot recovers the newest valid
snapshot, replays the write-ahead-log suffix through the ordinary
mutation path, and restores the revision counter — so after a crash
(even SIGKILL mid-mutation) the restarted server answers every query
bit-identically to one that never died.  Each mutation barrier appends
one fsync'd WAL record *before its response leaves the engine thread*
(the barrier ordering is the write-ahead discipline: durable first,
acknowledged second), bundling the delta events with the request's
idempotency key and response body.  A client that retries an ambiguous
failure with the same ``idempotency_key`` gets the stored response back
and the engine is untouched — exactly-once, across restarts.  Snapshots
are cut on a WAL size/age policy and on graceful drain (SIGTERM /
SIGINT in :func:`serve`: stop admissions with 503, drain the coalescer,
snapshot, exit 0).

**Sharding** (``ServerConfig(shards=N)``, ``repro serve --shards``):
the Session is backed by a :class:`~repro.engine.ShardedScoreEngine` —
rows partitioned across N supervised worker shards, queries merged
bit-identically to the unsharded engine, a dead/hung shard rebuilt from
its own snapshot + WAL suffix while the fleet serves.  The fleet owns
durability and exactly-once end to end (router intent/commit WAL +
per-shard stores + the two-level idempotency table), so the
server-level store stays off and mutation handlers route through
``fleet_insert`` / ``fleet_delete``.  ``/health`` grows a ``shards``
section (serving/recovering/dead counts) and ``/v1/stats`` a per-shard
durability section, so operators can watch a recovery in flight.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
import threading
from dataclasses import dataclass

import numpy as np

from repro.engine import DurableStore, TuningProfile, replay_commits
from repro.exceptions import CorruptStateError, ReproError, ValidationError
from repro.serve import http
from repro.serve.coalesce import Coalescer, WorkItem
from repro.session import Session

__all__ = ["ServerConfig", "Server", "serve", "ServerThread"]

# In-memory idempotency keys kept without a data_dir (with one, the
# snapshot carries the table and this is just the live-table cap).
_MAX_IDEMPOTENCY_KEYS = 65536


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 8472
    jobs: int | None = None
    backend: str = "auto"
    tuning_profile: str | None = None  # checksummed JSON path; None = "auto"
    policy: object = None  # RetryPolicy | None
    max_pending: int = 256  # admission bound: queued requests before 429
    max_batch: int = 1024  # coalescing cap per engine call
    max_body_bytes: int = 32 * 2**20
    representative_method: str = "mdrc"  # default for /v1/representative
    data_dir: str | None = None  # WAL + snapshots; None = memory-only
    snapshot_wal_bytes: int = 4 * 2**20  # snapshot once the WAL grows past this
    snapshot_interval_s: float | None = None  # and/or this old (None = size-only)
    shards: int | None = None  # row-sharded fleet (ShardedScoreEngine); None = one engine
    shard_isolation: str = "process"  # "process" (crash-isolated) | "local"


def _warm_tuning(config: ServerConfig, values: np.ndarray):
    """Boot-time profile: checksummed load, recalibrate on corruption."""
    if config.tuning_profile is None:
        return "auto"
    try:
        return TuningProfile.load(config.tuning_profile)
    except FileNotFoundError:
        pass
    except CorruptStateError as exc:
        print(
            f"warning: tuning profile {config.tuning_profile!r} failed its "
            f"integrity check ({exc}); recalibrating",
            file=sys.stderr,
        )
    from repro.engine import ScoreEngine

    with ScoreEngine(values, n_jobs=config.jobs) as probe:
        profile = probe.calibrate()
    profile.save(config.tuning_profile)
    return profile


class Server:
    """The serving front-end; owns the Session, views, coalescer and
    (when configured) the durable store."""

    def __init__(self, values: np.ndarray, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self._store: DurableStore | None = None
        self._idempotency: dict[str, dict] = {}
        self.recovery = {"snapshot_revision": 0, "replayed_commits": 0}
        # Boot acquires resources in dependency order (lock + WAL handle,
        # then the Session's pools) under one ExitStack: if any later
        # step raises — a corrupt profile forcing recalibration that
        # itself fails, an unrecoverable WAL, a dead snapshot set —
        # everything already acquired is unwound and no stray lock file,
        # WAL handle or half-built session survives the wreck.
        with contextlib.ExitStack() as stack:
            self._boot(np.asarray(values, dtype=np.float64), stack)
            stack.pop_all()  # boot succeeded: resources now owned by stop()
        self._coalescer = Coalescer(
            self.session.engine,
            max_pending=self.config.max_pending,
            max_batch=self.config.max_batch,
        )
        self._views: dict[tuple[str, int], object] = {}
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self.port: int | None = None  # resolved at start (0 = ephemeral)

    def _boot(self, values: np.ndarray, stack: contextlib.ExitStack) -> None:
        if self.config.shards is not None:
            self._boot_sharded(values, stack)
            return
        snapshot, commits = None, []
        if self.config.data_dir is not None:
            self._store = DurableStore(
                self.config.data_dir,
                snapshot_wal_bytes=self.config.snapshot_wal_bytes,
                snapshot_interval_s=self.config.snapshot_interval_s,
                max_idempotency_keys=_MAX_IDEMPOTENCY_KEYS,
            ).open()
            stack.callback(self._store.close)
            snapshot, commits = self._store.load()
        if snapshot is not None:
            boot_values = snapshot.values
            self._idempotency.update(snapshot.idempotency)
        else:
            boot_values = values
        self.session = Session(
            boot_values,
            jobs=self.config.jobs,
            backend=self.config.backend,
            tune=self._boot_tuning(snapshot, boot_values),
            policy=self.config.policy,
        )
        stack.callback(self.session.close)
        engine = self.session.engine
        if snapshot is not None:
            # Durable revision numbers continue across restarts: response
            # ``revision`` fields must match an uninterrupted run's.
            engine.revision = snapshot.revision
        if commits:
            replay_commits(engine, commits, idempotency=self._idempotency)
        self.recovery = {
            "snapshot_revision": snapshot.revision if snapshot else 0,
            "replayed_commits": len(commits),
        }
        if self._store is not None:
            # Attach only now: replayed events must not be re-logged.
            self._store.attach(engine)
            if snapshot is None and not commits:
                # First durable boot: persist the base state immediately,
                # so recovery never depends on the caller re-supplying
                # the exact boot matrix.
                self._snapshot_now()

    def _boot_sharded(self, values: np.ndarray, stack: contextlib.ExitStack) -> None:
        """Boot the row-sharded fleet behind the same serving surface.

        The sharded engine owns every durability concern itself: the
        router WAL journals fleet mutations as intent/commit frames, the
        per-shard stores journal their slices, and the fleet-level
        idempotency table is the exactly-once seam — so the server-level
        :class:`DurableStore` stays off and mutations route through
        :meth:`~repro.engine.ShardedScoreEngine.fleet_insert` /
        ``fleet_delete`` instead of :meth:`_commit_mutation`.
        """
        self.session = Session(
            values,
            jobs=self.config.jobs,
            backend=self.config.backend,
            policy=self.config.policy,
            shards=self.config.shards,
            shard_isolation=self.config.shard_isolation,
            data_dir=self.config.data_dir,
        )
        stack.callback(self.session.close)
        self.recovery = {
            "snapshot_revision": self.session.engine.revision,
            "replayed_commits": 0,
        }

    def _boot_tuning(self, snapshot, boot_values: np.ndarray):
        """Tuning for the recovered engine: snapshot-pinned, else warm."""
        if snapshot is not None and snapshot.profile is not None:
            try:
                return TuningProfile.from_json(json.dumps(snapshot.profile))
            except (CorruptStateError, ValueError, TypeError) as exc:
                print(
                    f"warning: snapshot tuning profile unusable ({exc}); "
                    "falling back to the configured profile",
                    file=sys.stderr,
                )
        return _warm_tuning(self.config, boot_values)

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        self._coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop admissions, drain, snapshot, release.

        Every mutation acknowledged before the drain barrier is settled
        in the final snapshot; the WAL is left empty.  If the drain
        cannot complete (a hung engine call), shutdown proceeds without
        the snapshot — the WAL still holds everything acknowledged, so
        nothing durable is lost, only the next boot's replay is longer.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._coalescer.running:
            # Drain in every mode so admitted requests finish instead of
            # dying with a reset; the server-level final snapshot only
            # exists unsharded (a sharded session snapshots its own
            # router/shard stores inside session.close() below).
            try:
                await asyncio.wait_for(self._coalescer.drain(), timeout=30.0)
                if self._store is not None:
                    await asyncio.wrap_future(
                        self.session.engine.submit(self._final_snapshot)
                    )
            except Exception as exc:  # noqa: BLE001 - shutdown must proceed
                print(
                    f"warning: drain snapshot skipped ({exc!r}); the WAL "
                    "covers all acknowledged mutations",
                    file=sys.stderr,
                )
        await self._coalescer.stop()
        for view in self._views.values():
            view.close()
        # Join the engine's dispatch thread before closing the WAL
        # handle: a commit still running there must not hit a closed fd.
        self.session.close()
        if self._store is not None:
            self._store.close()
            self._store = None

    async def abort(self) -> None:
        """Tear down as a crash would (tests' in-process kill -9 analog).

        No drain, no snapshot, no WAL truncation — and the lock file
        stays on disk exactly as SIGKILL would leave it (recovery
        reclaims it via the dead-pid probe).  Only the in-process
        resources (event loop task, thread pools, file handle) are
        released, since a real dead process cannot leak those.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._coalescer.stop()
        for view in self._views.values():
            view.close()
        # Sharded sessions abandon (SIGKILL semantics for the fleet's
        # stores); unsharded close joins the engine thread before the
        # server-level fd is dropped below.
        if self.session.sharded:
            self.session.abandon()
        else:
            self.session.close()
        if self._store is not None:
            self._store.abandon()
            self._store = None

    def drain(self) -> None:
        """Stop admitting work; live requests finish, new ones get 503."""
        self._draining = True

    def pause(self) -> None:
        """Hold the dispatcher between batches (overload/backlog testing)."""
        self._coalescer.pause()

    def resume(self) -> None:
        self._coalescer.resume()

    # -- connection loop ------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await http.read_request(reader, self.config.max_body_bytes)
                except http.ProtocolError as exc:
                    writer.write(
                        http.render_response(
                            exc.status, {"error": str(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                status, payload = await self._dispatch(request)
                writer.write(
                    http.render_response(status, payload, keep_alive=request.keep_alive)
                )
                await writer.drain()
                if not request.keep_alive:
                    return
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,  # server stopping mid-connection
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    # -- routing --------------------------------------------------------
    async def _dispatch(self, request: http.Request) -> tuple[int, dict]:
        route = (request.method, request.path)
        if request.path == "/health" and request.method == "GET":
            return 200, self._health()
        if route == ("GET", "/v1/stats"):
            return 200, self._stats()
        handlers = {
            ("POST", "/v1/topk"): self._handle_topk,
            ("POST", "/v1/rank"): self._handle_rank,
            ("POST", "/v1/representative"): self._handle_representative,
            ("POST", "/v1/insert"): self._handle_insert,
            ("POST", "/v1/delete"): self._handle_delete,
        }
        handler = handlers.get(route)
        if handler is None:
            known = {path for _method, path in handlers} | {"/health", "/v1/stats"}
            if request.path in known:
                return 405, {"error": f"wrong method for {request.path}"}
            return 404, {"error": f"unknown endpoint {request.path}"}
        if self._draining:
            return 503, {"error": "server is draining; retry against a peer"}
        try:
            body = request.json()
            return await handler(body)
        except http.ProtocolError as exc:
            return exc.status, {"error": str(exc)}
        except asyncio.QueueFull:
            return 429, {
                "error": "request queue is full",
                "queue_depth": self._coalescer.depth,
                "retry_after_ms": 50,
            }
        except (ValidationError, ReproError, ValueError, TypeError) as exc:
            return 400, {"error": str(exc)}
        except ConnectionResetError:
            return 503, {"error": "server stopped while the request was queued"}

    # -- endpoint bodies ------------------------------------------------
    def _health(self) -> dict:
        engine = self.session.engine
        out = {
            "status": "draining" if self._draining else "ok",
            "n": engine.n,
            "d": engine.d,
            "revision": engine.revision,
            "queue_depth": self._coalescer.depth,
            "durable": self._store is not None or (
                self.session.sharded and self.config.data_dir is not None
            ),
        }
        if self._store is not None:
            # Operators watch these two to see the snapshot cycle breathe:
            # bytes accumulate, a snapshot cuts, both drop to zero.
            out["durability"] = {
                "wal_bytes_since_snapshot": self._store.wal_bytes,
                "last_snapshot_age_s": self._store.last_snapshot_age_s,
            }
        if self.session.sharded:
            # Cached supervisor states only — /health must answer even
            # while a shard rebuild is holding the supervisor busy.
            states = engine.supervisor_states()
            out["shards"] = {
                "count": len(states),
                "serving": states.count("serving"),
                "recovering": states.count("recovering"),
                "dead": states.count("dead"),
            }
        return out

    def _stats(self) -> dict:
        out = {
            "engine": dict(self.session.engine.stats),
            "coalescing": self.stats(),
            "views": {
                f"{method}:{k}": dict(view.stats)
                for (method, k), view in self._views.items()
            },
        }
        if self._store is not None:
            out["durability"] = {
                **self._store.stats,
                "wal_bytes": self._store.wal_bytes,
                "wal_bytes_since_snapshot": self._store.wal_bytes,
                "last_snapshot_age_s": self._store.last_snapshot_age_s,
                "idempotency_keys": len(self._idempotency),
                "recovery": dict(self.recovery),
            }
        if self.session.sharded:
            out["durability"] = self.session.engine.durability_stats()
        return out

    def stats(self) -> dict:
        return self._coalescer.stats.as_dict()

    async def _handle_topk(self, body: dict) -> tuple[int, dict]:
        weights = _parse_matrix(body, "weights", self.session.engine.d)
        k = _parse_int(body, "k", low=1)
        future = self._offer(
            WorkItem(
                kind="topk",
                payload=body,
                future=asyncio.get_running_loop().create_future(),
                key=k,
                weights=weights,
            )
        )
        members, order, revision = await future
        return 200, {
            "members": members.tolist(),
            "order": order.tolist(),
            "revision": revision,
        }

    async def _handle_rank(self, body: dict) -> tuple[int, dict]:
        weights = _parse_matrix(body, "weights", self.session.engine.d)
        subset = _parse_indices(body, "subset")
        item = WorkItem(
            kind="rank",
            payload={"subset": subset},
            future=asyncio.get_running_loop().create_future(),
            key=subset.tobytes(),
            weights=weights,
        )
        ranks, revision = await self._offer(item)
        return 200, {"ranks": ranks.tolist(), "revision": revision}

    async def _handle_representative(self, body: dict) -> tuple[int, dict]:
        k = _parse_int(body, "k", low=1)
        method = body.get("method", self.config.representative_method)
        if method not in ("mdrc", "mdrrr"):
            raise http.ProtocolError(
                400, f"method must be 'mdrc' or 'mdrrr', got {method!r}"
            )
        view = self._view(method, k)
        result, revision = await self._barrier(
            lambda: (view.refresh(), self.session.engine.revision)
        )
        return 200, {
            "method": method,
            "k": k,
            "indices": [int(i) for i in result.indices],
            "revision": revision,
        }

    async def _handle_insert(self, body: dict) -> tuple[int, dict]:
        rows = _parse_matrix(body, "rows", self.session.engine.d)
        key = _parse_key(body)
        engine = self.session.engine

        if self.session.sharded:
            # The fleet owns exactly-once end to end: its two-level key
            # table (router + per-shard) makes the retry re-apply only
            # on shards whose commit record is missing.
            def run():
                return dict(engine.fleet_insert(rows, key=key))
        else:
            def run():
                stored = self._idempotency.get(key) if key is not None else None
                if stored is not None:
                    return dict(stored)  # exactly-once: engine untouched
                indices = engine.insert_rows(rows)
                engine.compact()  # settle now: views repair, revision bumps
                response = {"indices": indices.tolist(), "revision": engine.revision}
                self._commit_mutation(key, response)
                return response

        return 200, await self._barrier(run)

    async def _handle_delete(self, body: dict) -> tuple[int, dict]:
        indices = _parse_indices(body, "indices")
        key = _parse_key(body)
        engine = self.session.engine

        if self.session.sharded:
            def run():
                return dict(engine.fleet_delete(indices, key=key))
        else:
            def run():
                stored = self._idempotency.get(key) if key is not None else None
                if stored is not None:
                    return dict(stored)
                deleted = engine.delete_rows(indices)
                engine.compact()
                response = {"deleted": int(deleted), "revision": engine.revision}
                self._commit_mutation(key, response)
                return response

        return 200, await self._barrier(run)

    # -- durability -----------------------------------------------------
    def _commit_mutation(self, key: str | None, response: dict) -> None:
        """Make one applied mutation durable; engine dispatch thread only.

        Runs inside the mutation's barrier, after compact and before the
        response future resolves — the write-ahead discipline: the
        fsync'd record (delta events + key + response) is what makes the
        acknowledgment safe to send.  The size/age snapshot policy is
        checked here too, on the same thread, while the engine is
        settled.
        """
        if key is not None:
            self._idempotency[key] = response
            while len(self._idempotency) > _MAX_IDEMPOTENCY_KEYS:
                self._idempotency.pop(next(iter(self._idempotency)))
        if self._store is not None:
            self._store.commit(key, response if key is not None else None,
                               self.session.engine.revision)
            if self._store.should_snapshot():
                self._snapshot_now()

    def _snapshot_now(self) -> None:
        """Snapshot the settled engine state (engine thread / boot only)."""
        engine = self.session.engine
        self._store.snapshot(
            engine.values,
            engine.revision,
            idempotency=dict(self._idempotency),
            profile=json.loads(engine.tuning.to_json()),
        )

    def _final_snapshot(self) -> None:
        """The graceful-drain snapshot: only if the WAL holds anything."""
        if self._store is not None and self._store.wal_dirty:
            self._snapshot_now()

    # -- helpers --------------------------------------------------------
    def _offer(self, item: WorkItem) -> asyncio.Future:
        return self._coalescer.offer(item)

    def _barrier(self, run) -> asyncio.Future:
        return self._offer(
            WorkItem(
                kind="barrier",
                payload={},
                future=asyncio.get_running_loop().create_future(),
                run=run,
            )
        )

    def _view(self, method: str, k: int):
        key = (method, k)
        view = self._views.get(key)
        if view is None:
            from repro.engine import MDRCView, MDRRRView

            # Views run on the full algorithm engine (for a sharded
            # session, the router's reference engine — it carries the
            # fleet's delta stream, so maintenance works unchanged).
            if method == "mdrc":
                view = MDRCView(self.session.algo_engine, k)
            else:
                view = MDRRRView(self.session.algo_engine, k, rng=0)
            self._views[key] = view
        return view


def _parse_matrix(body: dict, name: str, d: int) -> np.ndarray:
    raw = body.get(name)
    if raw is None:
        raise http.ProtocolError(400, f"missing required field {name!r}")
    try:
        matrix = np.asarray(raw, dtype=np.float64)
    except (TypeError, ValueError):
        raise http.ProtocolError(400, f"{name!r} is not a numeric matrix") from None
    if matrix.ndim == 1 and matrix.size == d:
        matrix = matrix.reshape(1, d)
    if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] != d:
        raise http.ProtocolError(
            400, f"{name!r} must be a non-empty (m, {d}) matrix"
        )
    return np.ascontiguousarray(matrix)


def _parse_indices(body: dict, name: str) -> np.ndarray:
    raw = body.get(name)
    if raw is None:
        raise http.ProtocolError(400, f"missing required field {name!r}")
    try:
        indices = np.asarray(raw, dtype=np.int64).reshape(-1)
    except (TypeError, ValueError):
        raise http.ProtocolError(400, f"{name!r} is not an index list") from None
    if indices.size == 0:
        raise http.ProtocolError(400, f"{name!r} must not be empty")
    return indices


def _parse_int(body: dict, name: str, *, low: int) -> int:
    raw = body.get(name)
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < low:
        raise http.ProtocolError(400, f"{name!r} must be an integer >= {low}")
    return raw


def _parse_key(body: dict) -> str | None:
    raw = body.get("idempotency_key")
    if raw is None:
        return None
    if not isinstance(raw, str) or not raw or len(raw) > 256:
        raise http.ProtocolError(
            400, "'idempotency_key' must be a non-empty string of <= 256 chars"
        )
    return raw


def serve(values: np.ndarray, config: ServerConfig | None = None) -> None:
    """Run the server until SIGTERM/SIGINT (the ``repro serve`` entry).

    Both signals trigger the graceful path: admissions stop (503), the
    coalescer drains, a final snapshot is cut (when a ``data_dir`` is
    configured), and the process exits 0 — so an orchestrator's ordinary
    terminate never loses an acknowledged mutation and never pays WAL
    replay on the next boot.
    """

    async def _main() -> None:
        server = Server(values, config)
        loop = asyncio.get_running_loop()
        stop_signal = asyncio.Event()
        handled: list[int] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop_signal.set)
                handled.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix loop: KeyboardInterrupt fallback below
        await server.start()
        recovery = server.recovery
        print(
            f"repro.serve listening on http://{server.config.host}:{server.port} "
            f"(n={server.session.engine.n}, d={server.session.engine.d}, "
            f"revision={server.session.engine.revision}, "
            f"recovered_commits={recovery['replayed_commits']})",
            file=sys.stderr,
        )
        serve_task = asyncio.ensure_future(server.serve_forever())
        stop_task = asyncio.ensure_future(stop_signal.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if stop_signal.is_set():
                print(
                    "repro.serve: signal received — draining, snapshotting, "
                    "exiting",
                    file=sys.stderr,
                )
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await asyncio.gather(serve_task, stop_task, return_exceptions=True)
            for sig in handled:
                loop.remove_signal_handler(sig)
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro.serve: interrupted, shutting down", file=sys.stderr)


class ServerThread:
    """Run a :class:`Server` on a background event loop (tests, benches,
    the example client's ``--local`` mode).

    ::

        with ServerThread(values, ServerConfig(port=0)) as url:
            client = ServiceClient(url)
    """

    def __init__(self, values: np.ndarray, config: ServerConfig | None = None) -> None:
        config = config or ServerConfig(port=0)
        self.server = Server(values, config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._aborted = False

    @property
    def url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        finally:
            self._started.set()  # unblock start() even on boot failure

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._started.set()
        serve_task = asyncio.ensure_future(self.server.serve_forever())
        stop_task = asyncio.ensure_future(self._stop_event.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await asyncio.gather(serve_task, stop_task, return_exceptions=True)
            if self._aborted:
                await self.server.abort()
            else:
                await self.server.stop()

    def call(self, fn, *args) -> None:
        """Run ``fn`` on the server's loop (pause/resume/drain from tests)."""
        if self._loop is None:
            raise RuntimeError("server is not running")
        self._loop.call_soon_threadsafe(fn, *args)

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=30)
        self._loop = None
        self._thread = None

    def kill(self) -> None:
        """Crash the server: no drain, no snapshot, stale lock left behind.

        The in-process analogue of ``kill -9`` for the durability tests:
        the on-disk state afterwards (untruncated WAL, lock file
        pointing at a "dead" holder) is exactly what a SIGKILLed server
        leaves, while the process-local resources a real crash cannot
        leak are still released.
        """
        self._aborted = True
        self.stop()

    def __enter__(self) -> str:
        self.start()
        return self.url

    def __exit__(self, *exc) -> None:
        self.stop()
