"""The ``repro.serve`` server: a Session over asyncio HTTP.

One :class:`repro.Session` (long-lived calibrated engine + maintained
views) behind a coalescing request queue.  Endpoints:

============================  ======================================================
``GET  /health``              liveness + dataset shape + revision
``GET  /v1/stats``            engine counters, coalescing counters, queue depth
``POST /v1/topk``             ``{"weights": [[...]], "k": int}`` → members/order rows
``POST /v1/rank``             ``{"weights": [[...]], "subset": [...]}`` → ranks
``POST /v1/representative``   ``{"k": int, "method": "mdrc"|"mdrrr"}`` → indices
``POST /v1/insert``           ``{"rows": [[...]]}`` → new indices (journaled)
``POST /v1/delete``           ``{"indices": [...]}`` → deleted count (journaled)
============================  ======================================================

Queries coalesce (see :mod:`repro.serve.coalesce`); mutations and
representative refreshes are barriers.  Mutations feed the engine's
delta journal, and every maintained representative view hears about
them through its delta subscription — the next ``/v1/representative``
pays only the incremental repair.  Admission control is typed: **429**
(queue full, ``Retry-After`` hint) under overload, **503** while
draining for shutdown.  Failure handling inside the engine is the PR-6
resilience ladder, configured by the same ``policy`` knob as everywhere
else; a crashed worker degrades the backend, never the response.

On boot the server warm-loads a checksummed
:class:`~repro.engine.TuningProfile` if configured (recalibrating on a
failed integrity check, like the CLI), so the first request is served
by an already-tuned engine.
"""

from __future__ import annotations

import asyncio
import sys
import threading
from dataclasses import dataclass

import numpy as np

from repro.engine import TuningProfile
from repro.exceptions import CorruptStateError, ReproError, ValidationError
from repro.serve import http
from repro.serve.coalesce import Coalescer, WorkItem
from repro.session import Session

__all__ = ["ServerConfig", "Server", "serve", "ServerThread"]


@dataclass
class ServerConfig:
    host: str = "127.0.0.1"
    port: int = 8472
    jobs: int | None = None
    backend: str = "auto"
    tuning_profile: str | None = None  # checksummed JSON path; None = "auto"
    policy: object = None  # RetryPolicy | None
    max_pending: int = 256  # admission bound: queued requests before 429
    max_batch: int = 1024  # coalescing cap per engine call
    max_body_bytes: int = 32 * 2**20
    representative_method: str = "mdrc"  # default for /v1/representative


def _warm_tuning(config: ServerConfig, values: np.ndarray):
    """Boot-time profile: checksummed load, recalibrate on corruption."""
    if config.tuning_profile is None:
        return "auto"
    try:
        return TuningProfile.load(config.tuning_profile)
    except FileNotFoundError:
        pass
    except CorruptStateError as exc:
        print(
            f"warning: tuning profile {config.tuning_profile!r} failed its "
            f"integrity check ({exc}); recalibrating",
            file=sys.stderr,
        )
    from repro.engine import ScoreEngine

    with ScoreEngine(values, n_jobs=config.jobs) as probe:
        profile = probe.calibrate()
    profile.save(config.tuning_profile)
    return profile


class Server:
    """The serving front-end; owns the Session, views and coalescer."""

    def __init__(self, values: np.ndarray, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.session = Session(
            values,
            jobs=self.config.jobs,
            backend=self.config.backend,
            tune=_warm_tuning(self.config, np.asarray(values, dtype=np.float64)),
            policy=self.config.policy,
        )
        self._coalescer = Coalescer(
            self.session.engine,
            max_pending=self.config.max_pending,
            max_batch=self.config.max_batch,
        )
        self._views: dict[tuple[str, int], object] = {}
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self.port: int | None = None  # resolved at start (0 = ephemeral)

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        self._coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._coalescer.stop()
        for view in self._views.values():
            view.close()
        self.session.close()

    def drain(self) -> None:
        """Stop admitting work; live requests finish, new ones get 503."""
        self._draining = True

    def pause(self) -> None:
        """Hold the dispatcher between batches (overload/backlog testing)."""
        self._coalescer.pause()

    def resume(self) -> None:
        self._coalescer.resume()

    # -- connection loop ------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await http.read_request(reader, self.config.max_body_bytes)
                except http.ProtocolError as exc:
                    writer.write(
                        http.render_response(
                            exc.status, {"error": str(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                status, payload = await self._dispatch(request)
                writer.write(
                    http.render_response(status, payload, keep_alive=request.keep_alive)
                )
                await writer.drain()
                if not request.keep_alive:
                    return
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,  # server stopping mid-connection
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    # -- routing --------------------------------------------------------
    async def _dispatch(self, request: http.Request) -> tuple[int, dict]:
        route = (request.method, request.path)
        if request.path == "/health" and request.method == "GET":
            return 200, self._health()
        if route == ("GET", "/v1/stats"):
            return 200, self._stats()
        handlers = {
            ("POST", "/v1/topk"): self._handle_topk,
            ("POST", "/v1/rank"): self._handle_rank,
            ("POST", "/v1/representative"): self._handle_representative,
            ("POST", "/v1/insert"): self._handle_insert,
            ("POST", "/v1/delete"): self._handle_delete,
        }
        handler = handlers.get(route)
        if handler is None:
            known = {path for _method, path in handlers} | {"/health", "/v1/stats"}
            if request.path in known:
                return 405, {"error": f"wrong method for {request.path}"}
            return 404, {"error": f"unknown endpoint {request.path}"}
        if self._draining:
            return 503, {"error": "server is draining; retry against a peer"}
        try:
            body = request.json()
            return await handler(body)
        except http.ProtocolError as exc:
            return exc.status, {"error": str(exc)}
        except asyncio.QueueFull:
            return 429, {
                "error": "request queue is full",
                "queue_depth": self._coalescer.depth,
                "retry_after_ms": 50,
            }
        except (ValidationError, ReproError, ValueError, TypeError) as exc:
            return 400, {"error": str(exc)}
        except ConnectionResetError:
            return 503, {"error": "server stopped while the request was queued"}

    # -- endpoint bodies ------------------------------------------------
    def _health(self) -> dict:
        engine = self.session.engine
        return {
            "status": "draining" if self._draining else "ok",
            "n": engine.n,
            "d": engine.d,
            "revision": engine.revision,
            "queue_depth": self._coalescer.depth,
        }

    def _stats(self) -> dict:
        return {
            "engine": dict(self.session.engine.stats),
            "coalescing": self.stats(),
            "views": {
                f"{method}:{k}": dict(view.stats)
                for (method, k), view in self._views.items()
            },
        }

    def stats(self) -> dict:
        return self._coalescer.stats.as_dict()

    async def _handle_topk(self, body: dict) -> tuple[int, dict]:
        weights = _parse_matrix(body, "weights", self.session.engine.d)
        k = _parse_int(body, "k", low=1)
        future = self._offer(
            WorkItem(
                kind="topk",
                payload=body,
                future=asyncio.get_running_loop().create_future(),
                key=k,
                weights=weights,
            )
        )
        members, order, revision = await future
        return 200, {
            "members": members.tolist(),
            "order": order.tolist(),
            "revision": revision,
        }

    async def _handle_rank(self, body: dict) -> tuple[int, dict]:
        weights = _parse_matrix(body, "weights", self.session.engine.d)
        subset = _parse_indices(body, "subset")
        item = WorkItem(
            kind="rank",
            payload={"subset": subset},
            future=asyncio.get_running_loop().create_future(),
            key=subset.tobytes(),
            weights=weights,
        )
        ranks, revision = await self._offer(item)
        return 200, {"ranks": ranks.tolist(), "revision": revision}

    async def _handle_representative(self, body: dict) -> tuple[int, dict]:
        k = _parse_int(body, "k", low=1)
        method = body.get("method", self.config.representative_method)
        if method not in ("mdrc", "mdrrr"):
            raise http.ProtocolError(
                400, f"method must be 'mdrc' or 'mdrrr', got {method!r}"
            )
        view = self._view(method, k)
        result, revision = await self._barrier(
            lambda: (view.refresh(), self.session.engine.revision)
        )
        return 200, {
            "method": method,
            "k": k,
            "indices": [int(i) for i in result.indices],
            "revision": revision,
        }

    async def _handle_insert(self, body: dict) -> tuple[int, dict]:
        rows = _parse_matrix(body, "rows", self.session.engine.d)
        engine = self.session.engine

        def run():
            indices = engine.insert_rows(rows)
            engine.compact()  # settle now: views repair, revision bumps
            return indices, engine.revision

        indices, revision = await self._barrier(run)
        return 200, {"indices": indices.tolist(), "revision": revision}

    async def _handle_delete(self, body: dict) -> tuple[int, dict]:
        indices = _parse_indices(body, "indices")
        engine = self.session.engine

        def run():
            deleted = engine.delete_rows(indices)
            engine.compact()
            return deleted, engine.revision

        deleted, revision = await self._barrier(run)
        return 200, {"deleted": int(deleted), "revision": revision}

    # -- helpers --------------------------------------------------------
    def _offer(self, item: WorkItem) -> asyncio.Future:
        return self._coalescer.offer(item)

    def _barrier(self, run) -> asyncio.Future:
        return self._offer(
            WorkItem(
                kind="barrier",
                payload={},
                future=asyncio.get_running_loop().create_future(),
                run=run,
            )
        )

    def _view(self, method: str, k: int):
        key = (method, k)
        view = self._views.get(key)
        if view is None:
            from repro.engine import MDRCView, MDRRRView

            if method == "mdrc":
                view = MDRCView(self.session.engine, k)
            else:
                view = MDRRRView(self.session.engine, k, rng=0)
            self._views[key] = view
        return view


def _parse_matrix(body: dict, name: str, d: int) -> np.ndarray:
    raw = body.get(name)
    if raw is None:
        raise http.ProtocolError(400, f"missing required field {name!r}")
    try:
        matrix = np.asarray(raw, dtype=np.float64)
    except (TypeError, ValueError):
        raise http.ProtocolError(400, f"{name!r} is not a numeric matrix") from None
    if matrix.ndim == 1 and matrix.size == d:
        matrix = matrix.reshape(1, d)
    if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] != d:
        raise http.ProtocolError(
            400, f"{name!r} must be a non-empty (m, {d}) matrix"
        )
    return np.ascontiguousarray(matrix)


def _parse_indices(body: dict, name: str) -> np.ndarray:
    raw = body.get(name)
    if raw is None:
        raise http.ProtocolError(400, f"missing required field {name!r}")
    try:
        indices = np.asarray(raw, dtype=np.int64).reshape(-1)
    except (TypeError, ValueError):
        raise http.ProtocolError(400, f"{name!r} is not an index list") from None
    if indices.size == 0:
        raise http.ProtocolError(400, f"{name!r} must not be empty")
    return indices


def _parse_int(body: dict, name: str, *, low: int) -> int:
    raw = body.get(name)
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < low:
        raise http.ProtocolError(400, f"{name!r} must be an integer >= {low}")
    return raw


def serve(values: np.ndarray, config: ServerConfig | None = None) -> None:
    """Run the server until interrupted (the ``repro serve`` entry)."""

    async def _main() -> None:
        server = Server(values, config)
        await server.start()
        print(
            f"repro.serve listening on http://{server.config.host}:{server.port} "
            f"(n={server.session.engine.n}, d={server.session.engine.d})",
            file=sys.stderr,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro.serve: interrupted, shutting down", file=sys.stderr)


class ServerThread:
    """Run a :class:`Server` on a background event loop (tests, benches,
    the example client's ``--local`` mode).

    ::

        with ServerThread(values, ServerConfig(port=0)) as url:
            client = ServiceClient(url)
    """

    def __init__(self, values: np.ndarray, config: ServerConfig | None = None) -> None:
        config = config or ServerConfig(port=0)
        self.server = Server(values, config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        finally:
            self._started.set()  # unblock start() even on boot failure

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._started.set()
        serve_task = asyncio.ensure_future(self.server.serve_forever())
        stop_task = asyncio.ensure_future(self._stop_event.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await asyncio.gather(serve_task, stop_task, return_exceptions=True)
            await self.server.stop()

    def call(self, fn, *args) -> None:
        """Run ``fn`` on the server's loop (pause/resume/drain from tests)."""
        if self._loop is None:
            raise RuntimeError("server is not running")
        self._loop.call_soon_threadsafe(fn, *args)

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=30)
        self._loop = None
        self._thread = None

    def __enter__(self) -> str:
        self.start()
        return self.url

    def __exit__(self, *exc) -> None:
        self.stop()
