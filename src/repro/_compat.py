"""Deprecation shims for renamed public keyword arguments.

PR 8 unified the keyword vocabulary of every public free function on
four canonical names — ``jobs`` (worker count), ``backend`` (execution
backend), ``tune`` (a :class:`~repro.engine.TuningProfile` or
``"auto"``) and ``policy`` (a :class:`~repro.engine.RetryPolicy`) — the
same names :class:`repro.Session` exposes.  The old spellings
(``n_jobs``, and ``resilience`` where a function grew the policy knob
under that name) keep working through :func:`renamed_kwargs`, which
rewrites them to the canonical name and emits a
:class:`DeprecationWarning` pointing at the replacement.
"""

from __future__ import annotations

import functools
import warnings

__all__ = ["renamed_kwargs"]


def renamed_kwargs(**renames: str):
    """Decorator: accept deprecated keyword spellings for a transition.

    ``renamed_kwargs(n_jobs="jobs")`` makes the wrapped function accept
    ``n_jobs=`` as a deprecated alias of its real ``jobs=`` parameter.
    Passing both spellings at once is a :class:`TypeError` (the call is
    ambiguous); passing the old one alone warns and forwards.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            for old, new in renames.items():
                if old in kwargs:
                    if new in kwargs:
                        raise TypeError(
                            f"{fn.__name__}() got both {old!r} and its "
                            f"replacement {new!r}; pass only {new!r}"
                        )
                    warnings.warn(
                        f"{fn.__name__}({old}=...) is deprecated; "
                        f"use {new}=... instead",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                    kwargs[new] = kwargs.pop(old)
            return fn(*args, **kwargs)

        return wrapper

    return decorate
