"""The dual (size-budget) formulation of RRR (§2, "Problem Formulation").

Instead of fixing k and minimizing the set size, a user may fix the output
size budget ``r`` and ask for the subset with minimum rank-regret.  The
paper observes that an RRR solver yields a dual solver via binary search
on k: if RRR(k) returns at most ``r`` tuples, smaller k may also fit;
otherwise move up — an extra ``log n`` factor in running time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import RRRResult, rank_regret_representative
from repro.datasets.base import Dataset
from repro.exceptions import ValidationError

__all__ = ["SizeBudgetResult", "min_rank_regret_of_size"]


@dataclass(frozen=True)
class SizeBudgetResult:
    """Outcome of the size-budget binary search.

    Attributes
    ----------
    result:
        The representative found at the smallest feasible k.
    k:
        That smallest k whose representative fit within the budget.
    probes:
        Number of RRR solver invocations performed by the search.
    """

    result: RRRResult
    k: int
    probes: int


def min_rank_regret_of_size(
    data: Dataset | np.ndarray,
    size: int,
    method: str = "auto",
    rng: int | np.random.Generator | None = None,
    **options: object,
) -> SizeBudgetResult:
    """Binary search over k for the smallest rank-regret within ``size``.

    Monotonicity caveat (inherited from the paper): with *approximate*
    solvers, output size is not perfectly monotone in k, so the search is
    a heuristic exactly as in §2 — it returns the smallest k probed whose
    output fit the budget, along with that output.
    """
    if isinstance(data, Dataset):
        n = data.n
    else:
        matrix = np.asarray(data)
        if matrix.ndim != 2:
            raise ValidationError("data must be a Dataset or an (n, d) matrix")
        n = matrix.shape[0]
    size = int(size)
    if size < 1:
        raise ValidationError("size budget must be >= 1")

    lo, hi = 1, n
    best: RRRResult | None = None
    best_k = n
    probes = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        candidate = rank_regret_representative(
            data, mid, method=method, rng=rng, **options
        )
        probes += 1
        if candidate.size <= size:
            if mid <= best_k:
                best, best_k = candidate, mid
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        # Even k = n failed, which cannot happen: RRR(n) is a single tuple.
        raise ValidationError("no feasible k found (internal error)")
    return SizeBudgetResult(result=best, k=best_k, probes=probes)
