"""RRR for an arbitrary *finite* set of ranking functions.

Definitions 1–3 of the paper are stated for any function set ``F``; the
algorithms specialize to the full linear class ``L``.  When ``F`` is a
finite list — a workload log of actual user queries, a business-defined
panel of scoring rules, a dense lattice — the problem collapses to a
plain hitting set over the functions' top-k sets, solvable directly.
This module provides that: the paper's framework applied to workloads,
plus the bridge lemma (any representative for ``L`` also serves every
finite ``F ⊂ L``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import BitsetTable, ScoreEngine
from repro.exceptions import ValidationError
from repro.setcover.hitting_set import exact_hitting_set, greedy_hitting_set

__all__ = ["WorkloadRRRResult", "workload_rrr"]


@dataclass(frozen=True)
class WorkloadRRRResult:
    """Output of :func:`workload_rrr`.

    Attributes
    ----------
    indices:
        The representative (sorted row indices).
    num_functions:
        Number of workload functions covered.
    num_distinct_topk:
        Distinct top-k sets among them (the hitting-set instance size).
    exact:
        Whether the hitting set was solved exactly or greedily.
    """

    indices: tuple[int, ...]
    num_functions: int
    num_distinct_topk: int
    exact: bool

    @property
    def size(self) -> int:
        """Number of representative tuples."""
        return len(self.indices)


def workload_rrr(
    values: np.ndarray,
    functions: np.ndarray,
    k: int,
    solver: str = "greedy",
) -> WorkloadRRRResult:
    """Smallest (approximately) subset containing a top-k item of every
    function in a finite workload.

    Parameters
    ----------
    values:
        ``(n, d)`` normalized matrix.
    functions:
        ``(m, d)`` matrix — one weight vector per workload function.
    k:
        Rank-regret level to guarantee *for each workload function*.
    solver:
        ``"greedy"`` (log-approximate, default) or ``"exact"``
        (exponential — small workloads only).

    Notes
    -----
    The guarantee is exact for the given workload: every function in
    ``functions`` finds one of its true top-k in the output.  Functions
    outside the workload get no promise — use :func:`repro.core.md_rrr`
    or :func:`repro.core.mdrc` to cover all of ``L``.
    """
    matrix = np.asarray(values, dtype=np.float64)
    weights = np.asarray(functions, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    if weights.ndim != 2 or weights.shape[0] == 0:
        raise ValidationError("functions must be a non-empty (m, d) matrix")
    if weights.shape[1] != matrix.shape[1]:
        raise ValidationError(
            f"functions have {weights.shape[1]} attributes, data has {matrix.shape[1]}"
        )
    k = int(k)
    if not 1 <= k <= matrix.shape[0]:
        raise ValidationError(f"k must be in [1, {matrix.shape[0]}], got {k}")
    # One chunked GEMM for the whole workload; distinct top-k sets fall
    # out of the packed-bitset table without any frozenset churn on the
    # (typically much larger) duplicated remainder.
    members = ScoreEngine(matrix).topk_batch(weights, k).members
    table = BitsetTable(matrix.shape[0])
    for row in members:
        table.add(row)
    topk_sets = table.frozensets()
    if solver == "greedy":
        chosen = greedy_hitting_set(topk_sets)
        exact = False
    elif solver == "exact":
        chosen = exact_hitting_set(topk_sets)
        exact = True
    else:
        raise ValidationError(f"unknown solver {solver!r}")
    return WorkloadRRRResult(
        indices=tuple(sorted(int(i) for i in chosen)),
        num_functions=int(weights.shape[0]),
        num_distinct_topk=len(topk_sets),
        exact=exact,
    )
