"""Exact (exponential-time) RRR solvers for ground truth.

The RRR problem is NP-complete for d ≥ 3 (§2), so these solvers exist for
*validation*, not production: tests and benchmarks use them to certify
approximation ratios (Theorem 3's "no larger than optimal", MDRRR's log
factor) on small instances.

Two oracles are offered:

* :func:`exact_rrr_2d` — smallest subset whose *exact* 2-D rank-regret
  (dual-sweep oracle) is ≤ k.  Search is organized over the items that
  ever enter the top-k, in increasing subset size.
* :func:`exact_rrr_via_ksets` — smallest hitting set of the complete
  k-set collection (any d).  Exact by Lemma 5: hitting every k-set is
  necessary and sufficient for rank-regret ≤ k over ``L``.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.mdrrr import collect_ksets
from repro.core.rrr2d import find_ranges
from repro.evaluation.regret import rank_regret_exact_2d
from repro.exceptions import ValidationError
from repro.setcover.hitting_set import exact_hitting_set

__all__ = ["exact_rrr_2d", "exact_rrr_via_ksets"]

_SEARCH_CAP = 24  # candidate-universe cap keeping the search tractable


def exact_rrr_2d(values: np.ndarray, k: int, max_size: int | None = None) -> list[int]:
    """The optimal k-RRR of a small 2-D instance (sorted indices).

    Only items whose Algorithm-1 range is non-empty can be useful (an item
    never in the top-k covers nothing), which prunes the universe before
    the subset search.  Raises when the pruned universe exceeds
    ``_SEARCH_CAP`` items — use the approximation algorithms there.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != 2:
        raise ValidationError("exact_rrr_2d expects an (n, 2) matrix")
    k = int(k)
    if not 1 <= k <= matrix.shape[0]:
        raise ValidationError(f"k must be in [1, {matrix.shape[0]}], got {k}")
    candidates = [int(i) for i in find_ranges(matrix, k).covered_items()]
    if len(candidates) > _SEARCH_CAP:
        raise ValidationError(
            f"instance too large for the exact solver: {len(candidates)} "
            f"candidates exceed the cap of {_SEARCH_CAP}"
        )
    limit = len(candidates) if max_size is None else min(int(max_size), len(candidates))
    for size in range(1, limit + 1):
        for combo in itertools.combinations(candidates, size):
            if rank_regret_exact_2d(matrix, combo) <= k:
                return sorted(combo)
    raise ValidationError(
        f"no subset of size <= {limit} achieves rank-regret {k} (internal error)"
    )


def exact_rrr_via_ksets(
    values: np.ndarray,
    k: int,
    max_size: int | None = None,
) -> list[int]:
    """The optimal k-RRR via exact k-set enumeration + exact hitting set.

    Correct in any dimension by Lemma 5.  Exponential twice over (BFS k-set
    enumeration solves O(|S|·k·n) LPs, then the hitting set is brute
    forced) — keep n in the low dozens.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    ksets, _, _ = collect_ksets(matrix, k, enumerator="exact")
    return sorted(exact_hitting_set(ksets, max_size=max_size))
