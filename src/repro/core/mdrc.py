"""MDRC: function-space partitioning (Algorithm 5, §5.3).

MDRC covers the *continuous* function space instead of the discrete k-set
space.  The space of positive linear functions in R^d is the box
``[0, π/2]^{d−1}`` of ray angles.  The algorithm recursively halves the box
(round-robin over the d−1 angular dimensions, a quadtree-like scheme): at
each cell it computes the top-k of every corner function and, if the
corner top-k sets share an item, assigns that item to the whole cell and
stops — otherwise it splits.

Theorem 6: an item in the top-k of every corner has rank at most ``d·k``
for *every* function inside the cell, so the union of assigned items has
rank-regret at most ``d·k``.  In the paper's experiments the measured
rank-regret was ≤ k throughout, and output sizes stayed below 40.

Implementation notes beyond the pseudocode:

* the recursion is processed as a **batched frontier**, level by level.
  Per level: every unevaluated corner function is built in one
  :func:`repro.ranking.functions.weights_from_angles_batch` call and
  scored in one :meth:`repro.engine.ScoreEngine.topk_batch` call (a
  single chunked GEMM), corner results are memoized in a byte-keyed
  registry backed by growing packed-bitset/order buffers, and every
  cell's corner intersection is one gather + ``bitwise_and`` reduction
  over those buffers — no per-corner GEMV probes, no per-cell Python
  ``frozenset`` churn.  Which cells resolve, split, or cap is
  order-independent, so the output is identical to the original
  depth-first formulation except when the global ``max_cells`` budget
  fires mid-run (a pathological regime either way: the budget then tied
  off a depth-first fringe before and ties off a breadth-first fringe
  now, with the projected leaf count capped at ``max_cells`` so total
  work stays bounded exactly as the seed's O(depth) stack bounded it);
* corner top-k computations are memoized — sibling cells within and
  across levels share corners, so caching roughly halves the work;
* the common item assigned to a cell is chosen deterministically; two
  policies are exposed for the ablation bench (``first`` = paper's
  ``I[1]``, ``best-rank`` = smallest worst-case corner rank);
* recursion is bounded twice, because cells that straddle a boundary
  between top-k regions can refuse to intersect forever when k is very
  small relative to n: a per-cell depth cap (``max_depth``) and a global
  leaf budget (``max_cells``).  A cell resolved by either fallback
  contributes its center function's top-1 (all fallback centers of one
  level are likewise evaluated in a single batch) *and* each of its
  corners' top-1 (already evaluated — the corners sample every side of
  the unresolved boundary the cell straddles, which the center alone can
  miss entirely when one side's angular sliver is tiny), preserving
  coverage at a rank cost that vanishes with cell size;
  :attr:`MDRCResult.capped_cells` reports how often this happened (0 in
  ordinary runs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro._compat import renamed_kwargs
from repro.engine import ScoreEngine, pack_membership, packed_width
from repro.exceptions import InvalidDataError, ValidationError
from repro.ranking.functions import weights_from_angles_batch

__all__ = ["CELL_FALLBACK", "CELL_RESOLVED", "CELL_SPLIT", "CornerCache", "MDRCResult", "mdrc"]

_HALF_PI = float(np.pi / 2)

# Cell states in a recorded decision tree (:class:`CornerCache.levels`).
CELL_RESOLVED = 0  # corner top-k sets share an item; leaf
CELL_SPLIT = 1  # no common item; two children at the next level
CELL_FALLBACK = 2  # no common item at the depth cap; center-top-1 leaf


@dataclass
class MDRCResult:
    """Output of :func:`mdrc`.

    Attributes
    ----------
    indices:
        The representative (sorted row indices).
    cells:
        Number of leaf cells (assigned an item, or resolved by a fallback).
    max_depth_reached:
        Deepest recursion level that occurred.
    capped_cells:
        Number of cells resolved by the depth-cap / cell-budget fallback
        (0 in ordinary runs; > 0 signals a pathological instance such as
        k = 1 with many incomparable maxima).
    corner_evaluations:
        Corner functions whose top-k was computed (cache misses when the
        memo is on; every corner visit when it is off).
    """

    indices: list[int]
    cells: int = 0
    max_depth_reached: int = 0
    capped_cells: int = 0
    corner_evaluations: int = 0


class _CornerStore:
    """Growing buffers of evaluated corners: packed top-k sets + orders.

    Rows are addressed by the dense ids the byte-keyed registry hands
    out, so a whole level's cell×corner id matrix can be resolved with
    one fancy-index gather per buffer.
    """

    def __init__(self, width: int, k: int) -> None:
        self._packed = np.empty((64, width), dtype=np.uint8)
        self._orders = np.empty((64, k), dtype=np.int64)
        self.count = 0

    def append(self, packed_rows: np.ndarray, order_rows: np.ndarray) -> None:
        need = self.count + packed_rows.shape[0]
        if need > self._packed.shape[0]:
            capacity = self._packed.shape[0]
            while capacity < need:
                capacity *= 2
            self._packed = np.resize(self._packed, (capacity, self._packed.shape[1]))
            self._orders = np.resize(self._orders, (capacity, self._orders.shape[1]))
        self._packed[self.count : need] = packed_rows
        self._orders[self.count : need] = order_rows
        self.count = need

    @property
    def packed(self) -> np.ndarray:
        return self._packed[: self.count]

    @property
    def orders(self) -> np.ndarray:
        return self._orders[: self.count]


class CellLevel:
    """One recorded frontier level of the MDRC recursion.

    ``children`` carries explicit links: a ``CELL_SPLIT`` cell's two
    children (left before right) sit at positions ``children[c]`` and
    ``children[c] + 1`` of the next level.  Decisions are order-
    independent on the vectorized path, so cell order within a level is
    arbitrary — maintenance is free to compact and append as long as the
    links stay consistent.
    """

    __slots__ = ("los", "his", "corners", "state", "item", "center_item", "children")

    def __init__(
        self,
        los: np.ndarray,
        his: np.ndarray,
        corners: np.ndarray,
        state: np.ndarray,
        item: np.ndarray,
        center_item: np.ndarray,
        children: np.ndarray,
    ) -> None:
        self.los = los  # (C, d-1) cell lower angle bounds
        self.his = his  # (C, d-1) cell upper angle bounds
        self.corners = corners  # (C, 2^(d-1)) dense corner ids
        self.state = state  # (C,) CELL_RESOLVED / CELL_SPLIT / CELL_FALLBACK
        self.item = item  # (C,) resolved cell's representative, else -1
        self.center_item = center_item  # (C,) fallback cell's center top-1, else -1
        self.children = children  # (C,) first-child position at next level, else -1


class CornerCache:
    """Cross-call MDRC memo + decision tree: the repairable state.

    Within one :func:`mdrc` call the byte-keyed registry already memoizes
    corner top-k evaluations.  A ``CornerCache`` makes that memo — and
    the full per-level decision tree of the recursion — outlive the call,
    so a maintained view (:mod:`repro.engine.views`) can repair it after
    a data mutation: re-evaluate only the corners the mutation's score
    bounds can touch, re-decide only the cells referencing a corner whose
    top-k actually changed, and keep every untouched cell verbatim.

    Attributes
    ----------
    registry:
        Angle-row bytes → dense corner id (the same keying as the
        per-call memo; angle floats are exact box midpoints, so byte
        equality is exact corner equality).
    orders / angles / lengths:
        Per-corner top-``k_eval`` index rows ``(count, k_eval)``, angle
        rows ``(count, d-1)``, and per-corner valid prefix lengths,
        addressed by dense id.  ``k_eval = k + reserve``: the extra
        tail is a repair buffer — a maintained view absorbs deletions by
        compacting the row and insertions by banded placement, touching
        the full matrix only when a buffer runs below ``k`` members.
        The recursion itself reads only the first ``k`` columns (always
        valid), so the reserve never changes an mdrc result.  Packed
        bitsets are *not* persisted — they are tied to the row count and
        cheap to rebuild for the corners a computation intersects.
    n, k, params:
        The (row count, k) the cached orders were evaluated against and
        the ``(max_depth, max_cells, choice)`` the tree was built under;
        any mismatch on the next :func:`mdrc` call resets the cache.
    levels:
        The recorded decision tree (list of :class:`CellLevel`), or
        ``None`` when no tree is available — never recorded, invalidated
        by a maintenance bail-out, or the run engaged the global
        ``max_cells`` budget path (whose sequential decisions are order-
        dependent and therefore not locally repairable).
    """

    RESERVE = 16  # repair-buffer columns beyond k

    __slots__ = (
        "registry",
        "n",
        "k",
        "k_eval",
        "d",
        "params",
        "levels",
        "count",
        "_orders",
        "_angles",
        "_lengths",
    )

    def __init__(self) -> None:
        self.registry: dict[bytes, int] = {}
        self.n: int | None = None
        self.k: int | None = None
        self.k_eval: int | None = None
        self.d: int | None = None
        self.params: tuple | None = None
        self.levels: list[CellLevel] | None = None
        self.count = 0
        self._orders: np.ndarray | None = None
        self._angles: np.ndarray | None = None
        self._lengths: np.ndarray | None = None

    @property
    def orders(self) -> np.ndarray:
        """The cached corners' top-``k_eval`` index rows ``(count, k_eval)``."""
        if self._orders is None:
            return np.empty((0, 0), dtype=np.int64)
        return self._orders[: self.count]

    @property
    def angles(self) -> np.ndarray:
        """The cached corners' angle rows ``(count, d-1)``."""
        if self._angles is None:
            return np.empty((0, 0), dtype=np.float64)
        return self._angles[: self.count]

    @property
    def lengths(self) -> np.ndarray:
        """Valid prefix length of each cached order row (always ≥ k)."""
        if self._lengths is None:
            return np.empty(0, dtype=np.int64)
        return self._lengths[: self.count]

    def ensure(self, n: int, k: int, d: int, params: tuple) -> None:
        """Reset unless the cache matches this (shape, k, parameters)."""
        if (
            self._orders is None
            or self.n != int(n)
            or self.k != int(k)
            or self.d != int(d)
            or self.params != params
        ):
            self.reset(n, k, d, params)

    def reset(self, n: int, k: int, d: int, params: tuple) -> None:
        self.registry = {}
        self.n = int(n)
        self.k = int(k)
        self.k_eval = min(int(n), int(k) + self.RESERVE)
        self.d = int(d)
        self.params = params
        self.levels = None
        self.count = 0
        self._orders = np.empty((64, self.k_eval), dtype=np.int64)
        self._angles = np.empty((64, int(d) - 1), dtype=np.float64)
        self._lengths = np.empty(64, dtype=np.int64)

    def append(self, order_rows: np.ndarray, angle_rows: np.ndarray) -> None:
        """Append freshly evaluated corners (full-width rows, dense ids)."""
        need = self.count + order_rows.shape[0]
        if need > self._orders.shape[0]:
            capacity = self._orders.shape[0]
            while capacity < need:
                capacity *= 2
            self._orders = np.resize(self._orders, (capacity, self._orders.shape[1]))
            self._angles = np.resize(self._angles, (capacity, self._angles.shape[1]))
            self._lengths = np.resize(self._lengths, capacity)
        self._orders[self.count : need] = order_rows
        self._angles[self.count : need] = angle_rows
        self._lengths[self.count : need] = order_rows.shape[1]
        self.count = need

    def corner_keys(self) -> list[bytes]:
        """Registry keys indexed by dense corner id."""
        keys: list[bytes] = [b""] * len(self.registry)
        for key, gid in self.registry.items():
            keys[gid] = key
        return keys

    def prune(self) -> None:
        """Compact to the corners the recorded tree references.

        Keeps the cache tracking the live recursion tree instead of
        growing monotonically with churn; a no-op when no tree is
        recorded (nothing says which corners are live).
        """
        if self.levels is None or self.count == 0:
            return
        live = np.zeros(self.count, dtype=bool)
        for level in self.levels:
            live[level.corners.ravel()] = True
        if live.all():
            return
        remap = np.cumsum(live) - 1
        keys = self.corner_keys()
        survivors = np.flatnonzero(live)
        self.registry = {keys[int(gid)]: new for new, gid in enumerate(survivors)}
        self._orders = np.ascontiguousarray(self._orders[survivors])
        self._angles = np.ascontiguousarray(self._angles[survivors])
        self._lengths = np.ascontiguousarray(self._lengths[survivors])
        self.count = int(survivors.size)
        for level in self.levels:
            level.corners = remap[level.corners]


@renamed_kwargs(n_jobs="jobs")
def mdrc(
    values: np.ndarray,
    k: int,
    max_depth: int = 48,
    max_cells: int = 10_000,
    choice: str = "first",
    use_cache: bool = True,
    engine: ScoreEngine | None = None,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
    policy=None,
    corner_cache: CornerCache | None = None,
) -> MDRCResult:
    """MDRC (Algorithm 5): frontier-batched function-space partitioning.

    Parameters
    ----------
    values:
        ``(n, d)`` normalized matrix with d ≥ 2.
    k:
        Rank-regret target; the output guarantees rank-regret ≤ d·k
        (Theorem 6) and empirically ≤ k.
    max_depth:
        Per-cell recursion cap.
    max_cells:
        Global leaf-cell budget; once exceeded, every remaining frontier
        cell resolves via the center-top-1 fallback.
    choice:
        How to pick from a non-empty corner intersection: ``"first"``
        (lowest row index — the paper's ``I[1]``) or ``"best-rank"``
        (the item with the smallest worst-case rank over the corners).
    use_cache:
        Memoize corner top-k computations (ablation toggle).
    engine:
        Optional pre-built :class:`~repro.engine.ScoreEngine` over
        ``values`` to share its GEMM chunking and memo across calls;
        built on the fly when omitted.
    jobs:
        Workers for the engine's fan-out layer when the engine is built
        here (``None``/``1`` = serial, ``-1`` = all cores); ignored when
        ``engine`` is passed — the caller's engine keeps its own
        configuration.  (``n_jobs`` is the deprecated spelling.)
    backend:
        Execution backend for the fan-out (``"auto"`` | ``"serial"`` |
        ``"thread"`` | ``"process"``), as in :class:`ScoreEngine`;
        likewise ignored when ``engine`` is passed.
    tune:
        Runtime tuning for the engine built here (``None`` | ``"auto"``
        | a :class:`~repro.engine.TuningProfile`); ignored when
        ``engine`` is passed.  Results are bit-identical either way.
    policy:
        Failure handling for the engine built here (a
        :class:`~repro.engine.RetryPolicy`, or ``None`` for the
        process-wide default); likewise ignored when ``engine`` is
        passed.
    corner_cache:
        Optional :class:`CornerCache` carrying corner evaluations across
        calls (the maintained-view replay path).  Requires ``use_cache``;
        reset automatically when its ``(n, k)`` no longer match.  The
        caller is responsible for the cached orders being valid for the
        *current* ``values`` — :mod:`repro.engine.views` repairs the
        cache after each mutation before replaying.
    """
    try:
        matrix = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise InvalidDataError(
            f"values are not numeric (cannot convert to float64): {exc}"
        ) from None
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    if not np.all(np.isfinite(matrix)):
        raise InvalidDataError(
            "values contain NaN or Inf entries; mdrc's corner probes would "
            "return garbage ranks — clean or impute the data first"
        )
    n, d = matrix.shape
    if d < 2:
        raise ValidationError("mdrc needs d >= 2 (one angle dimension or more)")
    k = int(k)
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, {n}], got {k}")
    if max_depth < 1:
        raise ValidationError("max_depth must be >= 1")
    if max_cells < 1:
        raise ValidationError("max_cells must be >= 1")
    if choice not in ("first", "best-rank"):
        raise ValidationError(f"unknown choice policy {choice!r}")
    own_engine = engine is None
    if engine is None:
        engine = ScoreEngine(
            matrix, n_jobs=jobs, backend=backend, tune=tune, resilience=policy
        )
    else:
        # Settle any journaled row mutations before reading the engine's
        # matrix: a caller who mutated and then passed ``engine.values``
        # gets a clean mismatch error instead of stale-shape corruption.
        engine.compact()
        if engine.values.shape != matrix.shape or not np.array_equal(
            engine.values, matrix
        ):
            raise ValidationError("engine was built over a different matrix")

    if corner_cache is not None and not use_cache:
        raise ValidationError("corner_cache requires use_cache=True")

    result = MDRCResult(indices=[])
    selected: set[int] = set()
    corners_per_cell = 1 << (d - 1)
    store = _CornerStore(packed_width(n), k)
    tree_valid = corner_cache is not None
    recorded: list[CellLevel] = []
    if corner_cache is not None:
        corner_cache.ensure(n, k, d, (max_depth, max_cells, choice))
        registry = corner_cache.registry
        if corner_cache.count:
            # Seed the working store from the memo: packed bitsets are
            # rebuilt at this matrix's width, orders are served verbatim.
            # Only the always-valid first k columns matter here — the
            # reserve tail is view-repair state.
            cached_orders = np.ascontiguousarray(
                corner_cache.orders[:, :k], dtype=np.int64
            )
            store.append(pack_membership(cached_orders, n), cached_orders)
    else:
        registry = {}
    # Corner patterns in itertools.product(*cell) order: axis 0 is the
    # most significant bit, low endpoint first.
    patterns = np.array(
        list(itertools.product((False, True), repeat=d - 1)), dtype=bool
    )
    # The frontier is a pair of (E, d-1) bound arrays; every frontier
    # cell sits at the same level (breadth-first by construction).
    los = np.zeros((1, d - 1), dtype=np.float64)
    his = np.full((1, d - 1), _HALF_PI, dtype=np.float64)
    level = 0

    try:
        while los.shape[0]:
            num_cells = los.shape[0]
            result.max_depth_reached = max(result.max_depth_reached, level)

            # ---- Phase A: build every corner of the frontier in one
            # broadcast, then batch-evaluate the registry misses.
            corner_rows = np.where(patterns[None, :, :], his[:, None, :], los[:, None, :])
            corner_rows = np.ascontiguousarray(
                corner_rows.reshape(num_cells * corners_per_cell, d - 1)
            )
            if use_cache:
                # Vectorized within-level dedup first (sibling cells share
                # faces), then a byte-keyed registry lookup per *unique*
                # corner for the cross-level memo (the angle floats are exact
                # box midpoints, so byte equality is exact corner equality).
                void_keys = corner_rows.view(
                    np.dtype((np.void, corner_rows.dtype.itemsize * (d - 1)))
                ).ravel()
                uniq_keys, first_rows, inverse = np.unique(
                    void_keys, return_index=True, return_inverse=True
                )
                uniq_ids = np.empty(len(uniq_keys), dtype=np.intp)
                next_id = store.count
                pending: list[int] = []
                # One bytes buffer sliced per key beats a np.void.tobytes()
                # call per corner, and setdefault folds lookup + insert into
                # a single dict operation.
                buffer = uniq_keys.tobytes()
                key_size = uniq_keys.dtype.itemsize
                for u in range(len(uniq_keys)):
                    gid = registry.setdefault(
                        buffer[u * key_size : (u + 1) * key_size], next_id
                    )
                    if gid == next_id:
                        next_id += 1
                        pending.append(u)
                    uniq_ids[u] = gid
                ids = uniq_ids[inverse]
                pending_rows = first_rows[pending]
            else:
                # Ablation mode mirrors the uncached recursion: every corner
                # visit is a fresh evaluation (duplicates included), but they
                # are still batched through one GEMM.
                pending_rows = np.arange(len(corner_rows))
                ids = store.count + pending_rows
            if pending_rows.size:
                weights = weights_from_angles_batch(corner_rows[pending_rows])
                if corner_cache is not None:
                    # Evaluate the wider repair buffer in the same pass;
                    # the recursion reads only the first k columns (the
                    # engine's exact total order makes any top-k a prefix
                    # of any longer top-k', so the result is unchanged).
                    full = engine.topk_orders(weights, corner_cache.k_eval)
                    top = np.ascontiguousarray(full[:, :k])
                    store.append(pack_membership(top, n), top)
                    corner_cache.append(full, corner_rows[pending_rows])
                else:
                    batch = engine.topk_batch(weights, k)
                    store.append(batch.members, batch.order)
                result.corner_evaluations += len(pending_rows)

            # ---- Phase B: intersect every cell's corner sets in one gather
            # + AND reduction over the packed buffers.
            id_matrix = ids.reshape(num_cells, corners_per_cell)
            common = np.bitwise_and.reduce(store.packed[id_matrix], axis=1)
            has_common = common.any(axis=1)
            resolved_count = int(has_common.sum())
            split_axis = level % (d - 1)

            fallback_mask = np.zeros(num_cells, dtype=bool)
            split_mask = np.zeros(num_cells, dtype=bool)
            # Worst-case leaves if every non-resolving cell splits: current
            # leaves + this level's resolutions + 2 children per
            # non-resolving cell.  This dominates the sequential pass's
            # projection at every position — there, the last non-resolved
            # cell sees at most ``cells + resolved + 2·(splits−1) + 2``
            # — so under this bound the sequential pass would allow every
            # one of those splits too and the vectorized fast path is
            # exactly equivalent.
            projected_worst = (
                result.cells + resolved_count + 2 * (num_cells - resolved_count)
            )
            level_item = np.full(num_cells, -1, dtype=np.int64)
            level_center = np.full(num_cells, -1, dtype=np.int64)
            if projected_worst <= max_cells:
                resolved = np.flatnonzero(has_common)
                if resolved.size:
                    items = _pick_batch(
                        common[resolved], id_matrix[resolved], store, choice
                    )
                    selected.update(int(i) for i in items)
                    level_item[resolved] = items
                    result.cells += resolved.size
                if level < max_depth:
                    split_mask = ~has_common
                else:
                    fallback_mask = ~has_common
                    count = int(fallback_mask.sum())
                    result.cells += count
                    result.capped_cells += count
            else:
                # Budget-risk path: sequential, with the projected leaf count
                # capped at max_cells so total work stays bounded.  Its
                # decisions depend on the traversal order, so no locally
                # repairable tree can be recorded from here on.
                tree_valid = False
                queued_children = 0
                for position in range(num_cells):
                    if result.cells < max_cells:
                        if has_common[position]:
                            selected.update(
                                int(i)
                                for i in _pick_batch(
                                    common[position : position + 1],
                                    id_matrix[position : position + 1],
                                    store,
                                    choice,
                                )
                            )
                            result.cells += 1
                            continue
                        projected = (
                            result.cells
                            + queued_children
                            + 2
                            + (num_cells - position - 1)
                        )
                        if level < max_depth and projected <= max_cells:
                            split_mask[position] = True
                            queued_children += 2
                            continue
                    fallback_mask[position] = True
                    result.cells += 1
                    result.capped_cells += 1

            # ---- Phase C: all fallback centers of this level in one batch.
            if fallback_mask.any():
                centers = (los[fallback_mask] + his[fallback_mask]) / 2.0
                top1 = engine.topk_batch(weights_from_angles_batch(centers), 1).order
                selected.update(int(i) for i in top1[:, 0])
                # A capped cell straddles an unresolved top-k boundary; its
                # center's top-1 covers only one side of it.  Each corner's
                # top-1 is already in the store (no extra scoring), and the
                # corners sample every side the cell touches — without them,
                # an item whose top-1 region is tiny (e.g. denormal-scale
                # coordinates pushing the boundary below the depth cap's
                # resolution) is silently dropped and the d·k guarantee can
                # break for functions inside that sliver.
                selected.update(
                    int(i) for i in store.orders[id_matrix[fallback_mask], 0].ravel()
                )
                level_center[fallback_mask] = top1[:, 0]

            if tree_valid:
                level_state = np.full(num_cells, CELL_SPLIT, dtype=np.int8)
                level_state[has_common] = CELL_RESOLVED
                level_state[fallback_mask] = CELL_FALLBACK
                children = np.full(num_cells, -1, dtype=np.int64)
                split_positions = np.flatnonzero(split_mask)
                children[split_positions] = 2 * np.arange(split_positions.size)
                recorded.append(
                    CellLevel(
                        los=los,
                        his=his,
                        corners=np.ascontiguousarray(id_matrix, dtype=np.intp),
                        state=level_state,
                        item=level_item,
                        center_item=level_center,
                        children=children,
                    )
                )

            # ---- Split the surviving cells along this level's axis, left
            # child before right child (matching the sequential order).
            if split_mask.any():
                parent_los = los[split_mask]
                parent_his = his[split_mask]
                mids = (parent_los[:, split_axis] + parent_his[:, split_axis]) / 2.0
                los = np.repeat(parent_los, 2, axis=0)
                his = np.repeat(parent_his, 2, axis=0)
                his[0::2, split_axis] = mids  # left child: [lo, mid]
                los[1::2, split_axis] = mids  # right child: [mid, hi]
            else:
                los = np.empty((0, d - 1))
                his = np.empty((0, d - 1))
            level += 1

            if not use_cache:
                registry.clear()
                store = _CornerStore(packed_width(n), k)

    finally:
        if own_engine:
            engine.close()  # release the fan-out pool, if one was spun up
    if corner_cache is not None:
        corner_cache.levels = recorded if tree_valid else None
    result.indices = sorted(selected)
    return result


def _pick_batch(
    common: np.ndarray,
    id_matrix: np.ndarray,
    store: _CornerStore,
    choice: str,
) -> np.ndarray:
    """Each resolved cell's representative item, as an int64 array.

    ``common`` holds one packed intersection bitmap per resolved cell.
    The ``"first"`` policy (the default and the paper's ``I[1]``) is one
    vectorized unpack + argmax; ``"best-rank"`` scans candidate positions
    in the stored corner orders per cell.
    """
    if choice == "first":
        bits = np.unpackbits(common, axis=1)
        return np.argmax(bits, axis=1).astype(np.int64)
    items = np.empty(common.shape[0], dtype=np.int64)
    n_bits = common.shape[1] * 8
    for row in range(common.shape[0]):
        members = np.flatnonzero(np.unpackbits(common[row], count=n_bits))
        orders = store.orders[id_matrix[row]]  # (corners, k)
        best_item = -1
        best_worst = None
        for item in members:
            worst = 0
            for ordered in orders:
                position = int(np.flatnonzero(ordered == item)[0])
                worst = max(worst, position)
            if best_worst is None or worst < best_worst:
                best_worst = worst
                best_item = int(item)
        items[row] = best_item
    return items
