"""MDRC: function-space partitioning (Algorithm 5, §5.3).

MDRC covers the *continuous* function space instead of the discrete k-set
space.  The space of positive linear functions in R^d is the box
``[0, π/2]^{d−1}`` of ray angles.  The algorithm recursively halves the box
(round-robin over the d−1 angular dimensions, a quadtree-like scheme): at
each cell it computes the top-k of every corner function and, if the
corner top-k sets share an item, assigns that item to the whole cell and
stops — otherwise it splits.

Theorem 6: an item in the top-k of every corner has rank at most ``d·k``
for *every* function inside the cell, so the union of assigned items has
rank-regret at most ``d·k``.  In the paper's experiments the measured
rank-regret was ≤ k throughout, and output sizes stayed below 40.

Implementation notes beyond the pseudocode:

* corner top-k computations are memoized — sibling cells share corners, so
  caching roughly halves the work per level;
* the common item assigned to a cell is chosen deterministically; two
  policies are exposed for the ablation bench (``first`` = paper's
  ``I[1]``, ``best-rank`` = smallest worst-case corner rank);
* recursion is bounded twice, because cells that straddle a boundary
  between top-k regions can refuse to intersect forever when k is very
  small relative to n: a per-cell depth cap (``max_depth``) and a global
  leaf budget (``max_cells``).  A cell resolved by either fallback
  contributes its center function's top-1, preserving coverage at a rank
  cost that vanishes with cell size; :attr:`MDRCResult.capped_cells`
  reports how often this happened (0 in ordinary runs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.ranking.functions import weights_from_angles
from repro.ranking.topk import top_k

__all__ = ["MDRCResult", "mdrc"]

_HALF_PI = float(np.pi / 2)

Cell = tuple[tuple[float, float], ...]


@dataclass
class MDRCResult:
    """Output of :func:`mdrc`.

    Attributes
    ----------
    indices:
        The representative (sorted row indices).
    cells:
        Number of leaf cells (assigned an item, or resolved by a fallback).
    max_depth_reached:
        Deepest recursion level that occurred.
    capped_cells:
        Number of cells resolved by the depth-cap / cell-budget fallback
        (0 in ordinary runs; > 0 signals a pathological instance such as
        k = 1 with many incomparable maxima).
    corner_evaluations:
        Distinct corner functions whose top-k was computed (cache misses).
    """

    indices: list[int]
    cells: int = 0
    max_depth_reached: int = 0
    capped_cells: int = 0
    corner_evaluations: int = 0


@dataclass
class _State:
    """Shared mutable state of one MDRC run."""

    matrix: np.ndarray
    k: int
    choice: str
    use_cache: bool
    selected: set[int] = field(default_factory=set)
    evaluations: int = 0
    _cache: dict[tuple[float, ...], tuple[frozenset[int], np.ndarray]] = field(
        default_factory=dict
    )

    def corner_top_k(self, angles: tuple[float, ...]) -> tuple[frozenset[int], np.ndarray]:
        """Top-k member set and ordered index array of a corner function."""
        if self.use_cache and angles in self._cache:
            return self._cache[angles]
        weights = weights_from_angles(np.asarray(angles))
        ordered = top_k(self.matrix, weights, self.k)
        entry = (frozenset(int(i) for i in ordered), ordered)
        if self.use_cache:
            self._cache[angles] = entry
        self.evaluations += 1
        return entry

    def center_top1(self, cell: Cell) -> int:
        """Fallback representative: the top-1 of the cell's center function."""
        center = tuple((lo + hi) / 2.0 for lo, hi in cell)
        weights = weights_from_angles(np.asarray(center))
        return int(top_k(self.matrix, weights, 1)[0])


def mdrc(
    values: np.ndarray,
    k: int,
    max_depth: int = 48,
    max_cells: int = 10_000,
    choice: str = "first",
    use_cache: bool = True,
) -> MDRCResult:
    """MDRC (Algorithm 5): recursive function-space partitioning.

    Parameters
    ----------
    values:
        ``(n, d)`` normalized matrix with d ≥ 2.
    k:
        Rank-regret target; the output guarantees rank-regret ≤ d·k
        (Theorem 6) and empirically ≤ k.
    max_depth:
        Per-cell recursion cap.
    max_cells:
        Global leaf-cell budget; once exceeded, every remaining queued
        cell resolves via the center-top-1 fallback.
    choice:
        How to pick from a non-empty corner intersection: ``"first"``
        (lowest row index — the paper's ``I[1]``) or ``"best-rank"``
        (the item with the smallest worst-case rank over the corners).
    use_cache:
        Memoize corner top-k computations (ablation toggle).
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    n, d = matrix.shape
    if d < 2:
        raise ValidationError("mdrc needs d >= 2 (one angle dimension or more)")
    k = int(k)
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, {n}], got {k}")
    if max_depth < 1:
        raise ValidationError("max_depth must be >= 1")
    if max_cells < 1:
        raise ValidationError("max_cells must be >= 1")
    if choice not in ("first", "best-rank"):
        raise ValidationError(f"unknown choice policy {choice!r}")

    state = _State(matrix, k, choice, use_cache)
    result = MDRCResult(indices=[])
    root: Cell = tuple((0.0, _HALF_PI) for _ in range(d - 1))
    # Depth-first stack keeps sibling corners hot in the memo cache.
    stack: list[tuple[Cell, int]] = [(root, 0)]
    while stack:
        cell, level = stack.pop()
        result.max_depth_reached = max(result.max_depth_reached, level)
        budget_exhausted = result.cells >= max_cells
        if not budget_exhausted:
            corners = list(itertools.product(*cell))
            corner_data = [state.corner_top_k(corner) for corner in corners]
            common = frozenset.intersection(*(members for members, _ in corner_data))
            if common:
                state.selected.add(_pick(common, corner_data, state.choice))
                result.cells += 1
                continue
            if level < max_depth:
                axis = level % len(cell)
                lo, hi = cell[axis]
                mid = (lo + hi) / 2.0
                left = cell[:axis] + ((lo, mid),) + cell[axis + 1:]
                right = cell[:axis] + ((mid, hi),) + cell[axis + 1:]
                stack.append((right, level + 1))
                stack.append((left, level + 1))
                continue
        # Fallback: depth cap reached or global budget exhausted.
        state.selected.add(state.center_top1(cell))
        result.cells += 1
        result.capped_cells += 1
    result.indices = sorted(state.selected)
    result.corner_evaluations = state.evaluations
    return result


def _pick(
    common: frozenset[int],
    corner_data: list[tuple[frozenset[int], np.ndarray]],
    choice: str,
) -> int:
    """Select the representative item for a resolved cell."""
    if choice == "first":
        return min(common)
    # "best-rank": minimize the worst 0-based position across corners.
    best_item = -1
    best_worst = None
    for item in sorted(common):
        worst = 0
        for _, ordered in corner_data:
            position = int(np.flatnonzero(ordered == item)[0])
            worst = max(worst, position)
        if best_worst is None or worst < best_worst:
            best_worst = worst
            best_item = item
    return best_item
