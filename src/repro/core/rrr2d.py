"""2DRRR: the two-dimensional rank-regret representative (§4).

Two phases, exactly as in the paper:

1. **FindRanges (Algorithm 1).**  An angular sweep finds, for every item,
   the *first* angle ``b[t]`` and *last* angle ``e[t]`` at which the item
   is in the top-k.  The convex closure ``[b[t], e[t]]`` of the item's
   (possibly fragmented) top-k region is a single interval in which — by
   Theorem 1 — the item's rank never exceeds ``2k``.

2. **Interval covering (Algorithm 2).**  Covering the function space
   ``[0, π/2]`` with the fewest such intervals yields a set that is (a) no
   larger than the optimal k-RRR, because each interval is a superset of
   the item's true top-k region (Theorem 3), and (b) guaranteed rank-regret
   at most ``2k`` (Theorem 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.geometry.sweep import AngularSweep
from repro.setcover.intervals import cover_segment, cover_segment_max_coverage

__all__ = ["TopKRanges", "find_ranges", "two_d_rrr"]

_HALF_PI = float(np.pi / 2)


@dataclass(frozen=True)
class TopKRanges:
    """Per-item first/last top-k angles produced by Algorithm 1.

    Attributes
    ----------
    begin, end:
        Arrays of length n.  ``begin[i]`` is the first sweep angle at which
        item ``i`` enters the top-k and ``end[i]`` the last angle at which
        it leaves; both are NaN for items never in the top-k.  Items in the
        top-k at θ = 0 have ``begin = 0``; items still in the top-k at the
        end of the sweep have ``end = π/2`` (lines 8 and 25 of Algorithm 1).
    k:
        The k the sweep tracked.
    """

    begin: np.ndarray
    end: np.ndarray
    k: int

    def interval(self, index: int) -> tuple[float, float] | None:
        """The closed angle interval of ``index``, or None if never top-k."""
        b = float(self.begin[index])
        if np.isnan(b):
            return None
        return (b, float(self.end[index]))

    def covered_items(self) -> np.ndarray:
        """Indices of items that enter the top-k somewhere in the sweep."""
        return np.flatnonzero(~np.isnan(self.begin))


def find_ranges(values: np.ndarray, k: int) -> TopKRanges:
    """Algorithm 1: per-item first and last top-k angles via angular sweep.

    Exchanges strictly inside the top-k or strictly below it do not change
    membership; only exchanges across the k-border (positions k−1/k in
    0-based terms) open or close an item's range.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != 2:
        raise ValidationError("find_ranges expects an (n, 2) matrix")
    n = matrix.shape[0]
    k = int(k)
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, {n}], got {k}")
    begin = np.full(n, np.nan)
    end = np.full(n, np.nan)
    sweep = AngularSweep(matrix)
    for item in sweep.order[:k]:
        begin[item] = 0.0
    for event in sweep.events():
        if event.position != k - 1:
            continue
        entering = event.lower
        leaving = event.upper
        if np.isnan(begin[entering]):
            begin[entering] = event.theta
        end[leaving] = event.theta
    for item in sweep.order[:k]:
        end[item] = _HALF_PI
    return TopKRanges(begin=begin, end=end, k=k)


def two_d_rrr(
    values: np.ndarray,
    k: int,
    strategy: str = "sweep",
) -> list[int]:
    """2DRRR (Algorithm 2): approximate k-RRR for 2-D data.

    Parameters
    ----------
    values:
        ``(n, 2)`` matrix, normalized so higher is better on both axes.
    k:
        Requested rank-regret level.
    strategy:
        ``"sweep"`` (default) uses the optimal left-to-right covering
        greedy; ``"max-coverage"`` runs the paper's Algorithm 2 greedy
        (pick the interval covering the most uncovered space).

    Returns
    -------
    Item indices whose top-k ranges cover the whole function space.  The
    output is never larger than the optimal k-RRR (Theorem 3) and its
    rank-regret is at most 2k (Theorem 4) — in practice usually ≤ k (§6.2).
    """
    ranges = find_ranges(values, k)
    items = ranges.covered_items()
    intervals = [(float(ranges.begin[i]), float(ranges.end[i])) for i in items]
    if strategy == "sweep":
        chosen = cover_segment(intervals, 0.0, _HALF_PI)
    elif strategy == "max-coverage":
        chosen = cover_segment_max_coverage(intervals, 0.0, _HALF_PI)
    else:
        raise ValidationError(f"unknown strategy {strategy!r}")
    return sorted(int(items[c]) for c in chosen)
