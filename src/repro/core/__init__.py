"""Core RRR algorithms: 2DRRR, MDRRR, MDRC, and the unified API."""

from repro.core.api import RRRResult, rank_regret_representative, resolve_k
from repro.core.dual_problem import SizeBudgetResult, min_rank_regret_of_size
from repro.core.exact import exact_rrr_2d, exact_rrr_via_ksets
from repro.core.generic import WorkloadRRRResult, workload_rrr
from repro.core.mdrc import CornerCache, MDRCResult, mdrc
from repro.core.mdrrr import MDRRRResult, collect_ksets, md_rrr
from repro.core.rrr2d import TopKRanges, find_ranges, two_d_rrr

__all__ = [
    "rank_regret_representative",
    "RRRResult",
    "resolve_k",
    "min_rank_regret_of_size",
    "SizeBudgetResult",
    "find_ranges",
    "TopKRanges",
    "two_d_rrr",
    "md_rrr",
    "MDRRRResult",
    "collect_ksets",
    "mdrc",
    "MDRCResult",
    "CornerCache",
    "exact_rrr_2d",
    "exact_rrr_via_ksets",
    "workload_rrr",
    "WorkloadRRRResult",
]
