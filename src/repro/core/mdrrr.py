"""MDRRR: the hitting-set based multi-dimensional algorithm (§5.2).

By Lemma 5 the k-sets are exactly the possible top-k results, so a set of
tuples hitting every k-set has rank-regret at most k — and any set missing
a k-set entirely has rank-regret above k.  MDRRR therefore:

1. collects the k-sets — exactly (2-D sweep or the BFS of Algorithm 6) or
   via the randomized K-SETr sampler (Algorithm 4), which is what the
   paper's experiments run;
2. solves minimum hitting set over them — with the deterministic greedy
   (log-approximate) or the Brönnimann–Goodrich ε-net algorithm that
   Algorithm 3 describes verbatim.

Guarantees: rank-regret ≤ k over every function whose k-set was collected,
and an O(d log dc) output-size factor (§5.2 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._compat import renamed_kwargs
from repro.exceptions import ValidationError
from repro.geometry.ksets import enumerate_ksets_2d, enumerate_ksets_bfs, sample_ksets
from repro.setcover.epsnet import epsnet_hitting_set
from repro.setcover.hitting_set import greedy_hitting_set

__all__ = ["MDRRRResult", "md_rrr", "collect_ksets"]


@dataclass
class MDRRRResult:
    """Output of :func:`md_rrr`.

    Attributes
    ----------
    indices:
        The representative (sorted row indices).
    ksets:
        The k-set collection the hitting set was solved over.
    enumerator:
        Which k-set collection strategy produced them.
    sample_draws:
        Random functions drawn when the enumerator was ``"sample"`` (0 otherwise).
    """

    indices: list[int]
    ksets: list[frozenset[int]] = field(repr=False, default_factory=list)
    enumerator: str = "sample"
    sample_draws: int = 0


@renamed_kwargs(n_jobs="jobs")
def collect_ksets(
    values: np.ndarray,
    k: int,
    enumerator: str = "auto",
    patience: int = 100,
    rng: int | np.random.Generator | None = None,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
    policy=None,
    engine=None,
    kset_state=None,
) -> tuple[list[frozenset[int]], str, int]:
    """Collect the k-sets of ``values`` with the requested strategy.

    ``"auto"`` uses the exact 2-D sweep when d = 2 and K-SETr otherwise —
    mirroring §6.1 ("for 2D we implemented the ray-sweeping algorithm …
    instead, we apply the randomized algorithm K-SETr").  ``"exact"``
    forces exact enumeration (sweep in 2-D, LP-validated BFS otherwise);
    ``"sample"`` forces K-SETr.

    ``engine``/``kset_state`` pass straight through to
    :func:`~repro.geometry.ksets.sample_ksets` (the maintained-view
    replay path; only meaningful for the sampled enumerator).

    Returns (ksets, enumerator-used, random-draws).
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    d = matrix.shape[1]
    if enumerator == "auto":
        enumerator = "exact" if d == 2 else "sample"
    if enumerator == "exact":
        if d == 2:
            return enumerate_ksets_2d(matrix, k), "exact-2d-sweep", 0
        return enumerate_ksets_bfs(matrix, k), "exact-bfs", 0
    if enumerator == "sample":
        outcome = sample_ksets(
            matrix, k, patience=patience, rng=rng, jobs=jobs, backend=backend,
            tune=tune, policy=policy, engine=engine, state=kset_state,
        )
        return outcome.ksets, "sample", outcome.draws
    raise ValidationError(f"unknown enumerator {enumerator!r}")


@renamed_kwargs(n_jobs="jobs")
def md_rrr(
    values: np.ndarray,
    k: int,
    enumerator: str = "auto",
    hitting: str = "greedy",
    patience: int = 100,
    rng: int | np.random.Generator | None = None,
    ksets: Sequence[frozenset[int]] | None = None,
    verify_functions: int = 0,
    max_repair_rounds: int = 10,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
    policy=None,
    engine=None,
    kset_state=None,
) -> MDRRRResult:
    """MDRRR (Algorithm 3): hitting set over the k-set collection.

    Parameters
    ----------
    values:
        ``(n, d)`` normalized matrix.
    k:
        Rank-regret level to guarantee.
    enumerator:
        k-set collection strategy: ``"auto"`` | ``"exact"`` | ``"sample"``
        (see :func:`collect_ksets`).  Ignored when ``ksets`` is given.
    hitting:
        ``"greedy"`` (deterministic, default) or ``"epsnet"`` — the
        Brönnimann–Goodrich iterative reweighting of Algorithm 3.
    patience:
        K-SETr termination patience ``c`` (paper default 100).
    rng:
        Seed or generator for K-SETr and the ε-net sampler.
    ksets:
        Pre-collected k-sets; pass these to reuse an enumeration across
        several hitting-set runs.
    verify_functions:
        When > 0, run a verification pass after the hitting set: draw this
        many fresh random functions and, for every one whose top-k the
        output misses, add that function's k-set to the collection and
        re-solve (repeat up to ``max_repair_rounds``).  K-SETr can miss
        k-sets whose angular region is tiny — the paper notes this is
        "very unlikely" (§5.2.1), but tie-dense data makes it likelier;
        verification restores the observed always-≤-k behaviour of §6.2.
    max_repair_rounds:
        Cap on verification/repair iterations.
    jobs:
        Workers for K-SETr's batched scoring (``None``/``1`` = serial,
        ``-1`` = all cores); draws are bit-identical either way.
        (``n_jobs`` is the deprecated spelling.)
    backend:
        Execution backend for that scoring (``"auto"`` | ``"serial"`` |
        ``"thread"`` | ``"process"``), as in
        :class:`~repro.engine.ScoreEngine`.
    engine / kset_state:
        Passed through to :func:`~repro.geometry.ksets.sample_ksets`
        when the sampled enumerator runs — the maintained-view replay
        path (:class:`repro.engine.views.MDRRRView`); bit-identical to a
        fresh run by the draw-state replay contract.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    k = int(k)
    if not 1 <= k <= matrix.shape[0]:
        raise ValidationError(f"k must be in [1, {matrix.shape[0]}], got {k}")
    draws = 0
    if ksets is None:
        collection, used, draws = collect_ksets(
            matrix, k, enumerator=enumerator, patience=patience, rng=rng,
            jobs=jobs, backend=backend, tune=tune, policy=policy,
            engine=engine, kset_state=kset_state,
        )
    else:
        collection, used = list(ksets), "provided"
    if hitting not in ("greedy", "epsnet"):
        raise ValidationError(f"unknown hitting strategy {hitting!r}")

    def solve(family: list[frozenset[int]]) -> list[int]:
        if hitting == "greedy":
            return greedy_hitting_set(family)
        return epsnet_hitting_set(family, vc_dimension=matrix.shape[1], rng=rng)

    chosen = solve(collection)
    if verify_functions > 0:
        from repro.ranking.sampling import sample_functions
        from repro.ranking.topk import top_k_set

        collection = list(collection)
        # One fixed verification panel: every repair round re-checks the
        # same functions, so re-solving cannot silently reintroduce a
        # violation caught earlier.
        weights = sample_functions(matrix.shape[1], verify_functions, rng)
        score_matrix = matrix @ weights.T
        known: set[frozenset[int]] = set(collection)
        for _ in range(max_repair_rounds):
            member_best = score_matrix[sorted(chosen)].max(axis=0)
            violated = np.flatnonzero(
                (score_matrix > member_best[None, :]).sum(axis=0) >= k
            )
            if violated.size == 0:
                break
            for column in violated:
                kset = top_k_set(matrix, weights[column], k)
                if kset not in known:
                    known.add(kset)
                    collection.append(kset)
            chosen = solve(collection)
    return MDRRRResult(
        indices=sorted(int(i) for i in chosen),
        ksets=collection,
        enumerator=used,
        sample_draws=draws,
    )
