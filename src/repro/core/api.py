"""Unified front door for computing rank-regret representatives.

:func:`rank_regret_representative` dispatches to the right algorithm for
the instance and wraps the output with its theoretical guarantee, so
downstream users do not need to know the per-algorithm APIs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._compat import renamed_kwargs
from repro.core.mdrc import mdrc
from repro.core.mdrrr import md_rrr
from repro.core.rrr2d import two_d_rrr
from repro.datasets.base import Dataset
from repro.exceptions import ValidationError

__all__ = ["RRRResult", "rank_regret_representative", "resolve_k"]


@dataclass(frozen=True)
class RRRResult:
    """A computed rank-regret representative.

    Attributes
    ----------
    indices:
        Sorted row indices of the representative.
    method:
        Algorithm that produced it (``"2drrr"`` | ``"mdrrr"`` | ``"mdrc"``).
    k:
        The requested rank-regret level.
    guarantee:
        The proven upper bound on the rank-regret of this output:
        ``2k`` for 2DRRR (Theorem 4), ``k`` for MDRRR over the collected
        k-sets (§5.2), ``d·k`` for MDRC (Theorem 6).
    """

    indices: tuple[int, ...]
    method: str
    k: int
    guarantee: int

    @property
    def size(self) -> int:
        """Number of representative tuples."""
        return len(self.indices)


def resolve_k(k: int | float, n: int) -> int:
    """Interpret ``k``: an int is absolute; a float in (0, 1) is a fraction.

    The paper quotes k as "top-1%" style percentages throughout §6; this
    helper makes that convention available everywhere.  Fractional values
    round to at least 1.
    """
    if isinstance(k, float) and not k.is_integer():
        if not 0.0 < k < 1.0:
            raise ValidationError(
                f"fractional k must be in (0, 1), got {k}"
            )
        return max(1, int(round(k * n)))
    k = int(k)
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in [1, n]={n}, got {k}")
    return k


def _extract(data: Dataset | np.ndarray) -> np.ndarray:
    if isinstance(data, Dataset):
        if not data.is_normalized:
            data = data.normalized()
        return data.values
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("data must be a Dataset or an (n, d) matrix")
    return matrix


@renamed_kwargs(n_jobs="jobs")
def rank_regret_representative(
    data: Dataset | np.ndarray,
    k: int | float,
    method: str = "auto",
    rng: int | np.random.Generator | None = None,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
    policy=None,
    **options: object,
) -> RRRResult:
    """Compute a k-RRR of ``data`` (the paper's headline operation).

    Parameters
    ----------
    data:
        A :class:`~repro.datasets.Dataset` (normalized automatically when
        needed) or a raw ``(n, d)`` matrix assumed normalized.
    k:
        Rank-regret level — absolute (int) or a fraction of n (float in
        (0,1)), e.g. ``0.01`` for the paper's default "top-1%".
    method:
        ``"auto"`` (2DRRR in 2-D, MDRC otherwise — the paper's practical
        recommendation, §8), or explicitly ``"2drrr"``, ``"mdrrr"``,
        ``"mdrc"``.
    rng:
        Seed/generator for the randomized pieces (MDRRR's K-SETr).
    jobs:
        Workers for the engine-backed scoring inside MDRC and MDRRR
        (``None``/``1`` = serial, ``-1`` = all cores).  Results are
        bit-identical to the serial path; 2DRRR's sweep is inherently
        sequential and ignores it.  (``n_jobs`` is the deprecated
        spelling.)
    backend:
        Execution backend for that scoring (``"auto"`` | ``"serial"`` |
        ``"thread"`` | ``"process"``), as in
        :class:`~repro.engine.ScoreEngine`.
    tune:
        Engine runtime tuning (``None`` | ``"auto"`` | a
        :class:`~repro.engine.TuningProfile`, e.g. loaded from the CLI's
        ``--tuning-profile`` JSON).  Bit-identical results either way.
    policy:
        Failure handling for the engine-backed scoring (a
        :class:`~repro.engine.RetryPolicy`, or ``None`` for the
        process-wide default policy).
    options:
        Forwarded to the chosen algorithm (e.g. ``enumerator=`` and
        ``hitting=`` for MDRRR, ``max_depth=`` / ``choice=`` for MDRC,
        ``strategy=`` for 2DRRR).
    """
    matrix = _extract(data)
    n, d = matrix.shape
    level = resolve_k(k, n)
    if method == "auto":
        method = "2drrr" if d == 2 else "mdrc"
    if method == "2drrr":
        if d != 2:
            raise ValidationError("2drrr requires 2-dimensional data")
        indices = two_d_rrr(matrix, level, **options)
        return RRRResult(tuple(indices), "2drrr", level, guarantee=2 * level)
    if method == "mdrrr":
        outcome = md_rrr(
            matrix, level, rng=rng, jobs=jobs, backend=backend, tune=tune,
            policy=policy, **options,
        )
        return RRRResult(tuple(outcome.indices), "mdrrr", level, guarantee=level)
    if method == "mdrc":
        if d < 2:
            raise ValidationError("mdrc requires d >= 2")
        outcome = mdrc(
            matrix, level, jobs=jobs, backend=backend, tune=tune, policy=policy,
            **options,
        )
        return RRRResult(tuple(outcome.indices), "mdrc", level, guarantee=d * level)
    raise ValidationError(f"unknown method {method!r}")
