"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``represent``
    Compute a rank-regret representative of a CSV dataset (or a built-in
    synthetic one) and print the selected tuples plus measured quality.
``experiment``
    Run one of the paper's experiments (fig09_10 … fig27_28) at bench or
    paper scale and print the reproduction table.
``ksets``
    Count the k-sets of a dataset with K-SETr (or exactly in 2-D).
``serve``
    Host a dataset behind the asyncio serving front-end
    (:mod:`repro.serve`): coalesced top-k/rank/representative queries,
    journaled mutations, typed overload responses.

Examples
--------
::

    python -m repro represent --dataset dot --n 2000 --d 3 --k 0.01
    python -m repro represent --csv flights.csv --k 25 --method mdrrr
    python -m repro represent --dataset dot --n 20000 --k 10 --maintain 5
    python -m repro experiment fig17_18 --scale bench
    python -m repro ksets --dataset bn --n 500 --d 3 --k 0.05
    python -m repro ksets --dataset dot --n 5000 --k 10 --maintain 3
    python -m repro serve --dataset dot --n 20000 --d 4 --port 8472 --jobs -1

``--maintain TICKS`` (on ``represent`` and ``ksets``) serves the result
through the materialized-view layer (:mod:`repro.engine.views`) under
``--churn`` row turnover per tick, verifying every revision bit-identical
to a from-scratch recompute and reporting the measured speedup.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.api import rank_regret_representative
from repro.datasets.io import load_csv
from repro.evaluation.metrics import evaluate_representative
from repro.exceptions import CorruptStateError, ReproError
from repro.experiments.config import BENCH_EXPERIMENTS, PAPER_EXPERIMENTS, KSetCountConfig
from repro.experiments.report import (
    format_experiment_table,
    format_kset_table,
    summarize_shapes,
)
from repro.experiments.runner import make_dataset, run_experiment, run_kset_count
from repro.geometry.ksets import enumerate_ksets_2d, sample_ksets

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RRR: Rank-Regret Representative (SIGMOD 2019) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    # Shared by every subcommand: the engine's process fan-out knob.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="workers for engine-backed scoring "
        "(default: serial; -1 = all cores); results are bit-identical",
    )
    common.add_argument(
        "--backend", choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="execution backend for the fan-out: auto picks "
        "serial/thread/process from problem size and measured per-call "
        "work (default: auto)",
    )
    common.add_argument(
        "--tuning-profile", default=None, metavar="PATH",
        help="JSON engine tuning profile (repro.engine.autotune): loaded "
        "when the file exists, otherwise derived by a one-off calibration "
        "probe on this command's dataset and written there, so services "
        "skip the probe on restart; results are bit-identical either way "
        "(a torn or checksum-failing file is recalibrated, not fatal)",
    )
    common.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-work-unit deadline for parallel execution: a worker "
        "that exceeds it is reaped and its unit retried, possibly on a "
        "degraded backend (repro.engine.resilience; default: no deadline)",
    )
    common.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="failed attempts per work unit and backend before the engine "
        "degrades process -> thread -> serial (default: 2); results stay "
        "bit-identical on every rung",
    )

    rep = sub.add_parser(
        "represent", help="compute a rank-regret representative", parents=[common]
    )
    source = rep.add_mutually_exclusive_group()
    source.add_argument("--csv", help="path to a CSV dataset (see datasets.io)")
    source.add_argument(
        "--dataset", choices=("dot", "bn"), default="dot",
        help="built-in synthetic dataset (default: dot)",
    )
    rep.add_argument("--n", type=int, default=2000, help="synthetic rows")
    rep.add_argument("--d", type=int, default=3, help="synthetic attributes")
    rep.add_argument(
        "--k", type=float, default=0.01,
        help="rank-regret level: int = absolute, float in (0,1) = fraction",
    )
    rep.add_argument(
        "--method", choices=("auto", "2drrr", "mdrrr", "mdrc"), default="auto"
    )
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument(
        "--eval-functions", type=int, default=10_000,
        help="Monte-Carlo functions for quality measurement",
    )
    rep.add_argument(
        "--maintain", type=int, default=0, metavar="TICKS",
        help="serve the representative under churn for TICKS revisions "
        "via the materialized-view layer (repro.engine.views), verifying "
        "each revision bit-identical to a from-scratch recompute and "
        "reporting the maintain-vs-recompute speedup",
    )
    rep.add_argument(
        "--churn", type=float, default=0.01, metavar="FRAC",
        help="fraction of rows deleted + inserted per --maintain tick "
        "(default: 0.01)",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment", parents=[common])
    exp.add_argument("figure", choices=sorted(PAPER_EXPERIMENTS))
    exp.add_argument("--scale", choices=("bench", "paper"), default="bench")

    rall = sub.add_parser(
        "reproduce", help="run every experiment and write EXPERIMENTS.md",
        parents=[common],
    )
    rall.add_argument("--scale", choices=("bench", "paper"), default="bench")
    rall.add_argument("--out", default=None, help="write the report here")

    ks = sub.add_parser(
        "ksets", help="count k-sets (K-SETr / exact 2-D)", parents=[common]
    )
    ks.add_argument("--dataset", choices=("dot", "bn"), default="dot")
    ks.add_argument("--n", type=int, default=500)
    ks.add_argument("--d", type=int, default=3)
    ks.add_argument("--k", type=float, default=0.01)
    ks.add_argument("--patience", type=int, default=100)
    ks.add_argument("--seed", type=int, default=0)
    ks.add_argument(
        "--maintain", type=int, default=0, metavar="TICKS",
        help="maintain the k-set collection under churn for TICKS "
        "revisions via KSetView, verifying each revision against a "
        "fresh K-SETr run",
    )
    ks.add_argument(
        "--churn", type=float, default=0.01, metavar="FRAC",
        help="fraction of rows deleted + inserted per --maintain tick "
        "(default: 0.01)",
    )

    srv = sub.add_parser(
        "serve", help="host a dataset over asyncio HTTP (repro.serve)",
        parents=[common],
    )
    srv_source = srv.add_mutually_exclusive_group()
    srv_source.add_argument("--csv", help="path to a CSV dataset (see datasets.io)")
    srv_source.add_argument(
        "--dataset", choices=("dot", "bn"), default="dot",
        help="built-in synthetic dataset (default: dot)",
    )
    srv.add_argument("--n", type=int, default=20_000, help="synthetic rows")
    srv.add_argument("--d", type=int, default=4, help="synthetic attributes")
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8472, help="0 = ephemeral")
    srv.add_argument(
        "--max-pending", type=int, default=256, metavar="N",
        help="admission bound: queued requests before the server answers "
        "429 (default: 256)",
    )
    srv.add_argument(
        "--max-batch", type=int, default=1024, metavar="N",
        help="coalescing cap: queries stacked into one engine call "
        "(default: 1024)",
    )
    srv.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durable serving state: write-ahead log + snapshots under "
        "DIR; restart (even after kill -9) recovers bit-identical state "
        "(default: memory-only)",
    )
    srv.add_argument(
        "--snapshot-wal-bytes", type=int, default=4 * 2**20, metavar="BYTES",
        help="cut a snapshot (and truncate the WAL) once the log grows "
        "past BYTES (default: 4 MiB)",
    )
    srv.add_argument(
        "--snapshot-interval", type=float, default=None, metavar="SECONDS",
        help="also snapshot when the oldest unsnapshotted mutation is "
        "older than SECONDS (default: size policy only)",
    )
    srv.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="row-sharded fleet: N supervised worker shards with "
        "per-shard durability and bit-identical merged results "
        "(default: one engine)",
    )
    srv.add_argument(
        "--shard-isolation", choices=("process", "local"), default="process",
        help="shard worker isolation: crash-isolated child processes "
        "(default) or in-process shards",
    )
    return parser


def _resolve_level(k: float, n: int) -> int | float:
    return k if 0 < k < 1 else int(k)


def _resolve_tuning(path: str | None, values=None, n_jobs: int | None = None):
    """Load (or derive and persist) the CLI's engine tuning profile.

    An existing file is loaded as-is.  A missing file triggers one
    calibration probe — on ``values`` when the command has a concrete
    dataset, else on a bench-scale synthetic stand-in, with the
    command's ``--jobs`` setting so the derived cutover/escalation
    values match the engines the run will actually build — and the
    derived profile is written to ``path`` so the next invocation skips
    the probe.  Returns a value for the ``tune=`` plumbing (``None``
    when no profile was requested).
    """
    if path is None:
        return None
    import os

    from repro.engine import ScoreEngine, TuningProfile

    if os.path.exists(path):
        try:
            return TuningProfile.load(path)
        except CorruptStateError as exc:
            # Torn write or checksum mismatch: the profile is only a
            # performance hint, so recalibrate and rewrite it (atomic
            # save) rather than failing the whole command.
            print(
                f"warning: tuning profile {path!r} failed its integrity "
                f"check ({exc}); recalibrating",
                file=sys.stderr,
            )
        except (ValueError, OSError) as exc:
            raise ReproError(f"could not load tuning profile {path!r}: {exc}") from exc
    if values is None:
        from repro.experiments.runner import make_dataset

        values = make_dataset("dot", 20_000, 4, seed=0).values
    with ScoreEngine(values, n_jobs=n_jobs) as probe_engine:
        profile = probe_engine.calibrate()
    profile.save(path)
    print(f"calibrated tuning profile written to {path}", file=sys.stderr)
    return profile


def _cmd_represent(args: argparse.Namespace, out) -> int:
    if args.csv:
        data = load_csv(args.csv).normalized()
    else:
        data = make_dataset(args.dataset, args.n, args.d, seed=args.seed)
    tune = _resolve_tuning(args.tuning_profile, data.values, n_jobs=args.jobs)
    if args.maintain > 0:
        return _maintain_represent(args, data, tune, out)
    result = rank_regret_representative(
        data, _resolve_level(args.k, data.n), method=args.method, rng=args.seed,
        jobs=args.jobs, backend=args.backend, tune=tune,
    )
    report = evaluate_representative(
        data.values, result.indices, result.k,
        num_functions=args.eval_functions, rng=args.seed, jobs=args.jobs,
        backend=args.backend, tune=tune,
    )
    print(f"dataset      : {data.name} (n={data.n}, d={data.d})", file=out)
    print(f"method       : {result.method}", file=out)
    print(f"k            : {result.k}", file=out)
    print(f"guarantee    : rank-regret <= {result.guarantee}", file=out)
    print(f"output size  : {result.size}", file=out)
    print(f"measured     : rank-regret={report.rank_regret} "
          f"({'exact' if report.exact else 'sampled'}), "
          f"regret-ratio={report.regret_ratio:.4f}", file=out)
    print(f"meets k      : {'yes' if report.meets_k else 'no'}", file=out)
    print(f"indices      : {list(result.indices)}", file=out)
    return 0


def _cmd_experiment(args: argparse.Namespace, out) -> int:
    configs = BENCH_EXPERIMENTS if args.scale == "bench" else PAPER_EXPERIMENTS
    config = configs[args.figure]
    tune = _resolve_tuning(args.tuning_profile, n_jobs=args.jobs)
    if isinstance(config, KSetCountConfig):
        rows = run_kset_count(
            config, progress=lambda m: print(m, file=sys.stderr),
            jobs=args.jobs, backend=args.backend, tune=tune,
        )
        print(format_kset_table(rows), file=out)
    else:
        rows = run_experiment(
            config, progress=lambda m: print(m, file=sys.stderr),
            jobs=args.jobs, backend=args.backend, tune=tune,
        )
        print(format_experiment_table(rows), file=out)
        shapes = summarize_shapes(rows)
        print("", file=out)
        for claim, holds in shapes.items():
            print(f"shape check {claim}: {'PASS' if holds else 'FAIL'}", file=out)
    return 0


def _maintain_represent(args: argparse.Namespace, data, tune, out) -> int:
    """``represent --maintain``: serve maintained representatives per tick."""
    from repro.core.api import resolve_k
    from repro.experiments.runner import run_maintenance

    method = args.method
    if method == "auto":
        method = "mdrc"
    if method not in ("mdrc", "mdrrr"):
        raise ReproError(
            f"--maintain supports methods mdrc/mdrrr, not {method!r} "
            "(2drrr has no maintained view)"
        )
    k = resolve_k(_resolve_level(args.k, data.n), data.n)
    rows = run_maintenance(
        data.values, k, ticks=args.maintain, churn=args.churn, seed=args.seed,
        algorithm=method, num_functions=args.eval_functions,
        jobs=args.jobs, backend=args.backend, tune=tune,
        progress=lambda m: print(m, file=sys.stderr),
    )
    print(
        f"maintained {method} over {data.name} (n={data.n}, d={data.d}, "
        f"k={k}, churn={args.churn:.2%}/tick)", file=out,
    )
    print(
        f"{'tick':>4} {'n':>8} {'±rows':>6} {'maintained':>11} "
        f"{'recompute':>10} {'size':>5} {'regret':>6} {'identical':>9}",
        file=out,
    )
    for row in rows:
        print(
            f"{row.tick:>4} {row.n:>8} {row.deletes:>6} "
            f"{row.maintained_sec:>10.3f}s {row.recompute_sec:>9.3f}s "
            f"{row.output_size:>5} {row.rank_regret:>6} "
            f"{'yes' if row.identical else 'NO':>9}",
            file=out,
        )
    maintained = sum(row.maintained_sec for row in rows)
    recompute = sum(row.recompute_sec for row in rows)
    if maintained > 0:
        print(
            f"speedup      : {recompute / maintained:.1f}x "
            f"({recompute:.3f}s recompute vs {maintained:.3f}s maintained)",
            file=out,
        )
    return 0


def _cmd_ksets(args: argparse.Namespace, out) -> int:
    data = make_dataset(args.dataset, args.n, args.d, seed=args.seed)
    k = max(1, round(args.k * data.n)) if 0 < args.k < 1 else int(args.k)
    if args.maintain > 0:
        return _maintain_ksets(args, data, k, out)
    if data.d == 2:
        ksets = enumerate_ksets_2d(data.values, k)
        print(f"exact 2-D enumeration: {len(ksets)} k-sets (k={k})", file=out)
    else:
        outcome = sample_ksets(
            data.values, k, patience=args.patience, rng=args.seed,
            jobs=args.jobs, backend=args.backend,
            tune=_resolve_tuning(args.tuning_profile, data.values, n_jobs=args.jobs),
        )
        print(
            f"K-SETr: {len(outcome.ksets)} k-sets (k={k}) in "
            f"{outcome.draws} draws"
            f"{' [exhausted]' if outcome.exhausted else ''}",
            file=out,
        )
    return 0


def _maintain_ksets(args: argparse.Namespace, data, k: int, out) -> int:
    """``ksets --maintain``: keep the k-set collection live under churn."""
    import time

    import numpy as np

    from repro.engine import KSetView, ScoreEngine

    if data.d == 2:
        raise ReproError("--maintain uses K-SETr; 2-D exact enumeration has no view")
    tune = _resolve_tuning(args.tuning_profile, data.values, n_jobs=args.jobs)
    rng = np.random.default_rng(args.seed)
    with ScoreEngine(
        data.values, n_jobs=args.jobs, backend=args.backend, tune=tune
    ) as engine:
        with KSetView(engine, k, patience=args.patience, rng=args.seed) as view:
            base = view.refresh()
            print(
                f"K-SETr: {len(base.ksets)} k-sets (k={k}) in {base.draws} draws",
                file=out,
            )
            maintained = recomputed = 0.0
            for tick in range(args.maintain):
                m = max(1, int(round(engine.n * args.churn)))
                engine.delete_rows(rng.choice(engine.n, size=m, replace=False))
                engine.insert_rows(rng.random((m, engine.d)))
                start = time.perf_counter()
                outcome = view.refresh()
                maintained += time.perf_counter() - start
                start = time.perf_counter()
                fresh = sample_ksets(
                    engine.values, k, patience=args.patience, rng=args.seed
                )
                recomputed += time.perf_counter() - start
                if outcome.ksets != fresh.ksets or outcome.draws != fresh.draws:
                    raise ReproError(
                        f"maintained k-sets diverged from recompute at tick {tick}"
                    )
                print(
                    f"tick {tick}: ±{m} rows, {len(outcome.ksets)} k-sets in "
                    f"{outcome.draws} draws (verified identical)",
                    file=out,
                )
            if maintained > 0:
                print(
                    f"speedup: {recomputed / maintained:.1f}x "
                    f"({recomputed:.3f}s recompute vs {maintained:.3f}s maintained)",
                    file=out,
                )
    return 0


def _apply_resilience_flags(args: argparse.Namespace) -> None:
    """Install ``--timeout`` / ``--max-retries`` as the default policy.

    The algorithms build engines internally (mdrc corner batches, K-SETr
    samplers, the Monte-Carlo evaluator), so the knobs go through
    :func:`repro.engine.resilience.set_default_policy` rather than being
    threaded through every constructor signature.
    """
    timeout = getattr(args, "timeout", None)
    max_retries = getattr(args, "max_retries", None)
    if timeout is None and max_retries is None:
        return
    from dataclasses import replace

    from repro.engine.resilience import get_default_policy, set_default_policy

    policy = get_default_policy()
    if timeout is not None:
        policy = replace(policy, timeout_s=timeout)
    if max_retries is not None:
        policy = replace(policy, max_retries=max_retries)
    set_default_policy(policy)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServerConfig, serve

    if args.csv:
        data = load_csv(args.csv).normalized()
    else:
        data = make_dataset(args.dataset, args.n, args.d, seed=args.seed)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        backend=args.backend,
        tuning_profile=args.tuning_profile,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        data_dir=args.data_dir,
        snapshot_wal_bytes=args.snapshot_wal_bytes,
        snapshot_interval_s=args.snapshot_interval,
        shards=args.shards,
        shard_isolation=args.shard_isolation,
    )
    serve(data.values, config)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _apply_resilience_flags(args)
        if args.command == "represent":
            return _cmd_represent(args, out)
        if args.command == "experiment":
            return _cmd_experiment(args, out)
        if args.command == "ksets":
            return _cmd_ksets(args, out)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "reproduce":
            from repro.experiments.reproduce import reproduce_all

            report = reproduce_all(
                scale=args.scale,
                progress=lambda m: print(m, file=sys.stderr),
                jobs=args.jobs,
                backend=args.backend,
                tune=_resolve_tuning(args.tuning_profile, n_jobs=args.jobs),
            )
            if args.out:
                with open(args.out, "w") as handle:
                    handle.write(report)
                print(f"wrote {args.out}", file=out)
            else:
                print(report, file=out)
            return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1  # pragma: no cover - unreachable with required subparsers


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
