"""Halfspace separability via linear programming.

Appendix B of the paper validates candidate k-sets with an LP (Eq. 4):
``S`` is a k-set iff some hyperplane ``h(ρ, v)`` with non-negative normal
``v`` has exactly the points of ``S`` strictly above it.  Equivalently —
and this is the form we solve — there is a weight vector ``v ≥ 0`` whose
score separates ``S`` from the rest with a positive margin.

We solve the *maximum-margin* variant so that feasibility is decided by
the sign of the optimum rather than by an arbitrary hard-coded epsilon:

    maximize    δ
    subject to  v·t ≥ s          for every t ∈ S
                v·t ≤ s − δ      for every t ∉ S
                Σ v_i = 1,  v ≥ 0,  δ ≤ 1

``S`` is strictly separable iff the optimal δ is positive.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import GeometryError, ValidationError

__all__ = [
    "separating_function",
    "is_separable",
    "is_k_set",
    "best_for_some_function",
]

_MARGIN_TOL = 1e-9


def separating_function(
    values: np.ndarray, subset: Iterable[int]
) -> np.ndarray | None:
    """Weight vector putting ``subset`` strictly above the rest, or None.

    Returns a non-negative vector ``v`` with ``Σ v_i = 1`` such that
    ``min_{t∈S} v·t > max_{t∉S} v·t``, when one exists.  This is the LP of
    Eq. 4 in max-margin form (see module docstring).
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    n, d = matrix.shape
    inside = sorted({int(i) for i in subset})
    if any(i < 0 or i >= n for i in inside):
        raise ValidationError("subset indices out of range")
    if not inside or len(inside) == n:
        # The empty set (0-set) and the full set are trivially separable.
        return np.full(d, 1.0 / d)
    inside_mask = np.zeros(n, dtype=bool)
    inside_mask[inside] = True
    points_in = matrix[inside_mask]
    points_out = matrix[~inside_mask]

    # Variables: v (d entries), s (threshold), delta (margin).
    num_vars = d + 2
    cost = np.zeros(num_vars)
    cost[-1] = -1.0  # maximize delta

    # Inequalities in A_ub @ x <= b_ub form.
    # For t in S:   s - v.t            <= 0
    # For t not S:  v.t - s + delta    <= 0
    rows_in = np.hstack(
        [-points_in, np.ones((points_in.shape[0], 1)), np.zeros((points_in.shape[0], 1))]
    )
    rows_out = np.hstack(
        [points_out, -np.ones((points_out.shape[0], 1)), np.ones((points_out.shape[0], 1))]
    )
    a_ub = np.vstack([rows_in, rows_out])
    b_ub = np.zeros(a_ub.shape[0])

    a_eq = np.zeros((1, num_vars))
    a_eq[0, :d] = 1.0
    b_eq = np.array([1.0])

    bounds = [(0.0, None)] * d + [(None, None), (None, 1.0)]
    result = linprog(
        cost, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise GeometryError(f"separability LP failed: {result.message}")
    delta = -result.fun
    if delta <= _MARGIN_TOL:
        return None
    return np.asarray(result.x[:d], dtype=np.float64)


def is_separable(values: np.ndarray, subset: Iterable[int]) -> bool:
    """True when some non-negative linear function strictly separates ``subset``."""
    return separating_function(values, subset) is not None


def is_k_set(values: np.ndarray, subset: Iterable[int], k: int) -> bool:
    """True when ``subset`` is a k-set of ``values`` (|subset| = k and separable)."""
    members = {int(i) for i in subset}
    if len(members) != int(k):
        return False
    return is_separable(values, members)


def best_for_some_function(values: np.ndarray, index: int) -> bool:
    """True when tuple ``index`` is the unique top-1 of some function in L.

    Convenience wrapper: asks whether ``{index}`` is a 1-set.
    """
    return is_separable(values, [index])
