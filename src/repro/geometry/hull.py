"""Convex hulls and the order-1 maxima representation.

The paper motivates RRR by the size of the *maxima representation*: the
convex hull is the smallest subset guaranteed to contain the top-1 of every
linear function (§1–2), and it can approach the full dataset.  This module
provides:

* :func:`convex_hull_2d` — Andrew's monotone chain, implemented from
  scratch (no dependency) for 2-D;
* :func:`convex_hull` — general-dimension hull vertices via Qhull
  (scipy.spatial), falling back to the 2-D chain;
* :func:`maxima_representation` — the subset of hull vertices that are
  top-1 for at least one *non-negative-weight* linear function, i.e. the
  exact order-1 RRR for the paper's function class ``L``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GeometryError, ValidationError
from repro.geometry.halfspace import best_for_some_function

__all__ = ["convex_hull_2d", "convex_hull", "maxima_representation"]


def _as_points(values: np.ndarray, d: int | None = None) -> np.ndarray:
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("expected an (n, d) matrix of points")
    if d is not None and matrix.shape[1] != d:
        raise ValidationError(f"expected {d}-dimensional points, got {matrix.shape[1]}")
    if not np.all(np.isfinite(matrix)):
        raise ValidationError("points must be finite")
    return matrix


def _cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    return float((a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]))


def convex_hull_2d(values: np.ndarray) -> np.ndarray:
    """Indices of the 2-D convex hull vertices, counter-clockwise.

    Andrew's monotone chain in O(n log n); collinear interior points are
    excluded.  Degenerate inputs (all points collinear) return the two
    extreme points, or the single distinct point.
    """
    points = _as_points(values, d=2)
    order = np.lexsort((points[:, 1], points[:, 0]))
    # Deduplicate identical points, keeping the smallest row index
    # (consistent with the library-wide tie-breaker).
    unique: list[int] = []
    seen: set[tuple[float, float]] = set()
    for idx in order:
        key = (points[idx, 0], points[idx, 1])
        if key not in seen:
            seen.add(key)
            unique.append(int(idx))
    if len(unique) == 1:
        return np.asarray(unique, dtype=np.intp)
    if len(unique) == 2:
        return np.asarray(unique, dtype=np.intp)

    def half(indices: list[int]) -> list[int]:
        chain: list[int] = []
        for idx in indices:
            while (
                len(chain) >= 2
                and _cross(points[chain[-2]], points[chain[-1]], points[idx]) <= 0
            ):
                chain.pop()
            chain.append(idx)
        return chain

    lower = half(unique)
    upper = half(unique[::-1])
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 2:  # fully collinear input
        hull = [unique[0], unique[-1]]
    return np.asarray(hull, dtype=np.intp)


def convex_hull(values: np.ndarray) -> np.ndarray:
    """Indices of convex hull vertices in any dimension (sorted ascending).

    Uses Qhull via scipy for d ≥ 3 (with joggle on degenerate input) and
    the scratch-built monotone chain for d = 2 / trivial handling for d = 1.
    """
    points = _as_points(values)
    n, d = points.shape
    if d == 1:
        return np.unique([int(np.argmin(points[:, 0])), int(np.argmax(points[:, 0]))])
    if d == 2:
        return np.sort(convex_hull_2d(points))
    if n <= d:
        return np.arange(n)
    try:
        from scipy.spatial import ConvexHull  # deferred: optional heavy import

        try:
            hull = ConvexHull(points)
        except Exception:
            hull = ConvexHull(points, qhull_options="QJ")
        return np.sort(np.asarray(hull.vertices, dtype=np.intp))
    except ImportError as exc:  # pragma: no cover - scipy is a dependency
        raise GeometryError("scipy is required for hulls with d >= 3") from exc


def maxima_representation(values: np.ndarray) -> np.ndarray:
    """Indices of tuples that are top-1 for some non-negative linear function.

    This is the exact order-1 rank-regret representative for the paper's
    class ``L`` (§2, "maxima representation").  Computed by filtering the
    convex hull vertices with a per-vertex LP feasibility check
    (:func:`repro.geometry.halfspace.best_for_some_function`).
    """
    points = _as_points(values)
    candidates = convex_hull(points)
    keep = [
        int(idx) for idx in candidates if best_for_some_function(points, int(idx))
    ]
    return np.asarray(sorted(keep), dtype=np.intp)
