"""The 2-D angular sweep over the dual arrangement (backbone of Algorithm 1).

A ray anchored at the origin sweeps from the x-axis (θ = 0) to the y-axis
(θ = π/2).  At each angle, the score of tuple ``t`` is
``t_x·cosθ + t_y·sinθ`` and the ranking is the score-descending order.  As
θ grows the ranking changes only by *adjacent transpositions*, each at the
crossing angle of the two tuples' dual lines (§3, Figure 3).

:class:`AngularSweep` maintains the ranking as a kinetic sorted list with an
event heap, yielding every ordering exchange as a :class:`SweepEvent`.  The
consumers built on top of it:

* :func:`repro.core.rrr2d.find_ranges` — per-item first/last top-k angle;
* :func:`repro.geometry.ksets.enumerate_ksets_2d` — exact 2-D k-sets;
* :func:`repro.geometry.arrangement.k_border_segments` — the top-k border;
* :func:`repro.evaluation.regret.rank_regret_exact_2d` — exact rank-regret.

Ties are handled by the library-wide deterministic tie-breaker (smaller row
index wins), and exchanges at identical angles are processed with lazy
event validation, so the sweep is exact even on degenerate inputs.

The event loop runs O(n²) times in the worst case, so the inner crossing
computation deliberately uses plain Python floats and :func:`math.atan2`
instead of numpy scalars — per-event numpy overhead dominates otherwise.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["SweepEvent", "AngularSweep", "initial_order_2d"]

_HALF_PI = math.pi / 2


@dataclass(frozen=True)
class SweepEvent:
    """One ordering exchange between two adjacent tuples.

    Attributes
    ----------
    theta:
        Angle of the exchange, in ``(0, π/2)``.
    upper:
        Row index of the tuple ranked better *before* the exchange.
    lower:
        Row index of the tuple ranked better *after* the exchange.
    position:
        0-based rank position of ``upper`` before the exchange; after it,
        ``lower`` occupies ``position`` and ``upper`` is at ``position + 1``.
    """

    theta: float
    upper: int
    lower: int
    position: int


def initial_order_2d(values: np.ndarray) -> np.ndarray:
    """Ranking of the tuples for θ → 0⁺ (best first).

    For an infinitesimally positive angle the score is ``x + θ·y``, so the
    order is x-descending with y-descending as secondary key and row index
    as the final deterministic tie-breaker.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != 2:
        raise ValidationError("initial_order_2d expects an (n, 2) matrix")
    n = matrix.shape[0]
    return np.lexsort((np.arange(n), -matrix[:, 1], -matrix[:, 0]))


class AngularSweep:
    """Kinetic sorted list sweeping θ from 0 to π/2 over a 2-D dataset.

    Parameters
    ----------
    values:
        ``(n, 2)`` matrix of (normalized) tuples.

    Usage
    -----
    Iterate :meth:`events` and inspect :attr:`order` / :attr:`position`
    between events; both are kept consistent with the most recent event
    yielded.  ``order[p]`` is the row index at rank ``p`` (0-based) and
    ``position[i]`` is the rank position of row ``i``.
    """

    def __init__(self, values: np.ndarray) -> None:
        matrix = np.asarray(values, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != 2:
            raise ValidationError("AngularSweep expects an (n, 2) matrix")
        if not np.all(np.isfinite(matrix)):
            raise ValidationError("sweep input must be finite")
        self.values = matrix
        self.n = matrix.shape[0]
        self.order = initial_order_2d(matrix)
        self.position = np.empty(self.n, dtype=np.intp)
        self.position[self.order] = np.arange(self.n)
        self.theta = 0.0
        # Hot-path copies: plain Python floats/lists are several times
        # faster than per-event numpy scalar access in the event loop.
        self._xs: list[float] = matrix[:, 0].tolist()
        self._ys: list[float] = matrix[:, 1].tolist()
        self._order: list[int] = [int(i) for i in self.order]
        self._position: list[int] = [int(p) for p in self.position]
        self._heap: list[tuple[float, int, int]] = []
        self._pushed: set[int] = set()
        for p in range(self.n - 1):
            self._push_candidate(self._order[p], self._order[p + 1])
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    def _push_candidate(self, upper: int, lower: int) -> None:
        """Queue the exchange of adjacent pair (upper above lower), if any.

        Only exchanges where ``lower`` genuinely overtakes ``upper`` at an
        angle not yet swept are queued; each ordered pair crosses at most
        once in (0, π/2), so a pushed-pairs set suffices to avoid
        duplicates.  The score gap is ``dx·cosθ − dy·sinθ``, so a
        *future* sign flip needs ``dx > 0`` (upper ahead near θ = 0) AND
        ``dy > 0`` (lower growing faster) — both-negative is the same
        crossing angle seen from the far side, i.e. a crossing already
        behind the sweep.  Queueing those used to corrupt the order when
        several pairs crossed at one identical (degenerate) angle: the
        ``theta < self.theta`` staleness guard passes at exactly-equal θ,
        the backwards event un-does a just-performed exchange, and the
        pushed-pairs dedup then suppresses the legitimate re-queue, so
        the sweep silently lost every later exchange.
        """
        dx = self._xs[upper] - self._xs[lower]
        dy = self._ys[lower] - self._ys[upper]
        if dx > 0.0 and dy > 0.0:
            theta = math.atan2(abs(dx), abs(dy))
            if theta <= 0.0 or theta >= _HALF_PI or theta < self.theta:
                return
            key = upper * self.n + lower
            if key in self._pushed:
                return
            self._pushed.add(key)
            heapq.heappush(self._heap, (theta, upper, lower))

    def events(self) -> Iterator[SweepEvent]:
        """Yield every ordering exchange in non-decreasing angle order."""
        heap = self._heap
        order = self._order
        position = self._position
        pub_order = self.order
        pub_position = self.position
        n = self.n
        while heap:
            theta, upper, lower = heapq.heappop(heap)
            pu = position[upper]
            if pu + 1 >= n or order[pu + 1] != lower:
                continue  # stale event: the pair is no longer adjacent
            # Perform the adjacent transposition.
            self.theta = theta
            order[pu], order[pu + 1] = lower, upper
            position[upper] = pu + 1
            position[lower] = pu
            pub_order[pu], pub_order[pu + 1] = lower, upper
            pub_position[upper] = pu + 1
            pub_position[lower] = pu
            # New adjacencies may create future exchanges.
            if pu > 0:
                self._push_candidate(order[pu - 1], lower)
            if pu + 2 < n:
                self._push_candidate(upper, order[pu + 2])
            yield SweepEvent(theta=theta, upper=upper, lower=lower, position=pu)

    def run(self) -> list[SweepEvent]:
        """Exhaust the sweep and return all events as a list."""
        return list(self.events())
