"""k-set enumeration: exact 2-D sweep, randomized K-SETr, and graph BFS.

A *k-set* is a set of exactly k points strictly separable from the rest by
a hyperplane with non-negative normal (§5.1).  Lemma 5: the collection of
k-sets equals the collection of all possible top-k results over the linear
function class ``L`` — which is why hitting the k-sets solves RRR.

Three enumerators, mirroring the paper:

* :func:`enumerate_ksets_2d` — exact, follows the k-border with the
  angular sweep (the "ray sweeping algorithm similar to Algorithm 1", §6.2);
* :func:`sample_ksets` — K-SETr (Algorithm 4): coupon-collector sampling of
  random functions until no new k-set shows up for ``patience`` draws;
* :func:`enumerate_ksets_bfs` — Algorithm 6: BFS over the k-set graph with
  LP validity checks (exact but only practical for small n, as the paper
  notes in §5.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro._compat import renamed_kwargs
from repro.engine import ScoreEngine
from repro.exceptions import InvalidDataError, ValidationError
from repro.geometry.halfspace import is_separable
from repro.geometry.sweep import AngularSweep
from repro.ranking.sampling import FunctionStream
from repro.ranking.topk import top_k_set

__all__ = [
    "enumerate_ksets_2d",
    "sample_ksets",
    "KSetDrawState",
    "KSetSampleResult",
    "enumerate_ksets_bfs",
    "kset_graph_edges",
]


def _validate(values: np.ndarray, k: int, d: int | None = None) -> tuple[np.ndarray, int]:
    try:
        matrix = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise InvalidDataError(
            f"values are not numeric (cannot convert to float64): {exc}"
        ) from None
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    if not np.all(np.isfinite(matrix)):
        raise InvalidDataError(
            "values contain NaN or Inf entries; k-set boundaries against "
            "NaN scores are meaningless — clean or impute the data first"
        )
    if d is not None and matrix.shape[1] != d:
        raise ValidationError(f"expected d={d}, got {matrix.shape[1]}")
    k = int(k)
    if not 1 <= k <= matrix.shape[0]:
        raise ValidationError(f"k must be in [1, {matrix.shape[0]}], got {k}")
    return matrix, k


def enumerate_ksets_2d(values: np.ndarray, k: int) -> list[frozenset[int]]:
    """All k-sets of a 2-D dataset, exactly, in sweep (angle) order.

    Sweeps θ from 0 to π/2 tracking the top-k prefix; the top-k changes
    exactly when an exchange crosses the k-border (positions k−1/k), and by
    Lemma 5 each distinct top-k along the way is a k-set — and every k-set
    of the positive-weight function class appears.
    """
    matrix, k = _validate(values, k, d=2)
    sweep = AngularSweep(matrix)
    collected: list[frozenset[int]] = []
    seen: set[frozenset[int]] = set()
    current = frozenset(int(i) for i in sweep.order[:k])
    collected.append(current)
    seen.add(current)
    for event in sweep.events():
        if event.position == k - 1:
            current = frozenset(int(i) for i in sweep.order[:k])
            if current not in seen:
                seen.add(current)
                collected.append(current)
    return collected


@dataclass
class KSetSampleResult:
    """Outcome of K-SETr (Algorithm 4).

    Attributes
    ----------
    ksets:
        The distinct k-sets discovered, in discovery order.
    functions:
        For each discovered k-set, one witness weight vector that produced it.
    draws:
        Total number of random functions drawn.
    exhausted:
        True when the sampler stopped because ``max_draws`` was hit rather
        than by the patience rule (the collection may then be less complete).
    """

    ksets: list[frozenset[int]]
    functions: list[np.ndarray] = field(default_factory=list)
    draws: int = 0
    exhausted: bool = False


class KSetDrawState:
    """The repairable intermediate state of a K-SETr run.

    K-SETr's expensive work is per-batch: draw ``batch_size`` functions,
    resolve their top-k orders with one engine call.  This class caches
    exactly that — the ``(weights, orders)`` pair of every batch drawn so
    far plus the :class:`~repro.ranking.sampling.FunctionStream` position —
    so a maintained view can *replay* the sampler after a data mutation
    instead of redrawing.

    The contract that makes replay bit-identical to a fresh run:

    * weights are a pure function of ``(d, seed, draw index)`` — data
      mutations never consume or skip RNG draws, so cached weights are
      verbatim what a fresh run would draw;
    * after a mutation, the view marks the draws whose cached top-k may
      have changed (``mark_stale``); :meth:`resolve` lazily re-evaluates
      only those rows via :meth:`~repro.engine.ScoreEngine.topk_orders`,
      which is per-column independent, so repaired rows equal what a
      fresh batch evaluation would produce for the same weights;
    * when replay runs past the cache, fresh draws extend the stream from
      the saved generator position with the same batch-size sequence a
      fresh run would use (``min(batch_size, max_draws - draws)``).
    """

    __slots__ = ("k", "max_draws", "batch_size", "stream", "weights", "orders", "stale", "repaired")

    def __init__(
        self,
        d: int,
        k: int,
        max_draws: int = 1_000_000,
        batch_size: int = 1024,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if max_draws < 1:
            raise ValidationError("max_draws must be >= 1")
        if batch_size < 1:
            raise ValidationError("batch_size must be >= 1")
        self.k = int(k)
        self.max_draws = int(max_draws)
        self.batch_size = int(batch_size)
        self.stream = FunctionStream(d, rng)
        self.weights: list[np.ndarray] = []
        self.orders: list[np.ndarray] = []
        self.stale: list[np.ndarray] = []
        self.repaired = 0

    def resolve(self, index: int, size: int, engine: ScoreEngine) -> tuple[np.ndarray, np.ndarray]:
        """Batch ``index`` of the stream: cached (repairing stale rows) or fresh."""
        if index < len(self.weights):
            weights = self.weights[index]
            if len(weights) != size:  # pragma: no cover - guarded by state reuse contract
                raise ValidationError(
                    f"replay batch {index} has {len(weights)} draws, expected {size}; "
                    "the state was built with different max_draws/batch_size"
                )
            stale = self.stale[index]
            if stale.any():
                rows = np.flatnonzero(stale)
                self.orders[index][rows] = engine.topk_orders(weights[rows], self.k)
                self.repaired += int(rows.size)
                stale[:] = False
            return weights, self.orders[index]
        weights = self.stream.draw(size)
        orders = engine.topk_orders(weights, self.k)
        self.weights.append(weights)
        self.orders.append(orders)
        self.stale.append(np.zeros(size, dtype=bool))
        return weights, orders

    def mark_stale(self, index: int, rows: np.ndarray) -> None:
        """Flag cached draws whose top-k must be re-resolved before reuse."""
        self.stale[index][rows] = True

    @property
    def cached_draws(self) -> int:
        return sum(len(weights) for weights in self.weights)


@renamed_kwargs(n_jobs="jobs")
def sample_ksets(
    values: np.ndarray,
    k: int,
    patience: int = 100,
    rng: int | np.random.Generator | None = None,
    max_draws: int = 1_000_000,
    batch_size: int = 1024,
    jobs: int | None = None,
    backend: str = "auto",
    tune=None,
    policy=None,
    engine: ScoreEngine | None = None,
    state: KSetDrawState | None = None,
) -> KSetSampleResult:
    """K-SETr (Algorithm 4): randomized k-set collection.

    Repeatedly draws uniform random linear functions (Marsaglia sampling),
    takes their top-k as a k-set, and stops after ``patience`` consecutive
    draws that discover nothing new — the coupon-collector termination rule
    with the paper's default ``c = 100`` (§6.1).

    Functions are drawn in batches; each batch is resolved by one call to
    :meth:`repro.engine.ScoreEngine.topk_batch` (one quantized-screened
    GEMM pass across all columns) and deduplicated on the packed-bitset
    byte content — one ``bytes`` slice per draw instead of building and
    hashing a Python ``frozenset`` per draw.  The patience rule is still
    applied draw-by-draw, so results are identical to the scalar loop for
    any given RNG stream; ``frozenset`` objects are only materialized for
    the rare *new* k-sets that enter the result.

    Functions are drawn ``batch_size`` at a time; the patience rule is
    applied draw-by-draw within each batch, so any batch size yields the
    identical k-set sequence and draw count — larger batches only
    amortize per-call engine overhead (and, at worst, score up to one
    surplus batch after the stopping draw).  ``jobs``/``backend`` fan
    each batch's top-k out over the engine's worker pool (``None``/``1``
    = serial; see :mod:`repro.engine.parallel`) — bit-identical draws
    either way.

    ``engine``/``state`` expose the repairable intermediate state for
    maintained views (:mod:`repro.engine.views`): pass an existing
    :class:`~repro.engine.ScoreEngine` built over ``values`` to reuse its
    tiers and worker pool, and a :class:`KSetDrawState` to replay/extend a
    previous run's draws instead of redrawing — the patience walk below
    is the same either way, so a replayed run is bit-identical to a
    fresh run over the same data.
    """
    matrix, k = _validate(values, k)
    if patience < 1:
        raise ValidationError("patience must be >= 1")
    if state is None:
        state = KSetDrawState(matrix.shape[1], k, max_draws=max_draws, batch_size=batch_size, rng=rng)
    elif state.k != k or state.stream.d != matrix.shape[1]:
        raise ValidationError(
            f"state was built for (d={state.stream.d}, k={state.k}), "
            f"got (d={matrix.shape[1]}, k={k})"
        )
    # float32 scoring: every contested draw (any tie or near-tie within
    # the float32 noise band) is re-resolved by the engine on the exact
    # float64 scalar path, so results stay identical to float64 scoring
    # while clean draws run at twice the GEMM/selection throughput.
    own_engine = engine is None
    if engine is None:
        engine = ScoreEngine(
            matrix, float32=True, n_jobs=jobs, backend=backend, tune=tune,
            resilience=policy,
        )
    else:
        engine.compact()
        if engine.values.shape != matrix.shape or not np.array_equal(engine.values, matrix):
            raise ValidationError("engine was built over a different matrix than `values`")
    try:
        result = KSetSampleResult(ksets=[])
        # Dedup on the sorted top-k index rows: sorting makes the byte
        # content canonical (a k-set IS its sorted member tuple), so one
        # batch-level sort + tobytes and a bytes slice per draw replace
        # any per-draw hashing structure — and the engine can skip
        # bitset packing entirely.
        seen: set[bytes] = set()
        misses = 0
        index = 0
        while result.draws < state.max_draws:
            batch = min(state.batch_size, state.max_draws - result.draws)
            weights, order = state.resolve(index, batch, engine)
            index += 1
            canonical = np.sort(order, axis=1)
            width = canonical.shape[1] * canonical.itemsize
            blob = canonical.tobytes()
            offset = 0
            for column in range(batch):
                key = blob[offset : offset + width]
                offset += width
                if key in seen:
                    misses += 1
                    if misses >= patience:
                        result.draws += column + 1
                        return result
                else:
                    seen.add(key)
                    result.ksets.append(frozenset(order[column].tolist()))
                    result.functions.append(weights[column])
                    misses = 0
            result.draws += batch
        result.exhausted = True
        return result
    finally:
        if own_engine:
            engine.close()


def enumerate_ksets_bfs(values: np.ndarray, k: int) -> list[frozenset[int]]:
    """Algorithm 6: exact k-set enumeration by BFS over the k-set graph.

    Starts from the top-k on the first attribute, then repeatedly swaps one
    member for one non-member and keeps the candidates validated as k-sets
    by the separability LP (Eq. 4).  Correct because the k-set graph is
    connected (Theorem 7).  Cost is O(|S| · k · (n−k)) LP solves — use only
    for small instances, exactly as the paper concludes (§5.2).
    """
    matrix, k = _validate(values, k)
    n = matrix.shape[0]
    start = top_k_set(matrix, _first_attribute_weights(matrix.shape[1]), k)
    discovered: set[frozenset[int]] = {start}
    ordered: list[frozenset[int]] = [start]
    queue: deque[frozenset[int]] = deque([start])
    while queue:
        current = queue.popleft()
        outside = [i for i in range(n) if i not in current]
        for member in sorted(current):
            base = current - {member}
            for candidate in outside:
                neighbor = base | {candidate}
                if neighbor in discovered:
                    continue
                if is_separable(matrix, neighbor):
                    discovered.add(neighbor)
                    ordered.append(neighbor)
                    queue.append(neighbor)
    return ordered


def _first_attribute_weights(d: int) -> np.ndarray:
    """A weight vector concentrating on attribute 1 (BFS seed of Alg. 6).

    Strictly speaking ``(1, 0, …, 0)`` sits on the boundary of ``L``; we
    keep it because the library's deterministic tie-breaker makes its top-k
    well-defined, matching line 1 of Algorithm 6.
    """
    weights = np.zeros(d)
    weights[0] = 1.0
    return weights


def kset_graph_edges(ksets: list[frozenset[int]]) -> list[tuple[int, int]]:
    """Edges of the k-set graph (Definition 4) over the given collection.

    Vertices are positions in ``ksets``; an edge joins two k-sets whose
    intersection has exactly k − 1 members.  Theorem 7 guarantees the graph
    over the *complete* collection is connected — a property the test suite
    checks via networkx.

    Computed in one shot from the 0/1 membership matrix ``M``: the Gram
    product ``M @ M.T`` holds every pairwise intersection size, so the
    edge test is a vectorized comparison instead of O(m²) Python-level
    frozenset intersections.
    """
    m = len(ksets)
    if m < 2:
        return []
    elements = sorted({e for kset in ksets for e in kset})
    column = {e: c for c, e in enumerate(elements)}
    membership = np.zeros((m, len(elements)), dtype=np.float64)
    for row, kset in enumerate(ksets):
        membership[row, [column[e] for e in kset]] = 1.0
    sizes = membership.sum(axis=1)
    # Intersection sizes are small integers, exact in float64 GEMM.  The
    # Gram product is blocked over row chunks so peak extra memory is
    # O(chunk · m) rather than one dense m × m matrix.
    edges: list[tuple[int, int]] = []
    chunk = max(1, (1 << 24) // (8 * m))
    for lo in range(0, m, chunk):
        hi = min(m, lo + chunk)
        overlap = membership[lo:hi] @ membership.T  # (hi-lo, m)
        i_idx, j_idx = np.nonzero(overlap == (sizes[lo:hi, None] - 1.0))
        i_idx = i_idx + lo
        keep = i_idx < j_idx
        edges.extend(
            (int(i), int(j)) for i, j in zip(i_idx[keep], j_idx[keep])
        )
    return edges
