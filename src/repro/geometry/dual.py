"""The dual transformation of §3.

Each tuple ``t ∈ R^d`` maps to the hyperplane ``d(t): Σ t[i]·x_i = 1``
(Eq. 2).  A linear function's ray stays put under the transform, and the
ordering of tuples along a ray is the ordering of the ray's intersections
with the dual hyperplanes — *closer to the origin ranks higher*.

These helpers make the correspondence executable; the sweep and k-set
modules, and several tests, rely on them.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GeometryError, ValidationError

__all__ = [
    "dual_hyperplane",
    "ray_intersection_distance",
    "order_along_ray",
    "crossing_angle_2d",
]


def dual_hyperplane(point: object) -> np.ndarray:
    """Coefficients of the dual hyperplane ``Σ t[i]·x_i = 1`` of ``point``.

    The coefficient vector *is* the point (Eq. 2); this function exists to
    make call sites self-documenting and to validate the input.
    """
    t = np.asarray(point, dtype=np.float64).reshape(-1)
    if t.size == 0 or not np.all(np.isfinite(t)):
        raise ValidationError("point must be a non-empty finite vector")
    return t


def ray_intersection_distance(point: object, weights: object) -> float:
    """Distance from the origin to where the ray of ``weights`` meets ``d(point)``.

    The ray is ``x = s·w`` for ``s ≥ 0``; it meets ``Σ t_i x_i = 1`` at
    ``s = 1 / (t·w)``.  Tuples with larger score ``t·w`` intersect closer to
    the origin, hence rank higher — the duality the paper builds on (§3).
    """
    t = dual_hyperplane(point)
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    if w.size != t.size:
        raise ValidationError("point and weights must have matching dimension")
    dot = float(t @ w)
    if dot <= 0:
        raise GeometryError(
            "the ray never crosses the dual hyperplane (non-positive score)"
        )
    return 1.0 / dot


def order_along_ray(values: np.ndarray, weights: object) -> np.ndarray:
    """Row indices ordered by dual-intersection distance (closest first).

    By duality this equals the score-descending ranking; exposed so tests
    can assert that equivalence directly.  Ties broken by row index.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("values must be an (n, d) matrix")
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    dots = matrix @ w
    if np.any(dots <= 0):
        raise GeometryError(
            "every tuple must have positive score for the dual ordering"
        )
    distances = 1.0 / dots
    return np.lexsort((np.arange(matrix.shape[0]), distances))


def crossing_angle_2d(a: object, b: object) -> float | None:
    """Angle θ ∈ [0, π/2] at which 2-D points ``a`` and ``b`` score equally.

    Scores tie when ``cosθ·(a_x − b_x) + sinθ·(a_y − b_y) = 0``, i.e.
    ``tanθ = (a_x − b_x) / (b_y − a_y)`` — the ordering-exchange angle of
    Algorithm 1.  Returns None when the points never exchange inside the
    open sweep interval (0, π/2): one (weakly) dominates the other, or
    they are identical.  An exchange exists exactly when one point is
    strictly better on x and the other strictly better on y.
    """
    pa = np.asarray(a, dtype=np.float64).reshape(-1)
    pb = np.asarray(b, dtype=np.float64).reshape(-1)
    if pa.size != 2 or pb.size != 2:
        raise ValidationError("crossing_angle_2d expects 2-D points")
    dx = pa[0] - pb[0]
    dy = pb[1] - pa[1]
    if (dx > 0 and dy > 0) or (dx < 0 and dy < 0):
        return float(np.arctan2(abs(dx), abs(dy)))
    return None
