"""Skyline (Pareto-optimal set) operators.

The skyline is the maxima representation for the class of all *monotonic*
ranking functions (§1–2): no tuple outside it can be top-1 for any
monotone preference.  The paper uses it as the motivating "too big"
representative; we implement the two classic algorithms so the examples
and benchmarks can contrast skyline size against RRR output size.

All operators assume higher-is-better on every attribute (normalize first).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["dominates", "skyline_bnl", "skyline_sfs", "skyline", "dominance_count"]


def _as_points(values: np.ndarray) -> np.ndarray:
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValidationError("expected an (n, d) matrix")
    return matrix


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True when ``a`` dominates ``b``: ≥ everywhere and > somewhere."""
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    if a.size != b.size:
        raise ValidationError("points must have the same dimension")
    return bool(np.all(a >= b) and np.any(a > b))


def skyline_bnl(values: np.ndarray) -> np.ndarray:
    """Skyline via Block-Nested-Loop (Borzsony et al.), returned sorted.

    Maintains a window of currently undominated tuples; each incoming tuple
    is compared against the window.  O(n²) worst case but fast when the
    skyline is small.  Duplicate points: the smallest row index is kept.
    """
    points = _as_points(values)
    window: list[int] = []
    for i in range(points.shape[0]):
        candidate = points[i]
        dominated = False
        survivors: list[int] = []
        for j in window:
            if dominated:
                survivors.append(j)
                continue
            other = points[j]
            if np.all(other >= candidate):
                # `other` dominates or duplicates `candidate`; earlier index wins.
                dominated = True
                survivors.append(j)
            elif np.all(candidate >= other) and np.any(candidate > other):
                continue  # candidate dominates `other`: drop it
            else:
                survivors.append(j)
        if not dominated:
            survivors.append(i)
        window = survivors
    return np.asarray(sorted(window), dtype=np.intp)


def skyline_sfs(values: np.ndarray) -> np.ndarray:
    """Skyline via Sort-Filter-Skyline, returned sorted.

    Pre-sorts by descending attribute sum so that a tuple can only be
    dominated by tuples seen earlier; each survivor needs one pass over the
    current skyline.  Same output as :func:`skyline_bnl`.
    """
    points = _as_points(values)
    n = points.shape[0]
    order = np.lexsort((np.arange(n), -points.sum(axis=1)))
    result: list[int] = []
    for idx in order:
        candidate = points[idx]
        dominated = False
        for j in result:
            other = points[j]
            if np.all(other >= candidate) and (
                np.any(other > candidate) or j < idx
            ):
                dominated = True
                break
        if not dominated:
            result.append(int(idx))
    return np.asarray(sorted(result), dtype=np.intp)


def skyline(values: np.ndarray) -> np.ndarray:
    """Default skyline operator (SFS)."""
    return skyline_sfs(values)


def dominance_count(values: np.ndarray) -> np.ndarray:
    """For each tuple, the number of tuples that dominate it.

    Useful diagnostic: tuples with count 0 form the skyline.
    """
    points = _as_points(values)
    n = points.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    for i in range(n):
        ge = np.all(points >= points[i], axis=1)
        gt = np.any(points > points[i], axis=1)
        counts[i] = int(np.count_nonzero(ge & gt))
    return counts
