"""Geometric substrate: dual space, sweeps, hulls, skylines, k-sets."""

from repro.geometry.arrangement import (
    BorderSegment,
    exact_topk_intervals,
    k_border_segments,
    rank_at_angle_profile,
    topk_region_measure,
)
from repro.geometry.dual import (
    crossing_angle_2d,
    dual_hyperplane,
    order_along_ray,
    ray_intersection_distance,
)
from repro.geometry.halfspace import (
    best_for_some_function,
    is_k_set,
    is_separable,
    separating_function,
)
from repro.geometry.hull import convex_hull, convex_hull_2d, maxima_representation
from repro.geometry.ksets import (
    KSetDrawState,
    KSetSampleResult,
    enumerate_ksets_2d,
    enumerate_ksets_bfs,
    kset_graph_edges,
    sample_ksets,
)
from repro.geometry.skyline import (
    dominance_count,
    dominates,
    skyline,
    skyline_bnl,
    skyline_sfs,
)
from repro.geometry.sweep import AngularSweep, SweepEvent, initial_order_2d

__all__ = [
    "BorderSegment",
    "k_border_segments",
    "exact_topk_intervals",
    "topk_region_measure",
    "rank_at_angle_profile",
    "dual_hyperplane",
    "ray_intersection_distance",
    "order_along_ray",
    "crossing_angle_2d",
    "AngularSweep",
    "SweepEvent",
    "initial_order_2d",
    "convex_hull",
    "convex_hull_2d",
    "maxima_representation",
    "separating_function",
    "is_separable",
    "is_k_set",
    "best_for_some_function",
    "skyline",
    "skyline_bnl",
    "skyline_sfs",
    "dominates",
    "dominance_count",
    "enumerate_ksets_2d",
    "sample_ksets",
    "KSetDrawState",
    "KSetSampleResult",
    "enumerate_ksets_bfs",
    "kset_graph_edges",
]
