"""The top-k border of the 2-D dual arrangement (§3, Figure 3).

The dual lines of the tuples dissect the plane into an *arrangement*; the
facets at level k form the **top-k border**: for any function (ray), the
lines crossing the ray on or below the border are exactly its top-k.  Two
facts from §3 drive this module's API:

* the border is piecewise — one tuple "owns" rank k on each angular
  segment — so it is fully described by a list of (θ-interval, tuple)
  pairs (:func:`k_border_segments`);
* a tuple's dual line can contribute *multiple* disjoint segments (the
  paper's d(t3) example), so a tuple's exact top-k region is a union of
  intervals (:func:`exact_topk_intervals`) — the thing Algorithm 1's
  convex closure deliberately over-approximates (Theorem 3's proof
  distinguishes exactly these two).

Everything is computed from one angular sweep, so it is exact, including
degenerate (tied / duplicated) inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.geometry.sweep import AngularSweep

__all__ = [
    "BorderSegment",
    "k_border_segments",
    "exact_topk_intervals",
    "topk_region_measure",
    "rank_at_angle_profile",
]

_HALF_PI = float(np.pi / 2)


@dataclass(frozen=True)
class BorderSegment:
    """One maximal angular segment of the top-k border.

    Attributes
    ----------
    start, end:
        The θ-interval on which ``item`` sits exactly at rank k.
    item:
        The row index owning the border on this segment.
    """

    start: float
    end: float
    item: int

    @property
    def width(self) -> float:
        """Angular width of the segment."""
        return self.end - self.start


def _validated(values: np.ndarray, k: int) -> tuple[np.ndarray, int]:
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != 2:
        raise ValidationError("expected an (n, 2) matrix")
    k = int(k)
    if not 1 <= k <= matrix.shape[0]:
        raise ValidationError(f"k must be in [1, {matrix.shape[0]}], got {k}")
    return matrix, k


def k_border_segments(values: np.ndarray, k: int) -> list[BorderSegment]:
    """The top-k border as maximal (θ-interval, owner) segments.

    The owner changes exactly when an exchange involves rank k — either
    with rank k+1 (a line crosses the border from above/below) or with
    rank k−1 (the border hops to the adjacent line of the same top-k set).
    Zero-width segments produced by coincident events are dropped.
    """
    matrix, k = _validated(values, k)
    sweep = AngularSweep(matrix)
    segments: list[BorderSegment] = []
    current_owner = int(sweep.order[k - 1])
    current_start = 0.0
    for event in sweep.events():
        # Rank k is 0-based position k-1; an exchange at positions
        # (k-2, k-1) or (k-1, k) changes who sits at position k-1.
        if event.position in (k - 2, k - 1):
            new_owner = int(sweep.order[k - 1])
            if new_owner != current_owner:
                if event.theta > current_start:
                    segments.append(
                        BorderSegment(current_start, event.theta, current_owner)
                    )
                current_owner = new_owner
                current_start = event.theta
    if _HALF_PI > current_start:
        segments.append(BorderSegment(current_start, _HALF_PI, current_owner))
    return segments


def exact_topk_intervals(
    values: np.ndarray, k: int
) -> dict[int, list[tuple[float, float]]]:
    """Per tuple, the *exact* (possibly fragmented) top-k angular region.

    Returns a mapping from row index to a list of disjoint, maximal
    closed θ-intervals on which the tuple's rank is ≤ k.  Tuples never in
    the top-k are absent.  The union of an item's intervals is a subset of
    Algorithm 1's convex closure ``[b[t], e[t]]`` — equality holds exactly
    when the region is a single interval.
    """
    matrix, k = _validated(values, k)
    sweep = AngularSweep(matrix)
    open_since: dict[int, float] = {
        int(i): 0.0 for i in sweep.order[:k]
    }
    intervals: dict[int, list[tuple[float, float]]] = {}

    def close(item: int, theta: float) -> None:
        start = open_since.pop(item)
        existing = intervals.setdefault(item, [])
        # Merge with the previous interval when the item re-entered at the
        # exact angle it left (coincident events): regions are closed sets.
        if existing and existing[-1][1] >= start:
            existing[-1] = (existing[-1][0], theta)
        else:
            existing.append((start, theta))

    for event in sweep.events():
        if event.position != k - 1:
            continue
        entering, leaving = event.lower, event.upper
        if entering not in open_since:
            open_since[entering] = event.theta
        close(leaving, event.theta)
    for item in list(open_since):
        close(item, _HALF_PI)
    return intervals


def topk_region_measure(values: np.ndarray, k: int) -> dict[int, float]:
    """Per tuple, the total angular measure of its exact top-k region.

    This is the probability weight a *uniformly random 2-D function* gives
    the tuple's top-k membership (up to the 2/π normalization) — the
    quantity that drives K-SETr's coupon-collector behaviour (§5.2.1).
    """
    return {
        item: sum(end - start for start, end in spans)
        for item, spans in exact_topk_intervals(values, k).items()
    }


def rank_at_angle_profile(
    values: np.ndarray, item: int, resolution: int = 256
) -> np.ndarray:
    """The rank of ``item`` sampled on a uniform θ-grid (diagnostic helper).

    Used by tests and notebooks to visualize Theorem 1: between two angles
    where the rank is ≤ k, it never exceeds the sum of the endpoint ranks.
    """
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != 2:
        raise ValidationError("expected an (n, 2) matrix")
    if not 0 <= int(item) < matrix.shape[0]:
        raise ValidationError("item index out of range")
    if resolution < 2:
        raise ValidationError("resolution must be >= 2")
    from repro.ranking.topk import ranks

    thetas = np.linspace(0.0, _HALF_PI, resolution)
    out = np.empty(resolution, dtype=np.int64)
    for position, theta in enumerate(thetas):
        w = np.array([np.cos(theta), np.sin(theta)])
        out[position] = ranks(matrix, w)[int(item)]
    return out
