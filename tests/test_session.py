"""Session facade + the unified keyword vocabulary / deprecation shims."""

import warnings

import numpy as np
import pytest

import repro
from repro import Session
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(21).random((400, 3))


# -- facade equivalence ------------------------------------------------


def test_session_mdrc_matches_free_function(matrix):
    with Session(matrix) as session:
        assert list(session.mdrc(5).indices) == list(repro.mdrc(matrix, 5).indices)


def test_session_md_rrr_matches_free_function(matrix):
    with Session(matrix) as session:
        ours = session.md_rrr(6, rng=0)
    theirs = repro.md_rrr(matrix, 6, rng=0)
    assert list(ours.indices) == list(theirs.indices)


def test_session_sample_ksets_matches_free_function(matrix):
    with Session(matrix) as session:
        ours = session.sample_ksets(4, rng=0, patience=50)
    theirs = repro.sample_ksets(matrix, 4, rng=0, patience=50)
    assert ours.ksets == theirs.ksets
    assert ours.draws == theirs.draws


def test_session_rank_regret_matches_free_function(matrix):
    subset = [0, 5, 17]
    with Session(matrix) as session:
        ours = session.rank_regret(subset, num_functions=500, rng=0)
    theirs = repro.rank_regret_sampled(matrix, subset, num_functions=500, rng=0)
    assert ours == theirs


def test_session_evaluate_matches_free_function(matrix):
    with Session(matrix) as session:
        result = session.mdrc(5)
        ours = session.evaluate(result.indices, 5, num_functions=400, rng=0)
    theirs = repro.evaluate_representative(
        matrix, result.indices, 5, num_functions=400, rng=0
    )
    assert ours.rank_regret == theirs.rank_regret
    assert ours.regret_ratio == theirs.regret_ratio


def test_session_fractional_k_resolves_against_live_n(matrix):
    with Session(matrix) as session:
        assert list(session.mdrc(0.05).indices) == list(
            repro.mdrc(matrix, repro.resolve_k(0.05, matrix.shape[0])).indices
        )


def test_session_mutations_and_requery(matrix):
    rng = np.random.default_rng(3)
    with Session(matrix) as session:
        fresh = rng.random((8, 3))
        indices = session.insert_rows(fresh)
        assert indices.tolist() == list(range(400, 408))
        assert session.n == 408
        assert session.delete_rows(indices[:3]) == 3
        assert session.n == 405
        assert session.revision > 0
        # Post-mutation queries match a fresh engine over session.values.
        current = session.values.copy()
        assert list(session.mdrc(5).indices) == list(repro.mdrc(current, 5).indices)


def test_session_topk_and_rank_passthrough(matrix):
    from repro.engine import ScoreEngine

    weights = np.random.default_rng(4).random((6, 3))
    with Session(matrix) as session:
        batch = session.topk(weights, 4)
        ranks = session.rank_of_best(weights, [1, 2, 3])
    with ScoreEngine(matrix, float32=True) as engine:
        reference = engine.topk_batch(weights, 4)
        rank_ref = engine.rank_of_best_batch(weights, [1, 2, 3])
    assert np.array_equal(batch.members, reference.members)
    assert np.array_equal(batch.order, reference.order)
    assert np.array_equal(ranks, rank_ref)


def test_session_close_is_idempotent_and_context_manager(matrix):
    session = Session(matrix)
    assert session.d == 3
    session.close()
    session.close()


def test_session_rejects_bad_matrix():
    with pytest.raises(ValidationError):
        Session(np.empty((0, 3)))


def test_session_exported_in_all():
    assert "Session" in repro.__all__
    assert "RetryPolicy" in repro.__all__


# -- deprecation shims -------------------------------------------------

SHIMMED = [
    lambda matrix: repro.mdrc(matrix, 5, n_jobs=1),
    lambda matrix: repro.md_rrr(matrix, 6, rng=0, n_jobs=1),
    lambda matrix: repro.sample_ksets(matrix, 4, rng=0, patience=50, n_jobs=1),
    lambda matrix: repro.rank_regret_sampled(
        matrix, [0, 1], num_functions=100, rng=0, n_jobs=1
    ),
    lambda matrix: repro.evaluate_representative(
        matrix, [0, 1, 2], 5, num_functions=100, rng=0, n_jobs=1
    ),
    lambda matrix: repro.rank_regret_representative(matrix, 5, n_jobs=1),
]


@pytest.mark.parametrize("call", SHIMMED, ids=[
    "mdrc", "md_rrr", "sample_ksets", "rank_regret_sampled",
    "evaluate_representative", "rank_regret_representative",
])
def test_n_jobs_spelling_warns_and_forwards(matrix, call):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        call(matrix)
    messages = [str(w.message) for w in caught
                if issubclass(w.category, DeprecationWarning)]
    assert any("n_jobs" in m and "jobs" in m for m in messages), messages


def test_canonical_spelling_does_not_warn(matrix):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        repro.mdrc(matrix, 5, jobs=1)
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


def test_both_spellings_is_a_type_error(matrix):
    with pytest.raises(TypeError, match="n_jobs"):
        repro.mdrc(matrix, 5, jobs=1, n_jobs=1)


def test_deprecated_result_identical_to_canonical(matrix):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        old = repro.mdrc(matrix, 5, n_jobs=1)
    new = repro.mdrc(matrix, 5, jobs=1)
    assert list(old.indices) == list(new.indices)


def test_experiment_runners_accept_jobs_keyword():
    import inspect

    from repro.experiments.reproduce import reproduce_all
    from repro.experiments.runner import run_experiment, run_kset_count, run_maintenance

    for fn in (run_experiment, run_kset_count, run_maintenance, reproduce_all):
        assert "jobs" in inspect.signature(fn).parameters, fn.__name__
        assert "n_jobs" not in inspect.signature(fn).parameters, fn.__name__
