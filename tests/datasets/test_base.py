"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.datasets import Dataset
from repro.exceptions import DatasetError, ValidationError


class TestConstruction:
    def test_basic_shape(self):
        ds = Dataset([[1.0, 2.0], [3.0, 4.0]])
        assert ds.n == 2
        assert ds.d == 2
        assert len(ds) == 2

    def test_default_attribute_names(self):
        ds = Dataset(np.ones((3, 4)))
        assert ds.attributes == ("a1", "a2", "a3", "a4")

    def test_custom_attributes_and_directions(self):
        ds = Dataset(
            [[1.0, 2.0]], attributes=("price", "score"),
            higher_is_better=(False, True),
        )
        assert ds.attributes == ("price", "score")
        assert ds.higher_is_better == (False, True)

    def test_one_dimensional_input_becomes_column(self):
        ds = Dataset([1.0, 2.0, 3.0])
        assert ds.n == 3
        assert ds.d == 1

    def test_values_are_read_only(self):
        ds = Dataset([[1.0, 2.0]])
        with pytest.raises(ValueError):
            ds.values[0, 0] = 9.0

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            Dataset(np.empty((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            Dataset([[np.nan, 1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            Dataset([[np.inf, 1.0]])

    def test_rejects_3d_input(self):
        with pytest.raises(ValidationError):
            Dataset(np.ones((2, 2, 2)))

    def test_rejects_wrong_attribute_count(self):
        with pytest.raises(ValidationError):
            Dataset([[1.0, 2.0]], attributes=("only-one",))

    def test_rejects_duplicate_attribute_names(self):
        with pytest.raises(ValidationError):
            Dataset([[1.0, 2.0]], attributes=("x", "x"))

    def test_rejects_wrong_direction_count(self):
        with pytest.raises(ValidationError):
            Dataset([[1.0, 2.0]], higher_is_better=(True,))


class TestAccessors:
    def test_getitem_returns_row(self):
        ds = Dataset([[1.0, 2.0], [3.0, 4.0]])
        assert np.array_equal(ds[1], [3.0, 4.0])

    def test_column_by_name(self):
        ds = Dataset([[1.0, 2.0], [3.0, 4.0]], attributes=("x", "y"))
        assert np.array_equal(ds.column("y"), [2.0, 4.0])

    def test_column_unknown_name(self):
        ds = Dataset([[1.0, 2.0]])
        with pytest.raises(DatasetError):
            ds.column("nope")

    def test_equality_and_hash(self):
        a = Dataset([[1.0, 2.0]])
        b = Dataset([[1.0, 2.0]])
        c = Dataset([[1.0, 3.0]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestTransforms:
    def test_select_attributes(self):
        ds = Dataset(
            [[1.0, 2.0, 3.0]], attributes=("x", "y", "z"),
            higher_is_better=(True, False, True),
        )
        sub = ds.select_attributes(["z", "x"])
        assert sub.attributes == ("z", "x")
        assert sub.higher_is_better == (True, True)
        assert np.array_equal(sub.values, [[3.0, 1.0]])

    def test_select_attributes_unknown(self):
        ds = Dataset([[1.0, 2.0]])
        with pytest.raises(DatasetError):
            ds.select_attributes(["missing"])

    def test_take(self):
        ds = Dataset([[1.0], [2.0], [3.0]])
        assert np.array_equal(ds.take([2, 0]).values, [[3.0], [1.0]])

    def test_head(self):
        ds = Dataset([[1.0], [2.0], [3.0]])
        assert ds.head(2).n == 2
        assert ds.head(10).n == 3
        with pytest.raises(ValidationError):
            ds.head(0)


class TestNormalization:
    def test_normalized_maps_to_unit_interval(self):
        ds = Dataset([[10.0, 5.0], [20.0, 1.0], [15.0, 3.0]])
        norm = ds.normalized()
        assert norm.is_normalized
        assert norm.values.min() >= 0.0
        assert norm.values.max() <= 1.0

    def test_lower_is_better_flips(self):
        ds = Dataset([[10.0], [20.0]], higher_is_better=(False,))
        norm = ds.normalized()
        # The smaller raw value becomes 1 (best).
        assert norm.values[0, 0] == 1.0
        assert norm.values[1, 0] == 0.0

    def test_higher_is_better_preserved(self):
        ds = Dataset([[10.0], [20.0]], higher_is_better=(True,))
        norm = ds.normalized()
        assert norm.values[1, 0] == 1.0

    def test_constant_column_maps_to_half(self):
        ds = Dataset([[5.0, 1.0], [5.0, 2.0]])
        norm = ds.normalized()
        assert np.all(norm.values[:, 0] == 0.5)

    def test_normalized_preserves_per_column_order(self):
        rng = np.random.default_rng(0)
        raw = rng.normal(size=(30, 3)) * 100
        ds = Dataset(raw, higher_is_better=(True, False, True))
        norm = ds.normalized()
        for j, higher in enumerate(ds.higher_is_better):
            raw_order = np.argsort(raw[:, j] if higher else -raw[:, j])
            norm_order = np.argsort(norm.values[:, j])
            assert np.array_equal(raw_order, norm_order)

    def test_is_normalized_detects_raw_data(self):
        assert not Dataset([[10.0, 5.0]]).is_normalized
        assert not Dataset(
            [[0.5, 0.5]], higher_is_better=(False, True)
        ).is_normalized
        assert Dataset([[0.5, 0.5]]).is_normalized
