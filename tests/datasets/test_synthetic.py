"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.datasets import (
    anticorrelated,
    clustered,
    correlated,
    independent,
    on_sphere,
    paper_example,
)
from repro.exceptions import ValidationError
from repro.geometry import skyline


class TestPaperExample:
    def test_shape_and_values(self):
        ds = paper_example()
        assert ds.n == 7
        assert ds.d == 2
        assert np.allclose(ds[0], [0.80, 0.28])  # t1
        assert np.allclose(ds[6], [0.91, 0.43])  # t7

    def test_ranking_under_equal_weights_matches_figure_2(self):
        # Figure 2: ordering under f = x1 + x2 is t7, t3, t5, t1, t2, t6, t4.
        from repro.ranking import ranking

        order = ranking(paper_example().values, [1.0, 1.0])
        assert list(order) == [6, 2, 4, 0, 1, 5, 3]

    def test_ranking_under_x_axis_matches_figure_3(self):
        # §3: ordering based on f = x1 is t7, t1, t3, t2, t5, t4, t6.
        from repro.ranking import ranking

        order = ranking(paper_example().values, [1.0, 0.0])
        assert list(order) == [6, 0, 2, 1, 4, 3, 5]


class TestGenerators:
    @pytest.mark.parametrize(
        "factory", [independent, correlated, anticorrelated, on_sphere]
    )
    def test_shape_and_range(self, factory):
        ds = factory(100, 3, seed=0)
        assert ds.n == 100
        assert ds.d == 3
        assert ds.values.min() >= 0.0
        assert ds.values.max() <= 1.0 + 1e-12

    def test_clustered_shape(self):
        ds = clustered(100, 3, clusters=4, seed=0)
        assert ds.n == 100

    @pytest.mark.parametrize(
        "factory", [independent, correlated, anticorrelated, clustered, on_sphere]
    )
    def test_deterministic_given_seed(self, factory):
        a = factory(50, 2, seed=42)
        b = factory(50, 2, seed=42)
        assert np.array_equal(a.values, b.values)

    @pytest.mark.parametrize(
        "factory", [independent, correlated, anticorrelated, clustered, on_sphere]
    )
    def test_different_seeds_differ(self, factory):
        a = factory(50, 2, seed=1)
        b = factory(50, 2, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValidationError):
            independent(0, 2)
        with pytest.raises(ValidationError):
            independent(10, 0)
        with pytest.raises(ValidationError):
            clustered(10, 2, clusters=0)
        with pytest.raises(ValidationError):
            correlated(10, 2, spread=-1.0)

    def test_anticorrelated_has_bigger_skyline_than_correlated(self):
        anti = anticorrelated(300, 2, seed=0).values
        corr = correlated(300, 2, seed=0).values
        assert len(skyline(anti)) > len(skyline(corr))

    def test_on_sphere_points_are_unit_norm(self):
        ds = on_sphere(50, 4, seed=0)
        norms = np.linalg.norm(ds.values, axis=1)
        assert np.allclose(norms, 1.0)

    def test_correlated_attributes_positively_correlate(self):
        ds = correlated(2000, 2, seed=0)
        coefficient = np.corrcoef(ds.values[:, 0], ds.values[:, 1])[0, 1]
        assert coefficient > 0.5

    def test_anticorrelated_attributes_negatively_correlate(self):
        ds = anticorrelated(2000, 2, seed=0)
        coefficient = np.corrcoef(ds.values[:, 0], ds.values[:, 1])[0, 1]
        assert coefficient < -0.3
