"""Unit tests for CSV persistence."""

import numpy as np
import pytest

from repro.datasets import Dataset, load_csv, save_csv, synthetic_bluenile
from repro.exceptions import DatasetError


class TestRoundTrip:
    def test_values_survive(self, tmp_path):
        original = Dataset(
            [[1.25, -3.5], [0.0, 99.0]], attributes=("x", "y"),
            higher_is_better=(True, False),
        )
        path = tmp_path / "data.csv"
        save_csv(original, path)
        loaded = load_csv(path)
        assert loaded == original

    def test_directions_survive(self, tmp_path):
        ds = synthetic_bluenile(n=20, normalize=False)
        path = tmp_path / "bn.csv"
        save_csv(ds, path)
        loaded = load_csv(path)
        assert loaded.higher_is_better == ds.higher_is_better
        assert loaded.attributes == ds.attributes

    def test_exact_float_round_trip(self, tmp_path):
        values = np.random.default_rng(0).random((10, 3))
        ds = Dataset(values)
        path = tmp_path / "floats.csv"
        save_csv(ds, path)
        assert np.array_equal(load_csv(path).values, values)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "flights.csv"
        save_csv(Dataset([[1.0]]), path)
        assert load_csv(path).name == "flights"


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_csv(tmp_path / "nope.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "hdr.csv"
        path.write_text("x,y\n")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_non_numeric_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1.0,hello\n")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("x,y\n1.0\n")
        with pytest.raises(DatasetError):
            load_csv(path)

    def test_comment_lines_ignored(self, tmp_path):
        path = tmp_path / "comments.csv"
        path.write_text("x,y\n# a note\n1.0,2.0\n")
        ds = load_csv(path)
        assert ds.n == 1
        assert all(ds.higher_is_better)

    def test_direction_row_length_mismatch(self, tmp_path):
        path = tmp_path / "dir.csv"
        path.write_text("x,y\n#direction:high\n1.0,2.0\n")
        with pytest.raises(DatasetError):
            load_csv(path)
