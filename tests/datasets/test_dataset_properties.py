"""Property-based tests for the dataset substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.datasets import Dataset

_matrices = arrays(
    np.float64,
    st.tuples(st.integers(1, 30), st.integers(1, 6)),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


@given(_matrices, st.data())
@settings(max_examples=80, deadline=None)
def test_normalized_is_always_in_unit_box(matrix, data):
    d = matrix.shape[1]
    directions = data.draw(
        st.lists(st.booleans(), min_size=d, max_size=d)
    )
    ds = Dataset(matrix, higher_is_better=directions)
    norm = ds.normalized()
    assert norm.is_normalized
    assert np.all(norm.values >= 0.0)
    assert np.all(norm.values <= 1.0)


@given(_matrices)
@settings(max_examples=80, deadline=None)
def test_normalization_idempotent(matrix):
    ds = Dataset(matrix)
    once = ds.normalized()
    twice = once.normalized()
    # A second normalization maps [0,1] onto [0,1]; constant columns are
    # already pinned at 0.5, so it must be a no-op.
    assert np.allclose(once.values, twice.values)


@given(_matrices, st.data())
@settings(max_examples=60, deadline=None)
def test_normalization_preserves_preference_order(matrix, data):
    d = matrix.shape[1]
    directions = data.draw(st.lists(st.booleans(), min_size=d, max_size=d))
    ds = Dataset(matrix, higher_is_better=directions)
    norm = ds.normalized()
    for j in range(d):
        raw = matrix[:, j] if directions[j] else -matrix[:, j]
        scaled = norm.values[:, j]
        # Preferred-direction order must be preserved (ties stay ties).
        for a in range(matrix.shape[0]):
            for b in range(matrix.shape[0]):
                if raw[a] < raw[b]:
                    assert scaled[a] <= scaled[b]


@given(_matrices)
@settings(max_examples=60, deadline=None)
def test_take_preserves_rows(matrix):
    ds = Dataset(matrix)
    reversed_ds = ds.take(list(range(ds.n))[::-1])
    assert np.array_equal(reversed_ds.values, matrix[::-1])


@given(_matrices)
@settings(max_examples=60, deadline=None)
def test_equality_reflexive_and_hash_consistent(matrix):
    a = Dataset(matrix)
    b = Dataset(matrix.copy())
    assert a == b
    assert hash(a) == hash(b)
