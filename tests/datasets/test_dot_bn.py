"""Unit tests for the DOT / Blue Nile synthetic stand-ins."""

import numpy as np
import pytest

from repro.datasets import (
    BN_ATTRIBUTES,
    DOT_ATTRIBUTES,
    synthetic_bluenile,
    synthetic_dot,
)
from repro.exceptions import ValidationError


class TestDOT:
    def test_schema(self):
        ds = synthetic_dot(n=100, normalize=False)
        assert ds.attributes == DOT_ATTRIBUTES
        assert ds.d == 8
        assert ds.n == 100

    def test_directions_match_paper(self):
        ds = synthetic_dot(n=10, normalize=False)
        by_name = dict(zip(ds.attributes, ds.higher_is_better))
        assert by_name["air_time"] is True
        assert by_name["distance"] is True
        assert by_name["dep_delay"] is False
        assert by_name["arrival_delay"] is False

    def test_normalized_by_default(self):
        ds = synthetic_dot(n=100)
        assert ds.is_normalized

    def test_projection_by_d(self):
        ds = synthetic_dot(n=50, d=3)
        assert ds.d == 3
        assert ds.attributes == DOT_ATTRIBUTES[:3]

    def test_deterministic(self):
        a = synthetic_dot(n=64, seed=9)
        b = synthetic_dot(n=64, seed=9)
        assert np.array_equal(a.values, b.values)

    def test_air_time_tracks_distance(self):
        ds = synthetic_dot(n=3000, normalize=False)
        r = np.corrcoef(ds.column("air_time"), ds.column("distance"))[0, 1]
        assert r > 0.9

    def test_arrival_delay_tracks_departure_delay(self):
        ds = synthetic_dot(n=3000, normalize=False)
        r = np.corrcoef(ds.column("arrival_delay"), ds.column("dep_delay"))[0, 1]
        assert r > 0.8

    def test_dep_delay_right_skewed(self):
        ds = synthetic_dot(n=5000, normalize=False)
        delay = ds.column("dep_delay")
        assert np.mean(delay) > np.median(delay)

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            synthetic_dot(n=0)
        with pytest.raises(ValidationError):
            synthetic_dot(n=10, d=9)
        with pytest.raises(ValidationError):
            synthetic_dot(n=10, d=0)


class TestBlueNile:
    def test_schema(self):
        ds = synthetic_bluenile(n=100, normalize=False)
        assert ds.attributes == BN_ATTRIBUTES
        assert ds.d == 5

    def test_price_is_lower_preferred(self):
        ds = synthetic_bluenile(n=10, normalize=False)
        by_name = dict(zip(ds.attributes, ds.higher_is_better))
        assert by_name["price"] is False
        assert by_name["carat"] is True

    def test_normalized_by_default(self):
        assert synthetic_bluenile(n=100).is_normalized

    def test_carat_range_matches_paper(self):
        ds = synthetic_bluenile(n=5000, normalize=False)
        carat = ds.column("carat")
        assert carat.min() >= 0.23
        assert carat.max() <= 20.97

    def test_price_superlinear_in_carat(self):
        ds = synthetic_bluenile(n=5000, normalize=False)
        carat = ds.column("carat")
        price = ds.column("price")
        # Log-log slope well above 1 = super-linear pricing.
        slope = np.polyfit(np.log(carat), np.log(price), 1)[0]
        assert slope > 1.5

    def test_projection_by_d(self):
        ds = synthetic_bluenile(n=50, d=2)
        assert ds.attributes == BN_ATTRIBUTES[:2]

    def test_deterministic(self):
        a = synthetic_bluenile(n=64, seed=4)
        b = synthetic_bluenile(n=64, seed=4)
        assert np.array_equal(a.values, b.values)

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            synthetic_bluenile(n=0)
        with pytest.raises(ValidationError):
            synthetic_bluenile(n=10, d=6)
