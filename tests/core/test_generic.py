"""Unit tests for workload (finite function set) RRR."""

import numpy as np
import pytest

from repro.core import md_rrr, workload_rrr
from repro.datasets import independent
from repro.evaluation import rank_regret_for_function
from repro.exceptions import ValidationError
from repro.ranking import sample_functions


class TestWorkloadRRR:
    def test_every_workload_function_satisfied(self):
        values = independent(80, 3, seed=0).values
        functions = sample_functions(3, 40, rng=1)
        result = workload_rrr(values, functions, 5)
        for w in functions:
            assert rank_regret_for_function(values, result.indices, w) <= 5

    def test_single_function_single_item(self):
        values = independent(50, 3, seed=1).values
        functions = sample_functions(3, 1, rng=2)
        result = workload_rrr(values, functions, 10)
        assert result.size == 1
        assert result.num_functions == 1

    def test_distinct_topk_deduplication(self):
        values = independent(30, 2, seed=2).values
        # Many near-identical functions share a top-k set.
        base = np.array([[0.7, 0.3]])
        functions = np.vstack([base + 1e-9 * i for i in range(20)])
        result = workload_rrr(values, functions, 4)
        assert result.num_distinct_topk == 1
        assert result.size == 1

    def test_exact_solver_not_larger(self):
        values = independent(40, 3, seed=3).values
        functions = sample_functions(3, 15, rng=4)
        greedy = workload_rrr(values, functions, 3, solver="greedy")
        exact = workload_rrr(values, functions, 3, solver="exact")
        assert exact.exact and not greedy.exact
        assert exact.size <= greedy.size

    def test_linear_class_representative_covers_workload(self):
        """A representative for all of L serves any finite workload."""
        values = independent(60, 3, seed=5).values
        k = 6
        full = md_rrr(values, k, rng=0)
        functions = sample_functions(3, 50, rng=6)
        for w in functions:
            assert rank_regret_for_function(values, full.indices, w) <= k

    def test_workload_smaller_than_full_class(self):
        """Covering a small workload never needs more than covering L."""
        values = independent(100, 3, seed=7).values
        k = 5
        functions = sample_functions(3, 10, rng=8)
        partial = workload_rrr(values, functions, k)
        full = md_rrr(values, k, rng=9)
        assert partial.size <= len(full.indices)

    def test_validation(self):
        values = independent(20, 3, seed=9).values
        functions = sample_functions(3, 5, rng=0)
        with pytest.raises(ValidationError):
            workload_rrr(values, functions, 0)
        with pytest.raises(ValidationError):
            workload_rrr(values, np.empty((0, 3)), 2)
        with pytest.raises(ValidationError):
            workload_rrr(values, sample_functions(2, 5, rng=0), 2)
        with pytest.raises(ValidationError):
            workload_rrr(values, functions, 2, solver="nope")
