"""Unit tests for FindRanges (Algorithm 1) and 2DRRR (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import find_ranges, two_d_rrr
from repro.datasets import anticorrelated, independent, paper_example
from repro.evaluation import rank_regret_exact_2d
from repro.exceptions import ValidationError
from repro.ranking import ranks, weights_from_angles

HALF_PI = float(np.pi / 2)


def brute_force_ranges(values, k, resolution=2000):
    """Reference: first/last angle each item is in the top-k, on a grid."""
    n = values.shape[0]
    begin = np.full(n, np.nan)
    end = np.full(n, np.nan)
    for theta in np.linspace(0.0, HALF_PI, resolution):
        w = weights_from_angles([theta])
        r = ranks(values, w)
        for i in np.flatnonzero(r <= k):
            if np.isnan(begin[i]):
                begin[i] = theta
            end[i] = theta
    return begin, end


class TestFindRanges:
    def test_paper_example_figure4(self):
        """Figure 4: for k = 2 only t1, t3, t5, t7 get ranges; t7 spans from
        0 and t5 reaches π/2."""
        ranges = find_ranges(paper_example().values, 2)
        covered = set(int(i) for i in ranges.covered_items())
        assert covered == {0, 2, 4, 6}
        # t7 (index 6) and t1 (index 0) are the top-2 at θ=0.
        assert ranges.begin[6] == 0.0
        assert ranges.begin[0] == 0.0
        # t5 (index 4) and t3 (index 2) are the top-2 at θ=π/2.
        assert ranges.end[4] == HALF_PI
        assert ranges.end[2] == HALF_PI

    def test_interval_accessor(self):
        ranges = find_ranges(paper_example().values, 2)
        assert ranges.interval(3) is None  # t4 never reaches the top-2
        interval = ranges.interval(6)
        assert interval is not None and interval[0] == 0.0

    def test_matches_brute_force_grid(self):
        values = independent(25, 2, seed=0).values
        k = 4
        ranges = find_ranges(values, k)
        begin_bf, end_bf = brute_force_ranges(values, k)
        for i in range(25):
            if np.isnan(begin_bf[i]):
                # The grid can miss very thin ranges but must agree when the
                # sweep also says "never".
                continue
            assert not np.isnan(ranges.begin[i])
            assert ranges.begin[i] <= begin_bf[i] + 1e-3
            assert ranges.end[i] >= end_bf[i] - 1e-3

    def test_items_in_topk_within_their_range(self):
        """Inside [b, e] the rank can exceed k (up to 2k), but at the two
        endpoints the item must actually be in the top-k."""
        values = anticorrelated(40, 2, seed=1).values
        k = 5
        ranges = find_ranges(values, k)
        for i in ranges.covered_items():
            for theta in (ranges.begin[i], ranges.end[i]):
                w = weights_from_angles([min(theta + 1e-12, HALF_PI)])
                # Allow boundary slack: evaluate on both sides of theta.
                r_after = ranks(values, w)[i]
                w2 = weights_from_angles([max(theta - 1e-12, 0.0)])
                r_before = ranks(values, w2)[i]
                assert min(r_after, r_before) <= k

    def test_rank_never_exceeds_2k_inside_range(self):
        """Theorem 1 consequence used by Theorem 4."""
        values = independent(30, 2, seed=2).values
        k = 3
        ranges = find_ranges(values, k)
        rng = np.random.default_rng(3)
        for i in ranges.covered_items():
            b, e = ranges.begin[i], ranges.end[i]
            for theta in rng.uniform(b, e, size=20):
                w = weights_from_angles([theta])
                assert ranks(values, w)[i] <= 2 * k

    def test_every_angle_covered_by_some_range(self):
        values = independent(35, 2, seed=4).values
        ranges = find_ranges(values, 4)
        grid = np.linspace(0.0, HALF_PI, 500)
        items = ranges.covered_items()
        for theta in grid:
            assert any(
                ranges.begin[i] - 1e-12 <= theta <= ranges.end[i] + 1e-12
                for i in items
            )

    def test_k_equals_n(self):
        values = independent(5, 2, seed=5).values
        ranges = find_ranges(values, 5)
        assert np.all(ranges.begin == 0.0)
        assert np.all(ranges.end == HALF_PI)

    def test_validation(self):
        with pytest.raises(ValidationError):
            find_ranges(np.ones((5, 3)), 2)
        with pytest.raises(ValidationError):
            find_ranges(np.ones((5, 2)), 0)
        with pytest.raises(ValidationError):
            find_ranges(np.ones((5, 2)), 6)


class TestTwoDRRR:
    def test_paper_example_size(self):
        """§4: on the running example with k = 2 the algorithm returns a
        2-element representative ({t3, t1} in the paper's greedy order)."""
        chosen = two_d_rrr(paper_example().values, 2)
        assert len(chosen) == 2
        assert 2 in chosen  # t3 is in every minimal cover

    def test_output_has_rank_regret_at_most_2k(self):
        """Theorem 4."""
        for seed in range(5):
            values = independent(50, 2, seed=seed).values
            k = 5
            chosen = two_d_rrr(values, k)
            assert rank_regret_exact_2d(values, chosen) <= 2 * k

    def test_output_rank_regret_usually_k(self):
        """§6.2: 'in all the cases it generated an output with maximum rank
        of k' — check on several instances."""
        hits = 0
        for seed in range(6):
            values = anticorrelated(60, 2, seed=seed).values
            chosen = two_d_rrr(values, 6)
            if rank_regret_exact_2d(values, chosen) <= 6:
                hits += 1
        assert hits >= 5

    def test_not_larger_than_optimal(self):
        """Theorem 3 via brute force on small instances."""
        import itertools

        for seed in range(3):
            values = independent(12, 2, seed=seed).values
            k = 2
            chosen = two_d_rrr(values, k)
            # Brute-force smallest subset with exact rank-regret <= k.
            optimal = None
            for size in range(1, 13):
                for combo in itertools.combinations(range(12), size):
                    if rank_regret_exact_2d(values, combo) <= k:
                        optimal = size
                        break
                if optimal:
                    break
            assert len(chosen) <= optimal

    def test_max_coverage_strategy_valid(self):
        values = independent(40, 2, seed=6).values
        chosen = two_d_rrr(values, 4, strategy="max-coverage")
        assert rank_regret_exact_2d(values, chosen) <= 8

    def test_unknown_strategy(self):
        with pytest.raises(ValidationError):
            two_d_rrr(paper_example().values, 2, strategy="nope")

    def test_k_equals_n_single_item(self):
        values = independent(8, 2, seed=7).values
        assert len(two_d_rrr(values, 8)) == 1

    def test_k1_equals_maxima_cover(self):
        """With k = 1 the output must cover the sweep of top-1 items."""
        values = independent(30, 2, seed=8).values
        chosen = two_d_rrr(values, 1)
        assert rank_regret_exact_2d(values, chosen) <= 2
