"""Unit tests for the unified rank_regret_representative front door."""

import numpy as np
import pytest

from repro import rank_regret_representative, resolve_k
from repro.datasets import Dataset, independent, paper_example, synthetic_dot
from repro.evaluation import rank_regret_exact_2d, rank_regret_sampled
from repro.exceptions import ValidationError


class TestResolveK:
    def test_absolute(self):
        assert resolve_k(10, 100) == 10

    def test_fraction(self):
        assert resolve_k(0.01, 10_000) == 100

    def test_fraction_rounds_up_to_one(self):
        assert resolve_k(0.001, 100) == 1

    def test_float_integer_is_absolute(self):
        assert resolve_k(5.0, 100) == 5

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            resolve_k(0, 10)
        with pytest.raises(ValidationError):
            resolve_k(11, 10)
        with pytest.raises(ValidationError):
            resolve_k(1.5, 10)


class TestFrontDoor:
    def test_auto_2d_uses_2drrr(self):
        result = rank_regret_representative(paper_example(), 2)
        assert result.method == "2drrr"
        assert result.guarantee == 4
        assert result.size == len(result.indices)

    def test_auto_md_uses_mdrc(self):
        data = independent(60, 3, seed=0)
        result = rank_regret_representative(data, 6)
        assert result.method == "mdrc"
        assert result.guarantee == 18

    def test_explicit_mdrrr(self):
        data = independent(50, 3, seed=1)
        result = rank_regret_representative(data, 5, method="mdrrr", rng=0)
        assert result.method == "mdrrr"
        assert result.guarantee == 5
        regret = rank_regret_sampled(data.values, result.indices, 2000, rng=1)
        assert regret <= 5

    def test_accepts_raw_matrix(self):
        values = independent(40, 2, seed=2).values
        result = rank_regret_representative(values, 4)
        assert rank_regret_exact_2d(values, result.indices) <= 8

    def test_normalizes_unnormalized_dataset(self):
        raw = Dataset(
            [[100.0, 5.0], [50.0, 1.0], [75.0, 3.0], [20.0, 9.0]],
            higher_is_better=(True, False),
        )
        result = rank_regret_representative(raw, 1)
        assert result.indices

    def test_fractional_k(self):
        data = synthetic_dot(n=500, d=3, seed=3)
        result = rank_regret_representative(data, 0.01)
        assert result.k == 5

    def test_options_forwarded(self):
        data = independent(40, 2, seed=4)
        result = rank_regret_representative(data, 4, strategy="max-coverage")
        assert result.method == "2drrr"

    def test_2drrr_rejects_md(self):
        with pytest.raises(ValidationError):
            rank_regret_representative(independent(10, 3, seed=5), 2, method="2drrr")

    def test_unknown_method(self):
        with pytest.raises(ValidationError):
            rank_regret_representative(paper_example(), 2, method="nope")

    def test_rejects_bad_data(self):
        with pytest.raises(ValidationError):
            rank_regret_representative(np.ones(5), 1)
