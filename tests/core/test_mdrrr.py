"""Unit tests for MDRRR (Algorithm 3) and k-set collection."""

import numpy as np
import pytest

from repro.core import collect_ksets, md_rrr
from repro.datasets import independent, paper_example
from repro.evaluation import rank_regret_exact_2d, rank_regret_sampled
from repro.exceptions import ValidationError
from repro.geometry import enumerate_ksets_2d
from repro.setcover import is_hitting_set


class TestCollectKsets:
    def test_auto_uses_exact_sweep_in_2d(self):
        values = paper_example().values
        ksets, used, draws = collect_ksets(values, 2)
        assert used == "exact-2d-sweep"
        assert draws == 0
        assert [set(s) for s in ksets] == [{0, 6}, {6, 2}, {2, 4}]

    def test_auto_samples_in_3d(self):
        values = independent(30, 3, seed=0).values
        ksets, used, draws = collect_ksets(values, 3, rng=0)
        assert used == "sample"
        assert draws > 0
        assert all(len(s) == 3 for s in ksets)

    def test_exact_bfs_in_3d(self):
        values = independent(12, 3, seed=1).values
        ksets, used, _ = collect_ksets(values, 2, enumerator="exact")
        assert used == "exact-bfs"
        sampled, _, _ = collect_ksets(values, 2, enumerator="sample", rng=0)
        assert set(sampled) <= set(ksets)

    def test_unknown_enumerator(self):
        with pytest.raises(ValidationError):
            collect_ksets(paper_example().values, 2, enumerator="nope")


class TestMDRRR:
    def test_output_hits_every_kset(self):
        values = independent(40, 3, seed=2).values
        result = md_rrr(values, 4, rng=0)
        assert is_hitting_set(result.ksets, result.indices)

    def test_guarantees_rank_regret_k_in_2d(self):
        """§5.2: MDRRR guarantees rank-regret of exactly <= k (2-D exact)."""
        for seed in range(4):
            values = independent(40, 2, seed=seed).values
            result = md_rrr(values, 5)
            assert rank_regret_exact_2d(values, result.indices) <= 5

    def test_sampled_rank_regret_k_in_3d(self):
        values = independent(100, 3, seed=3).values
        result = md_rrr(values, 10, rng=1)
        regret = rank_regret_sampled(values, result.indices, 3000, rng=2)
        assert regret <= 10

    def test_paper_example(self):
        result = md_rrr(paper_example().values, 2)
        # Must hit {t1,t7}, {t7,t3}, {t3,t5}: t3 plus one of t1/t7 suffices.
        assert is_hitting_set(result.ksets, result.indices)
        assert len(result.indices) == 2

    def test_epsnet_variant_valid(self):
        values = independent(30, 3, seed=4).values
        result = md_rrr(values, 3, hitting="epsnet", rng=5)
        assert is_hitting_set(result.ksets, result.indices)

    def test_greedy_not_larger_than_epsnet_usually(self):
        values = independent(50, 3, seed=5).values
        greedy = md_rrr(values, 5, rng=6)
        eps = md_rrr(values, 5, hitting="epsnet", rng=6, ksets=greedy.ksets)
        assert len(greedy.indices) <= len(eps.indices) + 2

    def test_provided_ksets_reused(self):
        values = paper_example().values
        ksets = enumerate_ksets_2d(values, 2)
        result = md_rrr(values, 2, ksets=ksets)
        assert result.enumerator == "provided"
        assert result.ksets == list(ksets)

    def test_deterministic_given_seed(self):
        values = independent(40, 3, seed=6).values
        a = md_rrr(values, 4, rng=7)
        b = md_rrr(values, 4, rng=7)
        assert a.indices == b.indices

    def test_validation(self):
        values = independent(10, 3, seed=7).values
        with pytest.raises(ValidationError):
            md_rrr(values, 0)
        with pytest.raises(ValidationError):
            md_rrr(values, 3, hitting="nope")
        with pytest.raises(ValidationError):
            md_rrr(np.ones(5), 1)

    def test_k_equals_n_single_item(self):
        values = independent(8, 3, seed=8).values
        result = md_rrr(values, 8, rng=0)
        assert len(result.indices) == 1
