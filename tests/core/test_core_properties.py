"""Property-based tests for the core RRR algorithms.

These encode the paper's theorems as executable invariants:

* Theorem 3/4 — 2DRRR output covers the function space with rank-regret
  at most 2k;
* Lemma 5 / §5.2 — MDRRR over exact k-sets has rank-regret at most k;
* Theorem 6 — MDRC has rank-regret at most d·k.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import find_ranges, md_rrr, mdrc, two_d_rrr
from repro.evaluation import rank_regret_exact_2d, rank_regret_sampled

_points_2d = arrays(
    np.float64,
    st.tuples(st.integers(4, 30), st.just(2)),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)

_points_3d = arrays(
    np.float64,
    st.tuples(st.integers(5, 25), st.just(3)),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)


@given(_points_2d, st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_2drrr_theorem4(values, k):
    k = min(k, values.shape[0])
    chosen = two_d_rrr(values, k)
    assert chosen
    assert rank_regret_exact_2d(values, chosen) <= 2 * k


@given(_points_2d, st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_mdrrr_exact_2d_guarantee(values, k):
    k = min(k, values.shape[0])
    result = md_rrr(values, k)  # exact sweep enumeration in 2-D
    assert rank_regret_exact_2d(values, result.indices) <= k


@given(_points_2d, st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_mdrc_theorem6_2d(values, k):
    k = min(k, values.shape[0])
    result = mdrc(values, k)
    assert rank_regret_exact_2d(values, result.indices) <= 2 * k


@given(_points_3d, st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_mdrc_theorem6_3d_sampled(values, k):
    k = min(k, values.shape[0])
    result = mdrc(values, k)
    regret = rank_regret_sampled(values, result.indices, 500, rng=0)
    assert regret <= 3 * k


@given(_points_2d, st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_find_ranges_covers_space(values, k):
    """At every angle some item's closed range is active (else 2DRRR could
    not cover the space)."""
    k = min(k, values.shape[0])
    ranges = find_ranges(values, k)
    items = ranges.covered_items()
    assert len(items) >= 1
    for theta in np.linspace(0.0, np.pi / 2, 50):
        assert any(
            ranges.begin[i] - 1e-12 <= theta <= ranges.end[i] + 1e-12
            for i in items
        )


@given(_points_2d, st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_2drrr_subset_of_ranged_items(values, k):
    k = min(k, values.shape[0])
    ranges = find_ranges(values, k)
    chosen = set(two_d_rrr(values, k))
    assert chosen <= set(int(i) for i in ranges.covered_items())
