"""Unit tests for MDRC (Algorithm 5)."""

import numpy as np
import pytest

from repro.core import mdrc
from repro.datasets import anticorrelated, independent, paper_example
from repro.evaluation import rank_regret_exact_2d, rank_regret_sampled
from repro.exceptions import ValidationError


class TestMDRC:
    def test_paper_example(self):
        result = mdrc(paper_example().values, 2)
        assert result.indices
        assert rank_regret_exact_2d(paper_example().values, result.indices) <= 4

    def test_theorem6_guarantee_2d(self):
        """Theorem 6: rank-regret at most d·k = 2k in 2-D (exact check)."""
        for seed in range(5):
            values = independent(60, 2, seed=seed).values
            result = mdrc(values, 5)
            assert rank_regret_exact_2d(values, result.indices) <= 10

    def test_practical_rank_regret_k(self):
        """§6.2: 'for all the experiments we ran, the output of MDRC
        satisfied the maximum rank of k'."""
        hits = 0
        for seed in range(6):
            values = independent(80, 3, seed=seed).values
            result = mdrc(values, 8)
            regret = rank_regret_sampled(values, result.indices, 2000, rng=seed)
            if regret <= 8:
                hits += 1
        assert hits >= 5

    def test_theorem6_sampled_3d(self):
        values = independent(100, 3, seed=10).values
        result = mdrc(values, 10)
        regret = rank_regret_sampled(values, result.indices, 3000, rng=0)
        assert regret <= 30  # d * k

    def test_output_small(self):
        """§6.2: outputs stayed below 40 in every experiment."""
        for d in (2, 3, 4):
            values = independent(200, d, seed=d).values
            result = mdrc(values, 20)
            assert len(result.indices) < 40

    def test_deterministic(self):
        values = independent(70, 3, seed=11).values
        assert mdrc(values, 7).indices == mdrc(values, 7).indices

    def test_cells_and_depth_accounting(self):
        values = anticorrelated(60, 3, seed=12).values
        result = mdrc(values, 6)
        assert result.cells >= 1
        assert result.max_depth_reached >= 0
        assert result.capped_cells == 0
        assert result.corner_evaluations > 0

    def test_k_equals_n_one_cell(self):
        values = independent(10, 3, seed=13).values
        result = mdrc(values, 10)
        assert result.cells == 1
        assert len(result.indices) == 1

    def test_best_rank_choice_policy(self):
        values = independent(60, 3, seed=14).values
        first = mdrc(values, 6, choice="first")
        best = mdrc(values, 6, choice="best-rank")
        # Both are valid representatives.
        for result in (first, best):
            regret = rank_regret_sampled(values, result.indices, 2000, rng=1)
            assert regret <= 18

    def test_cache_toggle_same_output(self):
        values = independent(50, 3, seed=15).values
        with_cache = mdrc(values, 5, use_cache=True)
        without = mdrc(values, 5, use_cache=False)
        assert with_cache.indices == without.indices
        assert without.corner_evaluations >= with_cache.corner_evaluations

    def test_depth_cap_fallback(self):
        # Force immediate capping: duplicated extreme points make corner
        # top-k sets intersect trivially, so instead craft points where
        # top-1 differs at every corner and cap at depth 1.
        values = independent(50, 3, seed=16).values
        result = mdrc(values, 1, max_depth=1)
        assert result.indices  # still returns a representative
        assert result.max_depth_reached <= 1

    def test_validation(self):
        values = independent(10, 3, seed=17).values
        with pytest.raises(ValidationError):
            mdrc(values, 0)
        with pytest.raises(ValidationError):
            mdrc(values, 11)
        with pytest.raises(ValidationError):
            mdrc(np.ones((5, 1)), 1)
        with pytest.raises(ValidationError):
            mdrc(values, 2, max_depth=0)
        with pytest.raises(ValidationError):
            mdrc(values, 2, choice="nope")

    def test_higher_dimensions(self):
        values = independent(80, 5, seed=18).values
        result = mdrc(values, 8)
        regret = rank_regret_sampled(values, result.indices, 2000, rng=2)
        assert regret <= 5 * 8
