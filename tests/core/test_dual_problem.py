"""Unit tests for the size-budget (dual) formulation."""

import pytest

from repro.core import min_rank_regret_of_size
from repro.datasets import independent, paper_example
from repro.evaluation import rank_regret_exact_2d
from repro.exceptions import ValidationError


class TestSizeBudget:
    def test_budget_respected(self):
        data = independent(60, 2, seed=0)
        outcome = min_rank_regret_of_size(data, size=3)
        assert outcome.result.size <= 3

    def test_found_k_matches_result(self):
        data = independent(60, 2, seed=1)
        outcome = min_rank_regret_of_size(data, size=4)
        assert outcome.result.k == outcome.k
        assert rank_regret_exact_2d(data.values, outcome.result.indices) <= 2 * outcome.k

    def test_probes_logarithmic(self):
        data = independent(64, 2, seed=2)
        outcome = min_rank_regret_of_size(data, size=2)
        assert outcome.probes <= 8  # ceil(log2(64)) + slack

    def test_bigger_budget_never_needs_bigger_k(self):
        data = independent(80, 2, seed=3)
        small = min_rank_regret_of_size(data, size=2)
        large = min_rank_regret_of_size(data, size=6)
        assert large.k <= small.k

    def test_budget_one(self):
        data = paper_example()
        outcome = min_rank_regret_of_size(data, size=1)
        assert outcome.result.size == 1

    def test_md_path(self):
        data = independent(60, 3, seed=4)
        outcome = min_rank_regret_of_size(data, size=5, method="mdrc")
        assert outcome.result.size <= 5

    def test_validation(self):
        with pytest.raises(ValidationError):
            min_rank_regret_of_size(paper_example(), size=0)
