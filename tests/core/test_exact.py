"""Unit tests for the exact ground-truth solvers and the approximation
ratios they certify."""

import numpy as np
import pytest

from repro.core import (
    exact_rrr_2d,
    exact_rrr_via_ksets,
    md_rrr,
    mdrc,
    two_d_rrr,
)
from repro.datasets import independent, paper_example
from repro.evaluation import rank_regret_exact_2d
from repro.exceptions import ValidationError


class TestExact2D:
    def test_paper_example_optimum_is_two(self):
        optimal = exact_rrr_2d(paper_example().values, 2)
        assert len(optimal) == 2
        assert rank_regret_exact_2d(paper_example().values, optimal) <= 2

    def test_output_achieves_k(self):
        for seed in range(4):
            values = independent(18, 2, seed=seed).values
            k = 3
            optimal = exact_rrr_2d(values, k)
            assert rank_regret_exact_2d(values, optimal) <= k

    def test_minimality(self):
        """No strictly smaller subset achieves the same k."""
        import itertools

        values = independent(14, 2, seed=5).values
        k = 3
        optimal = exact_rrr_2d(values, k)
        if len(optimal) > 1:
            for combo in itertools.combinations(range(14), len(optimal) - 1):
                assert rank_regret_exact_2d(values, combo) > k

    def test_k_equals_n(self):
        values = independent(6, 2, seed=6).values
        assert len(exact_rrr_2d(values, 6)) == 1

    def test_max_size_cap(self):
        values = independent(15, 2, seed=7).values
        with pytest.raises(ValidationError):
            exact_rrr_2d(values, 1, max_size=0)

    def test_too_large_instance_rejected(self):
        values = independent(300, 2, seed=8).values
        with pytest.raises(ValidationError):
            exact_rrr_2d(values, 150)

    def test_validation(self):
        with pytest.raises(ValidationError):
            exact_rrr_2d(np.ones((5, 3)), 2)


class TestExactViaKsets:
    def test_agrees_with_exact_2d(self):
        for seed in range(3):
            values = independent(12, 2, seed=seed).values
            k = 2
            a = exact_rrr_2d(values, k)
            b = exact_rrr_via_ksets(values, k)
            assert len(a) == len(b)

    def test_3d_output_hits_all_ksets(self):
        from repro.core import collect_ksets
        from repro.setcover import is_hitting_set

        values = independent(10, 3, seed=3).values
        optimal = exact_rrr_via_ksets(values, 2)
        ksets, _, _ = collect_ksets(values, 2, enumerator="exact")
        assert is_hitting_set(ksets, optimal)


class TestCertifiedApproximationRatios:
    def test_theorem3_2drrr_never_larger_than_optimal(self):
        for seed in range(5):
            values = independent(16, 2, seed=seed).values
            k = 3
            assert len(two_d_rrr(values, k)) <= len(exact_rrr_2d(values, k))

    def test_mdrrr_log_factor_on_small_instances(self):
        for seed in range(3):
            values = independent(14, 2, seed=seed).values
            k = 3
            optimal = len(exact_rrr_2d(values, k))
            approx = len(md_rrr(values, k).indices)
            # ln(#ksets) factor; generous ceiling for tiny instances.
            assert approx <= optimal * 4

    def test_mdrc_near_optimal_in_practice(self):
        for seed in range(3):
            values = independent(16, 2, seed=seed).values
            k = 4
            optimal = len(exact_rrr_2d(values, k))
            assert len(mdrc(values, k).indices) <= optimal + 3
