"""`perf_gate.py --history` must tolerate partial BENCH rows.

Older BENCH files predate newer ops, and an interrupted run can leave a
row without ``median_s``/``speedup``.  The cross-PR table renders an
em-dash cell for those instead of KeyError-ing the whole report.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_perf_gate():
    spec = importlib.util.spec_from_file_location(
        "perf_gate_under_test", REPO_ROOT / "benchmarks" / "perf_gate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_history_renders_partial_rows(tmp_path, capsys, monkeypatch):
    gate = _load_perf_gate()
    monkeypatch.setattr(gate, "REPO_ROOT", tmp_path)
    (tmp_path / "BENCH_PR1.json").write_text(
        json.dumps({"ops": [{"op": "scoring", "median_s": 0.5, "speedup": 2.0}]})
    )
    (tmp_path / "BENCH_PR2.json").write_text(
        json.dumps(
            {
                "ops": [
                    {"op": "scoring"},  # partial row: no timings recorded
                    {"op": "view_maintenance", "median_s": 1.0, "speedup": 5.0},
                ]
            }
        )
    )
    assert gate._print_history() == 0
    out = capsys.readouterr().out
    assert "—" in out  # the partial row and the not-yet-benched cell
    assert "view_maintenance" in out
    assert "0.500s" in out and "5.0x" in out


def test_history_without_bench_files_fails_cleanly(tmp_path, capsys, monkeypatch):
    gate = _load_perf_gate()
    monkeypatch.setattr(gate, "REPO_ROOT", tmp_path)
    assert gate._print_history() == 1
    assert "no BENCH_PR*.json" in capsys.readouterr().out
