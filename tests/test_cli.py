"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.datasets import save_csv, synthetic_dot


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_represent_defaults(self):
        args = build_parser().parse_args(["represent"])
        assert args.dataset == "dot"
        assert args.method == "auto"

    def test_experiment_figure_choices(self):
        args = build_parser().parse_args(["experiment", "fig17_18"])
        assert args.figure == "fig17_18"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestRepresent:
    def test_synthetic_run(self):
        out = io.StringIO()
        code = main(
            ["represent", "--dataset", "dot", "--n", "300", "--d", "3",
             "--k", "0.05", "--eval-functions", "500"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "method       : mdrc" in text
        assert "indices" in text

    def test_csv_input(self, tmp_path):
        data = synthetic_dot(n=100, d=2, seed=0, normalize=False)
        path = tmp_path / "flights.csv"
        save_csv(data, path)
        out = io.StringIO()
        code = main(
            ["represent", "--csv", str(path), "--k", "5",
             "--eval-functions", "200"],
            out=out,
        )
        assert code == 0
        assert "method       : 2drrr" in out.getvalue()

    def test_absolute_k(self):
        out = io.StringIO()
        code = main(
            ["represent", "--n", "200", "--d", "3", "--k", "10",
             "--eval-functions", "200"],
            out=out,
        )
        assert code == 0
        assert "k            : 10" in out.getvalue()

    def test_missing_csv_is_clean_error(self, capsys):
        code = main(["represent", "--csv", "/nope/missing.csv"], out=io.StringIO())
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestKsets:
    def test_2d_exact_path(self):
        out = io.StringIO()
        code = main(
            ["ksets", "--dataset", "bn", "--n", "80", "--d", "2", "--k", "0.05"],
            out=out,
        )
        assert code == 0
        assert "exact 2-D enumeration" in out.getvalue()

    def test_md_sampled_path(self):
        out = io.StringIO()
        code = main(
            ["ksets", "--n", "80", "--d", "3", "--k", "0.05",
             "--patience", "30"],
            out=out,
        )
        assert code == 0
        assert "K-SETr" in out.getvalue()


class TestExperiment:
    def test_runs_smallest_kset_figure(self, monkeypatch):
        # Shrink the bench config further so the CLI test stays fast.
        from repro.experiments import config as config_module

        small = dict(config_module.BENCH_EXPERIMENTS)
        from dataclasses import replace

        small["fig13"] = replace(small["fig13"], n=60, values=(0.05,))
        monkeypatch.setattr(config_module, "BENCH_EXPERIMENTS", small)
        monkeypatch.setattr("repro.cli.BENCH_EXPERIMENTS", small)
        out = io.StringIO()
        code = main(["experiment", "fig13", "--scale", "bench"], out=out)
        assert code == 0
        assert "#k-sets" in out.getvalue()
