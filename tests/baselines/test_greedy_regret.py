"""Unit tests for the greedy regret-ratio baseline."""

import numpy as np
import pytest

from repro.baselines import greedy_regret
from repro.datasets import independent
from repro.evaluation import regret_ratio_sampled
from repro.exceptions import ValidationError


class TestGreedyRegret:
    def test_returns_requested_size_or_breaks_at_zero_regret(self):
        values = independent(100, 3, seed=0).values
        chosen = greedy_regret(values, 6, rng=0)
        assert 1 <= len(chosen) <= 6

    def test_monotone_improvement_with_budget(self):
        values = independent(300, 3, seed=1).values
        r_small = regret_ratio_sampled(values, greedy_regret(values, 2, rng=0), 1000, rng=2)
        r_large = regret_ratio_sampled(values, greedy_regret(values, 10, rng=0), 1000, rng=2)
        assert r_large <= r_small + 1e-9

    def test_beats_random_selection(self):
        rng = np.random.default_rng(3)
        values = independent(300, 3, seed=2).values
        greedy_set = greedy_regret(values, 5, rng=0)
        greedy_ratio = regret_ratio_sampled(values, greedy_set, 1000, rng=4)
        random_ratios = []
        for _ in range(5):
            random_set = rng.choice(300, size=5, replace=False)
            random_ratios.append(
                regret_ratio_sampled(values, random_set, 1000, rng=4)
            )
        assert greedy_ratio <= min(random_ratios) + 1e-9

    def test_deterministic_given_seed(self):
        values = independent(80, 3, seed=4).values
        assert greedy_regret(values, 5, rng=7) == greedy_regret(values, 5, rng=7)

    def test_validation(self):
        values = independent(10, 3, seed=5).values
        with pytest.raises(ValidationError):
            greedy_regret(values, 0)
        with pytest.raises(ValidationError):
            greedy_regret(values, 11)
        with pytest.raises(ValidationError):
            greedy_regret(values, 2, num_functions=0)
