"""Unit tests for the HD-RRMS regret-ratio baseline."""

import numpy as np
import pytest

from repro.baselines import hd_rrms
from repro.datasets import independent, synthetic_bluenile
from repro.evaluation import regret_ratio_sampled
from repro.exceptions import ValidationError


class TestHDRRMS:
    def test_respects_size_budget(self):
        values = independent(100, 3, seed=0).values
        for size in (1, 3, 8):
            result = hd_rrms(values, size, rng=0)
            assert 1 <= len(result.indices) <= size

    def test_epsilon_decreases_with_budget(self):
        values = independent(150, 3, seed=1).values
        small = hd_rrms(values, 2, rng=0)
        large = hd_rrms(values, 12, rng=0)
        assert large.epsilon <= small.epsilon + 1e-9

    def test_achieved_regret_ratio_near_epsilon(self):
        values = independent(120, 3, seed=2).values
        result = hd_rrms(values, 6, num_functions=512)
        measured = regret_ratio_sampled(values, result.indices, 2000, rng=3)
        # The discretization adds error; allow generous headroom.
        assert measured <= result.epsilon + 0.15

    def test_sample_discretization(self):
        values = independent(80, 3, seed=3).values
        result = hd_rrms(values, 5, discretization="sample", rng=4)
        assert 1 <= len(result.indices) <= 5

    def test_deterministic_grid(self):
        values = independent(60, 3, seed=4).values
        a = hd_rrms(values, 4)
        b = hd_rrms(values, 4)
        assert a.indices == b.indices
        assert a.epsilon == b.epsilon

    def test_budget_one(self):
        values = synthetic_bluenile(n=50, d=3, seed=5).values
        result = hd_rrms(values, 1)
        assert len(result.indices) == 1

    def test_validation(self):
        values = independent(10, 2, seed=6).values
        with pytest.raises(ValidationError):
            hd_rrms(values, 0)
        with pytest.raises(ValidationError):
            hd_rrms(values, 11)
        with pytest.raises(ValidationError):
            hd_rrms(values, 2, num_functions=0)
        with pytest.raises(ValidationError):
            hd_rrms(values, 2, discretization="nope")
        with pytest.raises(ValidationError):
            hd_rrms(np.ones(5), 1)

    def test_2d_path(self):
        values = independent(60, 2, seed=7).values
        result = hd_rrms(values, 4)
        assert len(result.indices) <= 4
