"""Unit tests for the order-1 maxima representatives."""

from repro.baselines import convex_hull_representative, skyline_representative
from repro.datasets import anticorrelated, independent, paper_example
from repro.evaluation import rank_regret_exact_2d
from repro.ranking import sample_functions, top_k


class TestMaximaRepresentatives:
    def test_hull_is_order1_rrr_2d(self):
        values = independent(50, 2, seed=0).values
        hull = convex_hull_representative(values)
        assert rank_regret_exact_2d(values, hull) == 1

    def test_hull_subset_of_skyline(self):
        values = independent(80, 3, seed=1).values
        hull = set(convex_hull_representative(values))
        sky = set(skyline_representative(values))
        assert hull <= sky

    def test_skyline_contains_all_top1(self):
        values = anticorrelated(100, 3, seed=2).values
        sky = set(skyline_representative(values))
        for w in sample_functions(3, 100, rng=3):
            assert int(top_k(values, w, 1)[0]) in sky

    def test_paper_example(self):
        values = paper_example().values
        assert set(convex_hull_representative(values)) == {2, 4, 6}
        assert set(skyline_representative(values)) == {2, 4, 6}

    def test_hull_smaller_than_data_on_random_input(self):
        values = independent(200, 2, seed=4).values
        assert len(convex_hull_representative(values)) < 200
