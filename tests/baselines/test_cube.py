"""Unit tests for the Cube baseline."""

import numpy as np
import pytest

from repro.baselines import cube
from repro.datasets import independent
from repro.evaluation import regret_ratio_sampled
from repro.exceptions import ValidationError


class TestCube:
    def test_respects_budget(self):
        values = independent(100, 3, seed=0).values
        for size in (1, 4, 9, 16):
            assert len(cube(values, size)) <= size

    def test_selected_items_maximize_last_attribute_per_cell(self):
        values = independent(100, 2, seed=1).values
        chosen = cube(values, 4)
        t = 4  # size^(1/(d-1))
        lo, hi = values[:, 0].min(), values[:, 0].max()
        cells = np.clip(
            np.floor((values[:, 0] - lo) / (hi - lo) * t).astype(int), 0, t - 1
        )
        for i in chosen:
            same_cell = np.flatnonzero(cells == cells[i])
            assert values[i, 1] == values[same_cell, 1].max()

    def test_regret_ratio_shrinks_with_budget(self):
        values = independent(500, 3, seed=2).values
        small = regret_ratio_sampled(values, cube(values, 4), 1000, rng=0)
        large = regret_ratio_sampled(values, cube(values, 36), 1000, rng=0)
        assert large <= small + 1e-9

    def test_deterministic(self):
        values = independent(80, 3, seed=3).values
        assert cube(values, 9) == cube(values, 9)

    def test_validation(self):
        values = independent(10, 3, seed=4).values
        with pytest.raises(ValidationError):
            cube(values, 0)
        with pytest.raises(ValidationError):
            cube(values, 11)
        with pytest.raises(ValidationError):
            cube(np.ones((5, 1)), 1)
