"""Unit tests for function-space sampling and grids."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ranking import grid_functions, sample_functions


class TestSampleFunctions:
    def test_shape_and_norms(self):
        w = sample_functions(4, 100, rng=0)
        assert w.shape == (100, 4)
        assert np.allclose(np.linalg.norm(w, axis=1), 1.0)
        assert np.all(w >= 0)

    def test_deterministic_given_seed(self):
        assert np.array_equal(sample_functions(3, 10, rng=7), sample_functions(3, 10, rng=7))

    def test_marsaglia_uniformity_on_circle(self):
        # In 2-D the angle of a uniform direction is uniform on [0, π/2]:
        # the mean angle should be close to π/4.
        w = sample_functions(2, 20_000, rng=0)
        angles = np.arctan2(w[:, 1], w[:, 0])
        assert abs(angles.mean() - np.pi / 4) < 0.02

    def test_covers_all_orthant_corners(self):
        # Every attribute should dominate in some sample.
        w = sample_functions(3, 5000, rng=1)
        assert set(np.argmax(w, axis=1)) == {0, 1, 2}

    def test_validation(self):
        with pytest.raises(ValidationError):
            sample_functions(0, 10)
        with pytest.raises(ValidationError):
            sample_functions(3, 0)


class TestGridFunctions:
    def test_2d_grid_endpoints(self):
        grid = grid_functions(2, 3)
        assert grid.shape == (3, 2)
        assert np.allclose(grid[0], [1.0, 0.0])
        assert np.allclose(grid[-1], [0.0, 1.0], atol=1e-12)

    def test_count_is_per_axis_power(self):
        grid = grid_functions(4, 5)
        assert grid.shape == (5 ** 3, 4)

    def test_rows_are_unit_vectors(self):
        grid = grid_functions(3, 4)
        assert np.allclose(np.linalg.norm(grid, axis=1), 1.0)
        assert np.all(grid >= 0)

    def test_d1_special_case(self):
        assert np.array_equal(grid_functions(1, 10), [[1.0]])

    def test_single_point_grid_is_diagonal(self):
        grid = grid_functions(2, 1)
        assert np.allclose(grid, [[np.sqrt(0.5), np.sqrt(0.5)]])

    def test_validation(self):
        with pytest.raises(ValidationError):
            grid_functions(0, 3)
        with pytest.raises(ValidationError):
            grid_functions(2, 0)
