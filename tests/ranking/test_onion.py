"""Unit tests for the onion (layered maxima) index."""

import numpy as np
import pytest

from repro.datasets import anticorrelated, correlated, independent
from repro.exceptions import ValidationError
from repro.geometry import skyline
from repro.ranking import OnionIndex, sample_functions, top_k


class TestConstruction:
    def test_first_layer_is_skyline(self):
        values = independent(60, 3, seed=0).values
        index = OnionIndex(values)
        assert np.array_equal(np.sort(index.layers[0]), skyline(values))

    def test_layers_partition_dataset(self):
        values = independent(80, 3, seed=1).values
        index = OnionIndex(values)
        combined = np.concatenate(index.layers)
        assert sorted(combined) == list(range(80))

    def test_max_layers_cap(self):
        values = anticorrelated(100, 2, seed=2).values
        index = OnionIndex(values, max_layers=2)
        assert index.num_layers <= 3  # 2 peeled + rest layer

    def test_layer_of(self):
        values = independent(40, 2, seed=3).values
        index = OnionIndex(values)
        for item in index.layers[1]:
            assert index.layer_of(int(item)) == 1
        with pytest.raises(ValidationError):
            index.layer_of(999)

    def test_validation(self):
        with pytest.raises(ValidationError):
            OnionIndex(np.ones(5))
        with pytest.raises(ValidationError):
            OnionIndex(np.ones((4, 2)), max_layers=0)


class TestCorrectness:
    def test_topk_matches_bruteforce(self):
        values = independent(120, 3, seed=4).values
        index = OnionIndex(values)
        for w in sample_functions(3, 40, rng=5):
            for k in (1, 3, 10):
                assert np.array_equal(index.top_k(w, k), top_k(values, w, k))

    def test_topk_with_capped_layers_still_exact(self):
        values = anticorrelated(100, 3, seed=6).values
        index = OnionIndex(values, max_layers=2)
        for w in sample_functions(3, 20, rng=7):
            assert np.array_equal(index.top_k(w, 5), top_k(values, w, 5))

    def test_topk_with_heavy_ties(self):
        rng = np.random.default_rng(8)
        values = np.round(rng.random((80, 2)), 1)  # many exact ties
        index = OnionIndex(values)
        for w in sample_functions(2, 30, rng=9):
            assert np.array_equal(index.top_k(w, 7), top_k(values, w, 7))

    def test_candidates_contain_topk(self):
        values = independent(90, 4, seed=10).values
        index = OnionIndex(values)
        for k in (1, 5, 15):
            candidates = set(int(i) for i in index.candidates(k))
            for w in sample_functions(4, 15, rng=11):
                assert set(int(i) for i in top_k(values, w, k)) <= candidates

    def test_candidates_validation(self):
        values = independent(10, 2, seed=12).values
        index = OnionIndex(values)
        with pytest.raises(ValidationError):
            index.candidates(0)
        with pytest.raises(ValidationError):
            index.candidates(11)


class TestPruning:
    def test_candidates_much_smaller_than_n_on_correlated_data(self):
        values = correlated(1000, 3, seed=13).values
        index = OnionIndex(values, max_layers=20)
        assert index.candidates(3).size < 300
