"""Unit tests for LinearFunction and the weight/angle parameterization."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ranking import LinearFunction, angles_from_weights, weights_from_angles


class TestLinearFunction:
    def test_scores_a_point(self):
        f = LinearFunction([1.0, 1.0])
        assert f([2.0, 4.0]) == pytest.approx(6.0 / np.sqrt(2))

    def test_scores_matrix(self):
        f = LinearFunction([3.0, 4.0])  # normalized to (0.6, 0.8)
        out = f(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert np.allclose(out, [0.6, 0.8])

    def test_weights_are_normalized(self):
        f = LinearFunction([2.0, 0.0])
        assert np.allclose(f.weights, [1.0, 0.0])

    def test_scaling_invariance_equality(self):
        assert LinearFunction([1.0, 2.0]) == LinearFunction([10.0, 20.0])
        assert hash(LinearFunction([1.0, 2.0])) == hash(LinearFunction([2.0, 4.0]))

    def test_weights_read_only(self):
        f = LinearFunction([1.0, 1.0])
        with pytest.raises(ValueError):
            f.weights[0] = 5.0

    def test_rejects_negative_weights(self):
        with pytest.raises(ValidationError):
            LinearFunction([1.0, -1.0])

    def test_rejects_all_zero(self):
        with pytest.raises(ValidationError):
            LinearFunction([0.0, 0.0])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            LinearFunction([np.nan, 1.0])

    def test_dimension_mismatch(self):
        f = LinearFunction([1.0, 1.0])
        with pytest.raises(ValidationError):
            f([1.0, 2.0, 3.0])

    def test_from_angles_2d(self):
        f = LinearFunction.from_angles([np.pi / 4])
        assert np.allclose(f.weights, [np.sqrt(0.5), np.sqrt(0.5)])

    def test_angles_property_round_trips(self):
        f = LinearFunction([0.3, 0.5, 0.2])
        again = LinearFunction.from_angles(f.angles)
        assert np.allclose(f.weights, again.weights)


class TestWeightsFromAngles:
    def test_2d_endpoints(self):
        assert np.allclose(weights_from_angles([0.0]), [1.0, 0.0])
        assert np.allclose(weights_from_angles([np.pi / 2]), [0.0, 1.0], atol=1e-12)

    def test_3d_diagonal(self):
        w = weights_from_angles([np.arccos(1 / np.sqrt(3)), np.pi / 4])
        assert np.allclose(w, np.ones(3) / np.sqrt(3))

    def test_unit_norm_everywhere(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            d = rng.integers(2, 7)
            angles = rng.random(d - 1) * np.pi / 2
            w = weights_from_angles(angles)
            assert np.isclose(np.linalg.norm(w), 1.0)
            assert np.all(w >= 0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            weights_from_angles([np.pi])
        with pytest.raises(ValidationError):
            weights_from_angles([-0.5])
        with pytest.raises(ValidationError):
            weights_from_angles([])


class TestAnglesFromWeights:
    def test_round_trip(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            d = rng.integers(2, 7)
            w = rng.random(d) + 0.01
            w = w / np.linalg.norm(w)
            recovered = weights_from_angles(angles_from_weights(w))
            assert np.allclose(recovered, w, atol=1e-10)

    def test_boundary_weight_round_trip(self):
        for w in ([1.0, 0.0], [0.0, 1.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]):
            recovered = weights_from_angles(angles_from_weights(w))
            assert np.allclose(recovered, np.asarray(w) / np.linalg.norm(w), atol=1e-12)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            angles_from_weights([1.0])
