"""Unit tests for top-k evaluation and ranks."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ranking import (
    batch_top_k_sets,
    rank_of,
    ranking,
    ranks,
    scores,
    top_k,
    top_k_set,
)


@pytest.fixture
def tiny():
    # scores under w=(1,0): 3, 1, 2, 3 (rows 0 and 3 tie)
    return np.array([[3.0, 0.0], [1.0, 5.0], [2.0, 1.0], [3.0, 2.0]])


class TestScoresAndRanking:
    def test_scores(self, tiny):
        assert np.allclose(scores(tiny, [1.0, 0.0]), [3, 1, 2, 3])

    def test_ranking_breaks_ties_by_index(self, tiny):
        order = ranking(tiny, [1.0, 0.0])
        assert list(order) == [0, 3, 2, 1]

    def test_ranking_descending(self, tiny):
        order = ranking(tiny, [0.0, 1.0])
        assert list(order) == [1, 3, 2, 0]

    def test_shape_validation(self, tiny):
        with pytest.raises(ValidationError):
            scores(tiny, [1.0])
        with pytest.raises(ValidationError):
            ranking(tiny[0], [1.0, 0.0])


class TestTopK:
    def test_top_1(self, tiny):
        assert list(top_k(tiny, [1.0, 0.0], 1)) == [0]

    def test_top_2_with_tie(self, tiny):
        assert list(top_k(tiny, [1.0, 0.0], 2)) == [0, 3]

    def test_top_n_is_full_ranking(self, tiny):
        assert list(top_k(tiny, [1.0, 0.0], 4)) == [0, 3, 2, 1]

    def test_top_k_set(self, tiny):
        assert top_k_set(tiny, [1.0, 0.0], 2) == frozenset({0, 3})

    def test_k_out_of_range(self, tiny):
        with pytest.raises(ValidationError):
            top_k(tiny, [1.0, 0.0], 0)
        with pytest.raises(ValidationError):
            top_k(tiny, [1.0, 0.0], 5)

    def test_matches_full_sort_on_random_data(self):
        rng = np.random.default_rng(2)
        values = rng.random((200, 4))
        for _ in range(20):
            w = rng.random(4)
            k = int(rng.integers(1, 200))
            fast = top_k(values, w, k)
            slow = ranking(values, w)[:k]
            assert np.array_equal(fast, slow)


class TestRanks:
    def test_ranks_are_a_permutation(self, tiny):
        r = ranks(tiny, [1.0, 0.0])
        assert sorted(r) == [1, 2, 3, 4]

    def test_ranks_match_ranking(self, tiny):
        order = ranking(tiny, [0.3, 0.7])
        r = ranks(tiny, [0.3, 0.7])
        for position, index in enumerate(order):
            assert r[index] == position + 1

    def test_rank_of_matches_ranks(self):
        rng = np.random.default_rng(3)
        values = rng.random((100, 3))
        w = rng.random(3)
        full = ranks(values, w)
        for i in (0, 17, 55, 99):
            assert rank_of(values, w, i) == full[i]

    def test_rank_of_tie_breaking(self, tiny):
        # Rows 0 and 3 tie under w=(1,0); the smaller index ranks better.
        assert rank_of(tiny, [1.0, 0.0], 0) == 1
        assert rank_of(tiny, [1.0, 0.0], 3) == 2

    def test_rank_of_bounds(self, tiny):
        with pytest.raises(ValidationError):
            rank_of(tiny, [1.0, 0.0], 4)
        with pytest.raises(ValidationError):
            rank_of(tiny, [1.0, 0.0], -1)


class TestBatch:
    def test_batch_matches_single(self):
        rng = np.random.default_rng(4)
        values = rng.random((50, 3))
        weight_matrix = rng.random((10, 3))
        batched = batch_top_k_sets(values, weight_matrix, 5)
        singles = [top_k_set(values, w, 5) for w in weight_matrix]
        assert batched == singles

    def test_batch_validation(self):
        values = np.ones((5, 2))
        with pytest.raises(ValidationError):
            batch_top_k_sets(values, np.ones(2), 1)
        with pytest.raises(ValidationError):
            batch_top_k_sets(values, np.ones((3, 4)), 1)
