"""Property-based tests (hypothesis) for the ranking substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ranking import (
    angles_from_weights,
    rank_of,
    ranking,
    ranks,
    top_k,
    weights_from_angles,
)

_points = arrays(
    np.float64,
    st.tuples(st.integers(2, 40), st.integers(2, 5)),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)

_weights = st.lists(
    st.floats(0.001, 1.0, allow_nan=False), min_size=2, max_size=5
)


@given(_points, st.data())
@settings(max_examples=60, deadline=None)
def test_ranking_is_permutation(values, data):
    d = values.shape[1]
    w = np.asarray(data.draw(st.lists(
        st.floats(0.001, 1.0), min_size=d, max_size=d)))
    order = ranking(values, w)
    assert sorted(order) == list(range(values.shape[0]))


@given(_points, st.data())
@settings(max_examples=60, deadline=None)
def test_ranks_inverse_of_ranking(values, data):
    d = values.shape[1]
    w = np.asarray(data.draw(st.lists(
        st.floats(0.001, 1.0), min_size=d, max_size=d)))
    order = ranking(values, w)
    r = ranks(values, w)
    for position, index in enumerate(order):
        assert r[index] == position + 1


@given(_points, st.data())
@settings(max_examples=60, deadline=None)
def test_topk_prefix_consistency(values, data):
    """top_k(k) must be a prefix of top_k(k+1)."""
    n, d = values.shape
    w = np.asarray(data.draw(st.lists(
        st.floats(0.001, 1.0), min_size=d, max_size=d)))
    k = data.draw(st.integers(1, n - 1))
    smaller = top_k(values, w, k)
    larger = top_k(values, w, k + 1)
    assert np.array_equal(smaller, larger[:k])


@given(_points, st.data())
@settings(max_examples=40, deadline=None)
def test_rank_of_counts_better_tuples(values, data):
    n, d = values.shape
    w = np.asarray(data.draw(st.lists(
        st.floats(0.001, 1.0), min_size=d, max_size=d)))
    index = data.draw(st.integers(0, n - 1))
    rank = rank_of(values, w, index)
    score = values @ w
    strictly_better = int(np.count_nonzero(score > score[index]))
    # There are at least `strictly_better` tuples ahead, and ties can only
    # add more (Definition: exactly rank-1 tuples outrank it).
    assert strictly_better < rank <= strictly_better + n


@given(_weights)
@settings(max_examples=100, deadline=None)
def test_angle_weight_round_trip(weights):
    w = np.asarray(weights)
    w = w / np.linalg.norm(w)
    recovered = weights_from_angles(angles_from_weights(w))
    assert np.allclose(recovered, w, atol=1e-8)


@given(st.lists(st.floats(0.0, float(np.pi / 2)), min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_weights_from_angles_always_valid(angles):
    w = weights_from_angles(angles)
    assert np.all(w >= 0)
    assert np.isclose(np.linalg.norm(w), 1.0)
