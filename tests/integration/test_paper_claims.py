"""Integration tests for the paper's headline experimental claims (§6.2),
checked at reduced scale on the synthetic DOT / Blue Nile stand-ins."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    KSetCountConfig,
    run_experiment,
    run_kset_count,
    summarize_shapes,
)


@pytest.fixture(scope="module")
def md_rows():
    config = ExperimentConfig(
        "claims_md", "dot", ("mdrc", "mdrrr", "hd_rrms"),
        vary="n", values=(400, 800), d=3, k_fraction=0.01,
        eval_functions=2000, seed=0,
    )
    return run_experiment(config)


class TestProposedAlgorithmGuarantees:
    def test_mdrrr_rank_regret_at_most_k(self, md_rows):
        for row in md_rows:
            if row.algorithm == "mdrrr":
                assert row.rank_regret <= row.k

    def test_mdrc_rank_regret_at_most_dk(self, md_rows):
        for row in md_rows:
            if row.algorithm == "mdrc":
                assert row.rank_regret <= row.d * row.k

    def test_outputs_below_40(self, md_rows):
        """§6.2: 'The output sizes in all the experiments were less than 40'."""
        for row in md_rows:
            if row.algorithm in ("mdrc", "mdrrr"):
                assert row.output_size < 40

    def test_shape_summary(self, md_rows):
        shapes = summarize_shapes(md_rows)
        assert shapes["rrr_meets_k"]
        assert shapes["outputs_small"]


class TestSpeedShape:
    def test_mdrc_faster_than_mdrrr_at_scale(self):
        """Figures 9, 17, 25: MDRC dominates MDRRR in running time as n
        grows (MDRRR pays for k-set enumeration)."""
        config = ExperimentConfig(
            "claims_speed", "dot", ("mdrc", "mdrrr"),
            vary="n", values=(1500,), d=3, k_fraction=0.02,
            eval_functions=200, seed=0,
        )
        rows = {r.algorithm: r for r in run_experiment(config)}
        assert rows["mdrc"].time_sec < rows["mdrrr"].time_sec


class TestKsetShape:
    def test_counts_grow_with_k(self):
        """Figures 13/15: more k-sets at larger k (up to 50%)."""
        config = KSetCountConfig(
            "claims_ksets_k", "dot", vary="k", values=(0.02, 0.2),
            n=300, d=3, seed=0,
        )
        rows = run_kset_count(config)
        assert rows[0].num_ksets < rows[1].num_ksets

    def test_counts_below_upper_bound_for_d3(self):
        """Figures 13–16: actual counts sit far below the theory bound."""
        config = KSetCountConfig(
            "claims_ksets_bound", "bn", vary="k", values=(0.05,),
            n=300, d=3, seed=0,
        )
        row = run_kset_count(config)[0]
        assert row.num_ksets < row.upper_bound

    def test_counts_grow_with_d(self):
        """Figures 14/16: more k-sets in higher dimension."""
        config = KSetCountConfig(
            "claims_ksets_d", "bn", vary="d", values=(2, 4),
            n=250, k_fraction=0.04, seed=0,
        )
        rows = run_kset_count(config)
        assert rows[0].num_ksets < rows[1].num_ksets
