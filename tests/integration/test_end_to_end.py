"""End-to-end integration tests across modules."""

import numpy as np

from repro import (
    Dataset,
    evaluate_representative,
    load_csv,
    md_rrr,
    mdrc,
    min_rank_regret_of_size,
    rank_regret_representative,
    save_csv,
    synthetic_bluenile,
    synthetic_dot,
    two_d_rrr,
)
from repro.evaluation import rank_regret_exact_2d


class TestPipelines:
    def test_dot_pipeline_2d(self):
        """Raw data -> normalize -> 2DRRR -> exact evaluation."""
        raw = synthetic_dot(n=250, d=2, seed=0, normalize=False)
        data = raw.normalized()
        k = 10
        chosen = two_d_rrr(data.values, k)
        report = evaluate_representative(data.values, chosen, k)
        assert report.exact
        assert report.rank_regret <= 2 * k
        assert report.size < 40

    def test_bn_pipeline_md(self):
        data = synthetic_bluenile(n=400, d=3, seed=1)
        k = 12
        result = md_rrr(data.values, k, rng=0)
        report = evaluate_representative(
            data.values, result.indices, k, num_functions=2000
        )
        assert report.meets_k
        assert report.size < 40

    def test_csv_round_trip_through_algorithm(self, tmp_path):
        data = synthetic_dot(n=150, d=3, seed=2, normalize=False)
        path = tmp_path / "flights.csv"
        save_csv(data, path)
        loaded = load_csv(path).normalized()
        a = mdrc(loaded.values, 8).indices
        b = mdrc(data.normalized().values, 8).indices
        assert a == b

    def test_front_door_matches_direct_call(self):
        data = synthetic_dot(n=200, d=3, seed=3)
        front = rank_regret_representative(data, 10, method="mdrc")
        direct = mdrc(data.values, 10)
        assert list(front.indices) == direct.indices

    def test_size_budget_pipeline(self):
        # 2-D so the 2k guarantee of 2DRRR applies unconditionally (MDRC's
        # d·k bound is voided by the cell-budget fallback at very small k).
        data = synthetic_bluenile(n=300, d=2, seed=4)
        outcome = min_rank_regret_of_size(data, size=8)
        assert outcome.result.size <= 8
        regret = rank_regret_exact_2d(data.values, outcome.result.indices)
        assert regret <= 2 * outcome.k

    def test_three_algorithms_agree_on_guarantees_2d(self):
        data = synthetic_dot(n=200, d=2, seed=5)
        k = 8
        for method, factor in (("2drrr", 2), ("mdrrr", 1), ("mdrc", 2)):
            result = rank_regret_representative(data, k, method=method, rng=0)
            regret = rank_regret_exact_2d(data.values, result.indices)
            assert regret <= factor * k, method

    def test_duplicate_heavy_data(self):
        """Datasets with many duplicated tuples must not break anything."""
        rng = np.random.default_rng(6)
        base = rng.random((20, 2))
        values = np.vstack([base, base, base])
        chosen = two_d_rrr(values, 5)
        assert rank_regret_exact_2d(values, chosen) <= 10

    def test_constant_column_data(self):
        values = np.column_stack(
            [np.random.default_rng(7).random(50), np.full(50, 0.5)]
        )
        chosen = two_d_rrr(values, 3)
        assert rank_regret_exact_2d(values, chosen) <= 6

    def test_unnormalized_dataset_auto_normalized(self):
        raw = Dataset(
            np.random.default_rng(8).random((100, 3)) * 1000.0,
            higher_is_better=(True, False, True),
        )
        result = rank_regret_representative(raw, 5)
        assert result.indices
