"""Unit tests for 1-D interval covering."""

import numpy as np
import pytest

from repro.exceptions import InfeasibleError, ValidationError
from repro.setcover import cover_segment, cover_segment_max_coverage

HALF_PI = float(np.pi / 2)


def assert_covers(intervals, chosen, lo=0.0, hi=HALF_PI):
    """Verify chosen intervals jointly cover [lo, hi]."""
    picked = sorted((intervals[i][0], intervals[i][1]) for i in chosen)
    frontier = lo
    for start, end in picked:
        assert start <= frontier + 1e-9
        frontier = max(frontier, end)
    assert frontier >= hi - 1e-9


class TestCoverSegment:
    def test_single_interval(self):
        assert cover_segment([(0.0, HALF_PI)]) == [0]

    def test_two_halves(self):
        intervals = [(0.0, 0.9), (0.8, HALF_PI)]
        chosen = cover_segment(intervals)
        assert sorted(chosen) == [0, 1]

    def test_prefers_fewer_intervals(self):
        intervals = [(0.0, 0.5), (0.4, 1.0), (0.9, HALF_PI), (0.0, HALF_PI)]
        assert cover_segment(intervals) == [3]

    def test_counterexample_where_max_coverage_overshoots(self):
        # [0,10]: optimal is {A, B}; max-coverage greedy picks C first.
        intervals = [(0.0, 5.0), (5.0, 10.0), (2.0, 8.0)]
        sweep = cover_segment(intervals, 0.0, 10.0)
        greedy = cover_segment_max_coverage(intervals, 0.0, 10.0)
        assert len(sweep) == 2
        assert len(greedy) == 3

    def test_infeasible_gap(self):
        with pytest.raises(InfeasibleError):
            cover_segment([(0.0, 0.4), (0.6, HALF_PI)])

    def test_infeasible_start(self):
        with pytest.raises(InfeasibleError):
            cover_segment([(0.3, HALF_PI)])

    def test_infeasible_end(self):
        with pytest.raises(InfeasibleError):
            cover_segment([(0.0, 1.0)])

    def test_nan_intervals_skipped(self):
        intervals = [(np.nan, np.nan), (0.0, HALF_PI)]
        assert cover_segment(intervals) == [1]

    def test_rejects_reversed_interval(self):
        with pytest.raises(ValidationError):
            cover_segment([(1.0, 0.5)])

    def test_rejects_reversed_bounds(self):
        with pytest.raises(ValidationError):
            cover_segment([(0.0, 1.0)], 1.0, 0.0)

    def test_random_instances_always_cover(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            count = int(rng.integers(3, 30))
            starts = rng.random(count) * HALF_PI
            ends = starts + rng.random(count) * HALF_PI
            intervals = list(zip(starts, np.minimum(ends, HALF_PI)))
            intervals.append((0.0, float(rng.random() * HALF_PI)))  # anchor start
            intervals.append((float(rng.random()), HALF_PI))  # anchor end
            intervals.append((0.0, HALF_PI))  # guarantee feasibility
            chosen = cover_segment(intervals)
            assert_covers(intervals, chosen)


class TestMaxCoverage:
    def test_single_interval(self):
        assert cover_segment_max_coverage([(0.0, HALF_PI)]) == [0]

    def test_produces_valid_cover(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            count = int(rng.integers(2, 20))
            starts = rng.random(count) * HALF_PI
            ends = np.minimum(starts + rng.random(count), HALF_PI)
            intervals = list(zip(starts, ends)) + [(0.0, HALF_PI)]
            chosen = cover_segment_max_coverage(intervals)
            assert_covers(intervals, chosen)

    def test_sweep_never_larger_than_max_coverage(self):
        rng = np.random.default_rng(2)
        for _ in range(30):
            count = int(rng.integers(3, 25))
            starts = rng.random(count) * 0.8 * HALF_PI
            ends = np.minimum(starts + 0.3 + rng.random(count), HALF_PI)
            intervals = list(zip(starts, ends))
            intervals.append((0.0, 0.7))
            intervals.append((0.5, HALF_PI))
            sweep = cover_segment(intervals)
            greedy = cover_segment_max_coverage(intervals)
            assert len(sweep) <= len(greedy)

    def test_infeasible(self):
        with pytest.raises(InfeasibleError):
            cover_segment_max_coverage([(0.2, 0.4)])
