"""Unit tests for the Brönnimann–Goodrich ε-net hitting set."""

import numpy as np
import pytest

from repro.exceptions import InfeasibleError, ValidationError
from repro.setcover import epsnet_hitting_set, exact_hitting_set, is_hitting_set


class TestEpsnet:
    def test_empty_family(self):
        assert epsnet_hitting_set([], vc_dimension=2) == []

    def test_single_set(self):
        chosen = epsnet_hitting_set([{3, 4, 5}], vc_dimension=2, rng=0)
        assert is_hitting_set([{3, 4, 5}], chosen)

    def test_always_returns_hitting_set(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            family = [
                set(rng.choice(25, size=rng.integers(1, 6), replace=False))
                for _ in range(rng.integers(1, 15))
            ]
            chosen = epsnet_hitting_set(family, vc_dimension=3, rng=trial)
            assert is_hitting_set(family, chosen)

    def test_deterministic_given_seed(self):
        family = [{0, 1}, {1, 2}, {2, 3}, {0, 3}]
        a = epsnet_hitting_set(family, vc_dimension=2, rng=42)
        b = epsnet_hitting_set(family, vc_dimension=2, rng=42)
        assert a == b

    def test_rejects_empty_member(self):
        with pytest.raises(InfeasibleError):
            epsnet_hitting_set([set()], vc_dimension=2)

    def test_rejects_bad_vc(self):
        with pytest.raises(ValidationError):
            epsnet_hitting_set([{1}], vc_dimension=0)

    def test_reasonable_size_on_structured_instance(self):
        # Intervals over a line have VC dimension 2; the optimum here is 1.
        family = [set(range(i, i + 5)) for i in range(0, 15)]
        # Element 4..? Every set contains elements 10..14? No: sets are
        # {0..4}, {1..5}, ..., {14..18}; the middle elements hit many.
        chosen = epsnet_hitting_set(family, vc_dimension=2, rng=1)
        optimal = exact_hitting_set(family)
        assert is_hitting_set(family, chosen)
        assert len(chosen) <= 25 * len(optimal)  # loose sanity bound
