"""Property-based tests for the covering substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.setcover import (
    cover_segment,
    cover_segment_max_coverage,
    epsnet_hitting_set,
    greedy_hitting_set,
    is_hitting_set,
)

_families = st.lists(
    st.sets(st.integers(0, 20), min_size=1, max_size=6), min_size=1, max_size=12
)


@given(_families)
@settings(max_examples=80, deadline=None)
def test_greedy_hits_everything(family):
    chosen = greedy_hitting_set(family)
    assert is_hitting_set(family, chosen)
    assert len(chosen) <= len(family)


@given(_families, st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_epsnet_hits_everything(family, seed):
    chosen = epsnet_hitting_set(family, vc_dimension=3, rng=seed)
    assert is_hitting_set(family, chosen)


_segments = st.lists(
    st.tuples(st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)),
    min_size=0,
    max_size=15,
)


@given(_segments)
@settings(max_examples=100, deadline=None)
def test_cover_segment_valid_when_feasible(raw):
    intervals = [(min(a, b), max(a, b)) for a, b in raw]
    intervals.append((0.0, 1.0))  # force feasibility
    chosen = cover_segment(intervals, 0.0, 1.0)
    picked = sorted((intervals[i][0], intervals[i][1]) for i in chosen)
    frontier = 0.0
    for start, end in picked:
        assert start <= frontier + 1e-9
        frontier = max(frontier, end)
    assert frontier >= 1.0 - 1e-9


@given(_segments)
@settings(max_examples=60, deadline=None)
def test_sweep_cover_never_beaten_by_max_coverage(raw):
    intervals = [(min(a, b), max(a, b)) for a, b in raw]
    intervals.append((0.0, 0.6))
    intervals.append((0.5, 1.0))
    sweep = cover_segment(intervals, 0.0, 1.0)
    greedy = cover_segment_max_coverage(intervals, 0.0, 1.0)
    assert len(sweep) <= len(greedy)


@given(_segments, st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_cover_segment_optimality_vs_brute_force(raw, _salt):
    """The sweep greedy is provably optimal; cross-check tiny instances."""
    import itertools

    intervals = [(min(a, b), max(a, b)) for a, b in raw[:7]]
    intervals.append((0.0, 1.0))
    chosen = cover_segment(intervals, 0.0, 1.0)
    # Brute force the minimum cover size.
    best = None
    for size in range(1, len(intervals) + 1):
        for combo in itertools.combinations(range(len(intervals)), size):
            picked = sorted((intervals[i][0], intervals[i][1]) for i in combo)
            frontier = 0.0
            ok = True
            for start, end in picked:
                if start > frontier + 1e-12:
                    ok = False
                    break
                frontier = max(frontier, end)
            if ok and frontier >= 1.0 - 1e-12:
                best = size
                break
        if best is not None:
            break
    assert best is not None
    assert len(chosen) == best
