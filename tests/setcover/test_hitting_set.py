"""Unit tests for greedy and exact hitting sets."""

import numpy as np
import pytest

from repro.exceptions import InfeasibleError
from repro.setcover import exact_hitting_set, greedy_hitting_set, is_hitting_set


class TestIsHittingSet:
    def test_positive(self):
        assert is_hitting_set([{1, 2}, {2, 3}], [2])

    def test_negative(self):
        assert not is_hitting_set([{1, 2}, {3, 4}], [1])

    def test_empty_family(self):
        assert is_hitting_set([], [])


class TestGreedy:
    def test_empty_family(self):
        assert greedy_hitting_set([]) == []

    def test_single_common_element(self):
        sets = [{0, 1}, {1, 2}, {1, 9}]
        assert greedy_hitting_set(sets) == [1]

    def test_disjoint_sets_need_one_each(self):
        sets = [{0}, {1}, {2}]
        assert sorted(greedy_hitting_set(sets)) == [0, 1, 2]

    def test_result_is_always_a_hitting_set(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            family = [
                set(rng.choice(30, size=rng.integers(1, 6), replace=False))
                for _ in range(rng.integers(1, 20))
            ]
            chosen = greedy_hitting_set(family)
            assert is_hitting_set(family, chosen)

    def test_rejects_empty_member_set(self):
        with pytest.raises(InfeasibleError):
            greedy_hitting_set([set()])

    def test_deterministic_tie_break(self):
        # Both 0 and 5 hit two sets; the smaller element must win.
        sets = [{0, 9}, {0, 8}, {5, 7}, {5, 6}]
        chosen = greedy_hitting_set(sets)
        assert chosen[0] == 0

    def test_log_approximation_on_random_instances(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            family = [
                set(rng.choice(12, size=rng.integers(1, 5), replace=False))
                for _ in range(rng.integers(2, 10))
            ]
            greedy = greedy_hitting_set(family)
            optimal = exact_hitting_set(family)
            harmonic = sum(1.0 / i for i in range(1, len(family) + 1))
            assert len(greedy) <= np.ceil(harmonic * len(optimal))


class TestExact:
    def test_simple_instance(self):
        sets = [{0, 1}, {1, 2}, {0, 2}]
        assert len(exact_hitting_set(sets)) == 2

    def test_single_element(self):
        assert exact_hitting_set([{4}]) == [4]

    def test_max_size_too_small(self):
        with pytest.raises(InfeasibleError):
            exact_hitting_set([{0}, {1}, {2}], max_size=2)

    def test_never_larger_than_greedy(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            family = [
                set(rng.choice(10, size=rng.integers(1, 4), replace=False))
                for _ in range(rng.integers(1, 8))
            ]
            assert len(exact_hitting_set(family)) <= len(greedy_hitting_set(family))
